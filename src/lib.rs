//! # gameofcoins
//!
//! A production-quality Rust reproduction of **"Game of Coins"**
//! (Alexander Spiegelman, Idit Keidar, Moshe Tennenholtz; ICDCS 2021):
//! strategic mining in multi-cryptocurrency markets as a game, the
//! convergence of arbitrary better-response learning (Theorem 1), and
//! dynamic reward design steering learners between equilibria
//! (Algorithm 2 / Theorem 2) — plus the proof-of-work market substrate
//! needed to regenerate the paper's Figure 1 mechanistically.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`game`] — the exact-arithmetic mining game: systems, configurations,
//!   payoffs, the ordinal potential, equilibria, assumption checkers.
//! * [`learning`] — better-response dynamics under pluggable schedulers.
//! * [`design`] — Algorithms 1–2: reward design between equilibria with
//!   invariant verification and cost accounting.
//! * [`chain`] — proof-of-work chains: difficulty adjustment, fee market,
//!   whale transactions, mining races.
//! * [`market`] — exchange-rate processes and scheduled shocks.
//! * [`sim`] — the discrete-event simulator coupling all of the above;
//!   scenarios are declarative [`sim::spec::ScenarioSpec`] values (the
//!   Figure 1 preset and friends live there, with convenience builders
//!   in [`sim::scenario`]).
//! * [`analysis`] — statistics, tables, charts, welfare/security
//!   metrics, and the structured [`analysis::report::RunReport`] that
//!   every registered experiment returns.
//! * [`experiments`] — the experiment registry: every figure and claim
//!   of the paper as a named, runnable [`experiments::Experiment`]
//!   (drive it with `goc list` / `goc run <name>` / `goc sweep`).
//! * [`proto`] — the versioned line-delimited JSON wire protocol:
//!   request/response envelopes, the framing [`proto::Connection`],
//!   and the blocking [`proto::Client`].
//! * [`server`] — the TCP service: session loop, admission control
//!   (bounded in-flight queue, per-session budgets, replica/population
//!   caps), graceful drain (serve it with `goc serve`, query it with
//!   `goc request`).
//!
//! ## Quickstart
//!
//! ```
//! use gameofcoins::game::{equilibrium, Game};
//! use gameofcoins::learning::{run, LearningOptions, SchedulerKind};
//! use gameofcoins::design::{design, DesignOptions, DesignProblem};
//!
//! // Six miners with distinct powers over two coins (weights 17 vs 10).
//! let game = Game::build(&[13, 11, 7, 5, 3, 2], &[17, 10])?;
//!
//! // Better-response learning converges from anywhere (Theorem 1) …
//! let start = gameofcoins::game::Configuration::uniform(
//!     gameofcoins::game::CoinId(0), game.system())?;
//! let mut sched = SchedulerKind::UniformRandom.build(7);
//! let outcome = run(&game, &start, sched.as_mut(), LearningOptions::default())?;
//! assert!(outcome.converged);
//!
//! // … and a manipulator can steer the market between any two equilibria
//! // at bounded cost (Algorithm 2).
//! let (s0, sf) = equilibrium::two_equilibria(&game)?;
//! let problem = DesignProblem::new(game, s0, sf.clone())?;
//! let design_outcome = design(&problem, sched.as_mut(), DesignOptions::default())?;
//! assert_eq!(design_outcome.final_config, sf);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use goc_analysis as analysis;
pub use goc_chain as chain;
pub use goc_design as design;
pub use goc_experiments as experiments;
pub use goc_game as game;
pub use goc_learning as learning;
pub use goc_market as market;
pub use goc_proto as proto;
pub use goc_server as server;
pub use goc_sim as sim;
pub use goc_telemetry as telemetry;

/// Convenient single-import prelude for examples and downstream users.
pub mod prelude {
    pub use goc_analysis::{ascii_chart, fmt_f64, RunReport, Series, Summary, Table, TableData};
    pub use goc_chain::{Blockchain, ChainParams, DifficultyRule};
    pub use goc_design::{design, DesignOptions, DesignOutcome, DesignProblem};
    pub use goc_experiments::{registry, Experiment, RunContext, SweepSpec};
    pub use goc_game::{
        equilibrium, potential, CoinId, Configuration, Game, GameError, MinerId, Ratio, Rewards,
        System,
    };
    pub use goc_learning::{
        converge, run, LearningOptions, LearningOutcome, Scheduler, SchedulerKind,
    };
    pub use goc_market::{
        Gbm, Market, Price, ScheduledShock, WhaleBudget, WhaleInjection, WhalePlan,
    };
    pub use goc_proto::{Client, Connection, ProtoError, RejectReason, Request, Response};
    pub use goc_server::{Backend, Server, ServerConfig};
    pub use goc_sim::{MinerAgent, OracleKind, ScenarioSpec, SimConfig, Simulation};
}
