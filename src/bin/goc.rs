//! `goc` — command-line interface to the Game of Coins library.
//!
//! ```text
//! goc learn    --powers 13,11,7,5,3,2 --rewards 17,10 [--scheduler round-robin] [--seed 0]
//! goc enumerate --powers 13,11,7,5,3,2 --rewards 17,10
//! goc design   --powers 13,11,7,5,3,2 --rewards 17,10 [--scheduler min-gain] [--seed 0]
//! goc simulate [--miners 120] [--days 80] [--shock-day 30] [--seed 2017]
//! ```
//!
//! `learn` runs better-response learning from the all-on-c0 configuration;
//! `enumerate` lists all pure equilibria (small games); `design` picks the
//! two Lemma-2 equilibria and runs Algorithm 2 between them; `simulate`
//! runs the Figure 1 BTC/BCH market and prints the hashrate chart.

use std::process::ExitCode;

use gameofcoins::analysis::chart::{ascii_chart, Series};
use gameofcoins::analysis::{fmt_f64, Table};
use gameofcoins::design::{design, DesignOptions, DesignProblem};
use gameofcoins::game::{equilibrium, CoinId, Configuration, Game};
use gameofcoins::learning::{run, LearningOptions, SchedulerKind};
use gameofcoins::sim::scenario::{btc_bch, BtcBchParams, DAY};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "learn" => cmd_learn(&opts),
        "enumerate" => cmd_enumerate(&opts),
        "design" => cmd_design(&opts),
        "simulate" => cmd_simulate(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "goc — Game of Coins (Spiegelman, Keidar, Tennenholtz; ICDCS 2021)

USAGE:
  goc learn     --powers P1,P2,.. --rewards F1,F2,.. [--scheduler NAME] [--seed N]
  goc enumerate --powers P1,P2,.. --rewards F1,F2,..
  goc design    --powers P1,P2,.. --rewards F1,F2,.. [--scheduler NAME] [--seed N]
  goc simulate  [--miners N] [--days D] [--shock-day D] [--seed N]

SCHEDULERS: round-robin | uniform-random | max-gain | min-gain |
            largest-miner-first | smallest-miner-first";

/// Parsed command-line options (manual parsing; no CLI dependency).
#[derive(Debug, Default)]
struct Options {
    powers: Option<Vec<u64>>,
    rewards: Option<Vec<u64>>,
    scheduler: Option<String>,
    seed: u64,
    miners: usize,
    days: f64,
    shock_day: f64,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = Options {
            seed: 0,
            miners: 120,
            days: 80.0,
            shock_day: 30.0,
            ..Options::default()
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--powers" => o.powers = Some(parse_list(value()?)?),
                "--rewards" => o.rewards = Some(parse_list(value()?)?),
                "--scheduler" => o.scheduler = Some(value()?.to_string()),
                "--seed" => o.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--miners" => {
                    o.miners = value()?.parse().map_err(|e| format!("--miners: {e}"))?
                }
                "--days" => o.days = value()?.parse().map_err(|e| format!("--days: {e}"))?,
                "--shock-day" => {
                    o.shock_day = value()?.parse().map_err(|e| format!("--shock-day: {e}"))?
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(o)
    }

    fn game(&self) -> Result<Game, String> {
        let powers = self
            .powers
            .as_ref()
            .ok_or("missing --powers (e.g. --powers 13,11,7)")?;
        let rewards = self
            .rewards
            .as_ref()
            .ok_or("missing --rewards (e.g. --rewards 17,10)")?;
        Game::build(powers, rewards).map_err(|e| e.to_string())
    }

    fn scheduler_kind(&self) -> Result<SchedulerKind, String> {
        let name = self.scheduler.as_deref().unwrap_or("round-robin");
        SchedulerKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| format!("unknown scheduler `{name}`"))
    }
}

fn parse_list(s: &str) -> Result<Vec<u64>, String> {
    s.split(',')
        .map(|part| part.trim().parse::<u64>().map_err(|e| format!("`{part}`: {e}")))
        .collect()
}

fn cmd_learn(opts: &Options) -> Result<(), String> {
    let game = opts.game()?;
    let kind = opts.scheduler_kind()?;
    let start =
        Configuration::uniform(CoinId(0), game.system()).map_err(|e| e.to_string())?;
    let mut sched = kind.build(opts.seed);
    let outcome = run(
        &game,
        &start,
        sched.as_mut(),
        LearningOptions {
            record_path: true,
            ..LearningOptions::default()
        },
    )
    .map_err(|e| e.to_string())?;
    println!("start: {start}");
    for mv in &outcome.path {
        println!("  {mv}");
    }
    println!(
        "converged after {} steps at {} (scheduler: {})",
        outcome.steps, outcome.final_config, kind
    );
    let mut table = Table::new(vec!["miner", "power", "coin", "payoff"]);
    for m in game.system().miners() {
        table.row(vec![
            m.id().to_string(),
            m.power().to_string(),
            outcome.final_config.coin_of(m.id()).to_string(),
            game.payoff(m.id(), &outcome.final_config).to_string(),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_enumerate(opts: &Options) -> Result<(), String> {
    let game = opts.game()?;
    let eqs = equilibrium::enumerate_equilibria(&game, 1 << 22).map_err(|e| e.to_string())?;
    println!("{} pure equilibria:", eqs.len());
    let mut table = Table::new(vec!["#", "configuration", "welfare", "payoffs"]);
    for (i, s) in eqs.iter().enumerate() {
        let payoffs: Vec<String> = game.payoffs(s).iter().map(|p| fmt_f64(p.to_f64())).collect();
        table.row(vec![
            i.to_string(),
            s.to_string(),
            fmt_f64(game.welfare(s).to_f64()),
            payoffs.join(" "),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_design(opts: &Options) -> Result<(), String> {
    let game = opts.game()?;
    let kind = opts.scheduler_kind()?;
    let (s0, sf) = equilibrium::two_equilibria(&game).map_err(|e| e.to_string())?;
    println!("steering the market from {s0} to {sf} …");
    let problem = DesignProblem::new(game, s0, sf).map_err(|e| e.to_string())?;
    let mut sched = kind.build(opts.seed);
    let outcome = design(
        &problem,
        sched.as_mut(),
        DesignOptions {
            verify_invariants: true,
            ..DesignOptions::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let mut table = Table::new(vec!["stage", "iterations", "steps", "cost"]);
    for s in &outcome.stages {
        table.row(vec![
            s.stage.to_string(),
            s.iterations.to_string(),
            s.steps.to_string(),
            fmt_f64(s.cost),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reached {} — total {} postings, {} steps, cost {}",
        outcome.final_config,
        outcome.total_iterations,
        outcome.total_steps,
        fmt_f64(outcome.total_cost)
    );
    Ok(())
}

fn cmd_simulate(opts: &Options) -> Result<(), String> {
    let mut sim = btc_bch(BtcBchParams {
        num_miners: opts.miners,
        horizon_days: opts.days,
        shock_day: opts.shock_day,
        revert_day: opts.shock_day + 15.0,
        seed: opts.seed.max(1),
        ..BtcBchParams::default()
    });
    let metrics = sim.run().clone();
    let days: Vec<f64> = metrics.times.iter().map(|t| t / DAY).collect();
    let share: Vec<f64> = (0..metrics.len())
        .map(|t| metrics.hashrate_share(1, t))
        .collect();
    println!("BCH hashrate share over {} days ({} miners):", opts.days, opts.miners);
    println!(
        "{}",
        ascii_chart(
            &days,
            &[Series {
                name: "BCH share",
                values: &share,
                symbol: '#'
            }],
            72,
            12
        )
    );
    println!(
        "blocks: BTC {}, BCH {}; switches: {}",
        sim.chains()[0].height(),
        sim.chains()[1].height(),
        metrics.total_switches
    );
    Ok(())
}
