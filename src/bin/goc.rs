//! `goc` — command-line interface to the Game of Coins library.
//!
//! ```text
//! goc list
//! goc run fig1 [--json] [--quick] [--seed 0]
//! goc sweep    --spec sweep.json [--threads N] [--out FILE]
//! goc learn    --powers 13,11,7,5,3,2 --rewards 17,10 [--scheduler round-robin] [--seed 0]
//! goc enumerate --powers 13,11,7,5,3,2 --rewards 17,10
//! goc design   --powers 13,11,7,5,3,2 --rewards 17,10 [--scheduler min-gain] [--seed 0]
//! goc simulate [--miners 120] [--days 80] [--shock-day 30] [--seed 2017]
//! goc simulate --spec scenario.json
//! goc serve    [--addr 127.0.0.1:0] [--max-sessions 16] [--max-inflight 4] [--threads N]
//!              [--metrics] [--trace FILE] [--http HOST:PORT]
//! goc request  <ADDR> <REQUEST-JSON>
//! ```
//!
//! `list` shows the experiment registry; `run` executes a registered
//! experiment, rendering its structured report as ASCII or JSON; `sweep`
//! fans a JSON list of experiment runs across worker threads (reports
//! come back in input order). The classic commands remain: `learn` runs
//! better-response learning from the all-on-c0 configuration;
//! `enumerate` lists all pure equilibria (small games); `design` picks
//! the two Lemma-2 equilibria and runs Algorithm 2 between them;
//! `simulate` runs the Figure 1 BTC/BCH market and prints the hashrate
//! chart. `serve` boots the registry-backed Game-of-Coins service
//! (line-delimited JSON over TCP, with admission control) and runs
//! until a `Shutdown` request drains it; `request` sends one request
//! to a running server and prints the streamed response frames.
//!
//! Flight recording: `goc run <exp> --trace FILE` and `goc serve
//! --trace FILE` arm the process-global flight recorder and dump its
//! retained window as Chrome Trace Event Format JSON (load it at
//! `chrome://tracing` or `ui.perfetto.dev`); `goc serve --http ADDR`
//! additionally serves `GET /metrics`, `/healthz`, and `/trace` for
//! scrapers.

use std::process::ExitCode;

use gameofcoins::analysis::chart::{ascii_chart, Series};
use gameofcoins::analysis::{fmt_f64, Table};
use gameofcoins::design::{design, DesignOptions, DesignProblem};
use gameofcoins::experiments::service::{registry_server, registry_server_traced};
use gameofcoins::experiments::{self, RunContext, SweepSpec};
use gameofcoins::game::{equilibrium, CoinId, Configuration, Game};
use gameofcoins::learning::{run, LearningOptions, SchedulerKind};
use gameofcoins::proto::{Client, ReportPayload, Request, Response};
use gameofcoins::server::{HttpExporter, ServerConfig};
use gameofcoins::sim::scenario::{btc_bch, BtcBchParams, DAY};
use gameofcoins::sim::ScenarioSpec;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Only `run` (the experiment name) and `request` (address + JSON)
    // take positional arguments; stray tokens anywhere else are typos,
    // not input.
    let expected_positionals = match command.as_str() {
        "run" => 1,
        "request" => 2,
        _ => 0,
    };
    let result = if opts.help {
        // Per-command help for the service verbs; the general usage
        // covers everything else.
        match command.as_str() {
            "serve" => println!("{SERVE_USAGE}"),
            "request" => println!("{REQUEST_USAGE}"),
            _ => println!("{USAGE}"),
        }
        Ok(())
    } else if opts.positional.len() > expected_positionals {
        Err(format!(
            "unexpected argument `{}`",
            opts.positional[expected_positionals]
        ))
    } else {
        match command.as_str() {
            "list" => cmd_list(),
            "run" => cmd_run(&opts),
            "sweep" => cmd_sweep(&opts),
            "learn" => cmd_learn(&opts),
            "enumerate" => cmd_enumerate(&opts),
            "design" => cmd_design(&opts),
            "simulate" => cmd_simulate(&opts),
            "serve" => cmd_serve(&opts),
            "request" => cmd_request(&opts),
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                Ok(())
            }
            other => Err(format!("unknown command `{other}`")),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "goc — Game of Coins (Spiegelman, Keidar, Tennenholtz; ICDCS 2021)

USAGE:
  goc list
  goc run <EXPERIMENT> [--json] [--quick] [--seed N] [--scheduler NAME] [--turnover PCT]
               [--replicas N] [--threads N] [--trace FILE]
  goc sweep     --spec FILE [--threads N] [--out FILE]
  goc learn     --powers P1,P2,.. --rewards F1,F2,.. [--scheduler NAME] [--seed N]
  goc enumerate --powers P1,P2,.. --rewards F1,F2,..
  goc design    --powers P1,P2,.. --rewards F1,F2,.. [--scheduler NAME] [--seed N]
  goc simulate  [--miners N] [--days D] [--shock-day D] [--seed N]
  goc simulate  --spec FILE    (a declarative ScenarioSpec JSON)
  goc serve     [--addr HOST:PORT] [--max-sessions N] [--max-inflight N] [--threads N]
                [--metrics] [--trace FILE] [--http HOST:PORT]
  goc request   <ADDR> <REQUEST-JSON>    (e.g. goc request 127.0.0.1:4317 '\"Status\"',
                or the shorthand '{\"request\":\"metrics\"}')

`goc list` names every registered experiment. The `churn` experiment
drives miner arrivals/departures and coin launches/retirements as
incremental tracker deltas; `--turnover PCT` sets its population
turnover target in percent (default 10). The `ensemble` experiment runs
Monte-Carlo replica fleets on the work-stealing executor: `--replicas N`
sets its flagship replica count (default 64) and `--threads N` its
worker count (the equilibrium census is bit-identical at any thread
count; only wall clock changes). A sweep spec is JSON:
  {\"runs\": [{\"experiment\": \"fig1\", \"seed\": 1, \"quick\": true}, ...]}
(an entry may also pin \"scheduler\" to a SchedulerKind variant name,
e.g. \"MinGain\", for experiments that sweep schedulers, or set
\"turnover_pct\" for `churn` / \"replicas\" for `ensemble`).
Reports come back in input order regardless of completion order.
A scenario spec for `goc simulate --spec` is a serialized
`gameofcoins::sim::ScenarioSpec` (serialize a preset to start).
`goc run <exp> --trace FILE` arms the flight recorder and dumps the
run's spans as Chrome Trace Event Format JSON (chrome://tracing).

`goc serve` boots the Game-of-Coins service (see `goc serve --help`);
`goc request` sends one JSON request to a running server (see
`goc request --help`).

SCHEDULERS: round-robin | uniform-random | max-gain | min-gain |
            largest-miner-first | smallest-miner-first";

const SERVE_USAGE: &str = "goc serve — run the Game-of-Coins service over TCP

USAGE:
  goc serve [--addr HOST:PORT] [--max-sessions N] [--max-inflight N] [--threads N]
            [--metrics] [--trace FILE] [--http HOST:PORT]

The server speaks the goc-proto wire protocol: line-delimited JSON
request/response envelopes (protocol v2; v1 envelopes remain accepted).
Every registered experiment is servable, ensembles run on the shared
work-stealing executor, and admission control is strict — a bounded
in-flight queue, per-session request budgets, and replica/population
caps, each refusing by name instead of queueing unboundedly. A
`Shutdown` request drains in-flight work and exits 0. The live
telemetry registry (sessions, served, per-reason rejections, in-flight
gauge, per-kind request latency) is queryable at any time with
`goc request <ADDR> '{\"request\":\"metrics\"}'`.

OPTIONS:
  --addr HOST:PORT   bind address (default 127.0.0.1:0 — an ephemeral
                     port, printed once bound)
  --max-sessions N   concurrent client sessions (default 16, must be ≥ 1)
  --max-inflight N   bounded in-flight compute queue (default 4, must be ≥ 1)
  --threads N        worker threads per compute request
  --metrics          print the final metrics exposition (Prometheus-style
                     text) after the drain summary
  --trace FILE       arm the flight recorder; on drain, dump every
                     retained span — request admission, serve spans,
                     replica/snapshot work, all keyed by the wire
                     correlation id — as Chrome Trace Event Format JSON
  --http HOST:PORT   also serve GET /metrics (Prometheus text),
                     /healthz, and /trace (recorder JSON) over plain
                     HTTP — the scrape endpoint, printed as
                     `goc-http listening on ADDR` once bound";

const REQUEST_USAGE: &str = "goc request — send one request to a running goc server

USAGE:
  goc request <ADDR> <REQUEST-JSON>

Prints every streamed response frame as one JSON line and exits 0 on a
Report, nonzero on a named rejection or execution error.

REQUESTS (the JSON forms of goc-proto's Request enum; optional fields
may be omitted):
  '\"Status\"'       load/limit counters (free; answered while draining)
  '\"Metrics\"'      the live telemetry registry, printed as Prometheus-
                   style text exposition (free; protocol v2)
  '\"Shutdown\"'     drain in-flight work and stop the server
  '{\"RunEnsemble\":{\"spec\":{\"name\":\"wire\",\"miners\":1000,\"replicas\":16,
     \"horizon_days\":30.0,\"seed\":7}}}'
  '{\"RunExperiment\":{\"experiment\":\"prop1\",\"quick\":true}}'
  '{\"Sweep\":{\"runs\":[{\"experiment\":\"prop1\",\"quick\":true}, ...]}}'

The free verbs also take a lowercase shorthand that needs no shell
escaping: '{\"request\":\"status\"}', '{\"request\":\"metrics\"}',
'{\"request\":\"shutdown\"}'.";

/// Parsed command-line options (manual parsing; no CLI dependency).
#[derive(Debug, Default)]
struct Options {
    positional: Vec<String>,
    powers: Option<Vec<u64>>,
    rewards: Option<Vec<u64>>,
    scheduler: Option<String>,
    seed: u64,
    miners: usize,
    days: f64,
    shock_day: f64,
    json: bool,
    quick: bool,
    spec: Option<String>,
    out: Option<String>,
    threads: Option<usize>,
    turnover: Option<u32>,
    replicas: Option<usize>,
    addr: Option<String>,
    max_sessions: Option<usize>,
    max_inflight: Option<usize>,
    metrics: bool,
    trace: Option<String>,
    http: Option<String>,
    help: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = Options {
            seed: 0,
            miners: 120,
            days: 80.0,
            shock_day: 30.0,
            ..Options::default()
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--powers" => o.powers = Some(parse_list(value()?)?),
                "--rewards" => o.rewards = Some(parse_list(value()?)?),
                "--scheduler" => o.scheduler = Some(value()?.to_string()),
                "--seed" => o.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--miners" => o.miners = value()?.parse().map_err(|e| format!("--miners: {e}"))?,
                "--days" => o.days = value()?.parse().map_err(|e| format!("--days: {e}"))?,
                "--shock-day" => {
                    o.shock_day = value()?.parse().map_err(|e| format!("--shock-day: {e}"))?
                }
                "--json" => o.json = true,
                "--quick" => o.quick = true,
                "--spec" => o.spec = Some(value()?.to_string()),
                "--out" => o.out = Some(value()?.to_string()),
                "--threads" => {
                    o.threads = Some(value()?.parse().map_err(|e| format!("--threads: {e}"))?)
                }
                "--turnover" => {
                    let pct: u32 = value()?.parse().map_err(|e| format!("--turnover: {e}"))?;
                    if pct == 0 || pct > 100 {
                        return Err("--turnover: percentage must be in 1..=100".into());
                    }
                    o.turnover = Some(pct);
                }
                "--replicas" => {
                    let n: usize = value()?.parse().map_err(|e| format!("--replicas: {e}"))?;
                    if n == 0 {
                        return Err("--replicas: replica count must be ≥ 1".into());
                    }
                    o.replicas = Some(n);
                }
                "--addr" => o.addr = Some(value()?.to_string()),
                // Degenerate service limits are parse errors, not
                // surprises at the first refused request.
                "--max-sessions" => {
                    let n: usize = value()?
                        .parse()
                        .map_err(|e| format!("--max-sessions: {e}"))?;
                    if n == 0 {
                        return Err("--max-sessions: session cap must be ≥ 1".into());
                    }
                    o.max_sessions = Some(n);
                }
                "--max-inflight" => {
                    let n: usize = value()?
                        .parse()
                        .map_err(|e| format!("--max-inflight: {e}"))?;
                    if n == 0 {
                        return Err("--max-inflight: in-flight cap must be ≥ 1".into());
                    }
                    o.max_inflight = Some(n);
                }
                "--metrics" => o.metrics = true,
                "--trace" => o.trace = Some(value()?.to_string()),
                "--http" => o.http = Some(value()?.to_string()),
                "--help" | "-h" => o.help = true,
                other if !other.starts_with('-') => o.positional.push(other.to_string()),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(o)
    }

    fn game(&self) -> Result<Game, String> {
        let powers = self
            .powers
            .as_ref()
            .ok_or("missing --powers (e.g. --powers 13,11,7)")?;
        let rewards = self
            .rewards
            .as_ref()
            .ok_or("missing --rewards (e.g. --rewards 17,10)")?;
        Game::build(powers, rewards).map_err(|e| e.to_string())
    }

    fn scheduler_kind(&self) -> Result<SchedulerKind, String> {
        let name = self.scheduler.as_deref().unwrap_or("round-robin");
        SchedulerKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| format!("unknown scheduler `{name}`"))
    }
}

fn parse_list(s: &str) -> Result<Vec<u64>, String> {
    s.split(',')
        .map(|part| {
            part.trim()
                .parse::<u64>()
                .map_err(|e| format!("`{part}`: {e}"))
        })
        .collect()
}

fn cmd_list() -> Result<(), String> {
    let mut table = Table::new(vec!["experiment", "regenerates"]);
    for experiment in experiments::registry() {
        table.row(vec![
            experiment.name().to_string(),
            experiment.describe().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("run one with `goc run <experiment> [--json] [--quick] [--seed N]`");
    println!("`churn` also takes `--turnover PCT` (population turnover target, default 10%)");
    println!(
        "`ensemble` also takes `--replicas N` (Monte-Carlo replicas, default 64) and \
         `--threads N` (worker threads; results are thread-invariant)"
    );
    println!(
        "`serve` boots throwaway wire servers and hammers them with concurrent clients; \
         the standing service is `goc serve` (add `--metrics` for a final telemetry \
         exposition), queried with `goc request` — including the live registry via \
         `goc request <ADDR> '{{\"request\":\"metrics\"}}'`"
    );
    Ok(())
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let name = opts
        .positional
        .first()
        .ok_or("missing experiment name (try `goc list`)")?;
    let experiment = experiments::find(name)
        .ok_or_else(|| format!("unknown experiment `{name}` (try `goc list`)"))?;
    let ctx = RunContext {
        seed: opts.seed,
        quick: opts.quick,
        // Only pin a kind when the flag was given; experiments sweep all
        // bundled kinds otherwise.
        scheduler: match opts.scheduler {
            Some(_) => Some(opts.scheduler_kind()?),
            None => None,
        },
        turnover_pct: opts.turnover,
        replicas: opts.replicas,
        threads: opts
            .threads
            .unwrap_or_else(gameofcoins::analysis::default_threads),
    };
    // The flight recorder: experiments can't carry a tracer through
    // the Copy/Serialize `RunContext`, so `--trace` arms the process-
    // global recorder the engine's traced seams already write to.
    let tracer = gameofcoins::telemetry::trace::global();
    if opts.trace.is_some() {
        tracer.enable();
    }
    let report = experiment.run(&ctx);
    if opts.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_ascii());
        for artifact in &report.artifacts {
            experiments::write_results(&artifact.name, &artifact.contents);
        }
    }
    if let Some(path) = &opts.trace {
        dump_trace(path, tracer)?;
    }
    if report.passed() {
        Ok(())
    } else {
        let (ok, total) = report.check_counts();
        Err(format!(
            "experiment `{name}` failed ({ok}/{total} checks passed)"
        ))
    }
}

fn cmd_sweep(opts: &Options) -> Result<(), String> {
    let path = opts
        .spec
        .as_deref()
        .ok_or("missing --spec FILE (a JSON sweep specification)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let spec: SweepSpec =
        serde_json::from_str(&text).map_err(|e| format!("invalid sweep spec {path}: {e}"))?;
    let threads = opts
        .threads
        .unwrap_or_else(gameofcoins::analysis::default_threads);
    let reports = experiments::sweep(&spec, threads)?;
    let json = serde_json::to_string_pretty(&reports)
        .map_err(|e| format!("cannot serialize reports: {e}"))?;
    match &opts.out {
        Some(out) => {
            std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
            for report in &reports {
                eprintln!("{}", report.summary_line());
            }
            eprintln!("[written {out}]");
        }
        None => println!("{json}"),
    }
    let failed: Vec<&str> = reports
        .iter()
        .filter(|r| !r.passed())
        .map(|r| r.experiment.as_str())
        .collect();
    if failed.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "sweep had failing experiments: {}",
            failed.join(", ")
        ))
    }
}

fn cmd_learn(opts: &Options) -> Result<(), String> {
    let game = opts.game()?;
    let kind = opts.scheduler_kind()?;
    let start = Configuration::uniform(CoinId(0), game.system()).map_err(|e| e.to_string())?;
    let mut sched = kind.build(opts.seed);
    let outcome = run(
        &game,
        &start,
        sched.as_mut(),
        LearningOptions {
            record_path: true,
            ..LearningOptions::default()
        },
    )
    .map_err(|e| e.to_string())?;
    println!("start: {start}");
    for mv in &outcome.path {
        println!("  {mv}");
    }
    println!(
        "converged after {} steps at {} (scheduler: {})",
        outcome.steps, outcome.final_config, kind
    );
    let mut table = Table::new(vec!["miner", "power", "coin", "payoff"]);
    for m in game.system().miners() {
        table.row(vec![
            m.id().to_string(),
            m.power().to_string(),
            outcome.final_config.coin_of(m.id()).to_string(),
            game.payoff(m.id(), &outcome.final_config).to_string(),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_enumerate(opts: &Options) -> Result<(), String> {
    let game = opts.game()?;
    let eqs = equilibrium::enumerate_equilibria(&game, 1 << 22).map_err(|e| e.to_string())?;
    println!("{} pure equilibria:", eqs.len());
    let mut table = Table::new(vec!["#", "configuration", "welfare", "payoffs"]);
    for (i, s) in eqs.iter().enumerate() {
        let payoffs: Vec<String> = game
            .payoffs(s)
            .iter()
            .map(|p| fmt_f64(p.to_f64()))
            .collect();
        table.row(vec![
            i.to_string(),
            s.to_string(),
            fmt_f64(game.welfare(s).to_f64()),
            payoffs.join(" "),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_design(opts: &Options) -> Result<(), String> {
    let game = opts.game()?;
    let kind = opts.scheduler_kind()?;
    let (s0, sf) = equilibrium::two_equilibria(&game).map_err(|e| e.to_string())?;
    println!("steering the market from {s0} to {sf} …");
    let problem = DesignProblem::new(game, s0, sf).map_err(|e| e.to_string())?;
    let mut sched = kind.build(opts.seed);
    let outcome = design(
        &problem,
        sched.as_mut(),
        DesignOptions {
            verify_invariants: true,
            ..DesignOptions::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let mut table = Table::new(vec!["stage", "iterations", "steps", "cost"]);
    for s in &outcome.stages {
        table.row(vec![
            s.stage.to_string(),
            s.iterations.to_string(),
            s.steps.to_string(),
            fmt_f64(s.cost),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reached {} — total {} postings, {} steps, cost {}",
        outcome.final_config,
        outcome.total_iterations,
        outcome.total_steps,
        fmt_f64(outcome.total_cost)
    );
    Ok(())
}

fn cmd_serve(opts: &Options) -> Result<(), String> {
    let config = ServerConfig {
        addr: opts
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    let config = ServerConfig {
        max_sessions: opts.max_sessions.unwrap_or(config.max_sessions),
        max_inflight: opts.max_inflight.unwrap_or(config.max_inflight),
        threads: opts.threads.unwrap_or(config.threads),
        ..config
    };
    // `--trace` and `--http`'s `/trace` both need a live recorder;
    // without either the server keeps the free disabled one.
    let tracing = opts.trace.is_some() || opts.http.is_some();
    let server = if tracing {
        let tracer = gameofcoins::telemetry::trace::global().clone();
        tracer.enable();
        registry_server_traced(config, tracer)
    } else {
        registry_server(config)
    }
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // The registry handle outlives the server: with --metrics the
    // final exposition prints after the drain summary.
    let registry = opts.metrics.then(|| server.registry());
    let tracer = server.tracer();
    println!(
        "goc-server listening on {addr} (protocol v{})",
        gameofcoins::proto::PROTOCOL_VERSION
    );
    if let Some(http_addr) = &opts.http {
        let exporter = HttpExporter::bind(http_addr, server.registry(), server.tracer())
            .map_err(|e| format!("cannot bind the HTTP exporter on {http_addr}: {e}"))?;
        let bound = exporter.local_addr().map_err(|e| e.to_string())?;
        exporter.spawn();
        println!("goc-http listening on {bound} (GET /metrics /healthz /trace)");
    }
    println!("stop it with: goc request {addr} '\"Shutdown\"'");
    let summary = server.run().map_err(|e| e.to_string())?;
    println!(
        "drained: {} requests served, {} rejected by name",
        summary.served, summary.rejected
    );
    if let Some(registry) = registry {
        print!("{}", registry.render_text());
    }
    if let Some(path) = &opts.trace {
        dump_trace(path, &tracer)?;
    }
    Ok(())
}

/// Writes the recorder's retained window as Chrome Trace Event Format
/// JSON (load it at chrome://tracing or ui.perfetto.dev) and says what
/// landed — including how many records the ring overwrote.
fn dump_trace(
    path: &str,
    tracer: &gameofcoins::telemetry::trace::TraceRecorder,
) -> Result<(), String> {
    let snapshot = tracer.snapshot();
    std::fs::write(path, snapshot.to_chrome_json())
        .map_err(|e| format!("cannot write trace {path}: {e}"))?;
    eprintln!(
        "[trace: {} events written to {path}, {} overwritten in the ring]",
        snapshot.events.len(),
        snapshot.dropped
    );
    Ok(())
}

fn cmd_request(opts: &Options) -> Result<(), String> {
    let [addr, json] = opts.positional.as_slice() else {
        return Err("usage: goc request <ADDR> <REQUEST-JSON> (see `goc request --help`)".into());
    };
    let request = parse_request(json)?;
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let reply = client.request(request).map_err(|e| e.to_string())?;
    // Frames print exactly as they travelled: one JSON envelope per
    // line — except a metrics report, whose payload IS a text format;
    // it prints verbatim so the output pastes straight into tooling.
    for frame in &reply.frames {
        if let Response::Report(ReportPayload::Metrics { text, .. }) = &frame.response {
            print!("{text}");
            continue;
        }
        println!(
            "{}",
            serde_json::to_string(frame).map_err(|e| format!("cannot render frame: {e}"))?
        );
    }
    match reply.terminal() {
        Response::Report(_) => Ok(()),
        Response::Rejected { reason, detail } => Err(format!("rejected ({reason}): {detail}")),
        Response::Error { detail } => Err(format!("execution failed: {detail}")),
        other => Err(format!("stream ended without a terminal frame: {other:?}")),
    }
}

/// Parses the request argument: the canonical `Request` JSON forms,
/// plus a `{\"request\":\"status|metrics|shutdown\"}` shorthand for the
/// free verbs (lowercase, so it is typeable without shell escapes for
/// the enum's exact capitalization).
fn parse_request(json: &str) -> Result<Request, String> {
    let canonical: Result<Request, _> = serde_json::from_str(json);
    if let Ok(request) = canonical {
        return Ok(request);
    }
    let value: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("invalid request JSON: {e}"))?;
    if let serde_json::Value::Object(pairs) = &value {
        let shorthand = pairs.iter().find_map(|(key, v)| match v {
            serde_json::Value::String(name) if key == "request" => Some(name.as_str()),
            _ => None,
        });
        if let Some(name) = shorthand {
            return match name {
                "status" => Ok(Request::Status),
                "metrics" => Ok(Request::Metrics),
                "shutdown" => Ok(Request::Shutdown),
                other => Err(format!(
                    "unknown request shorthand `{other}` (status | metrics | shutdown)"
                )),
            };
        }
    }
    Err(format!(
        "invalid request JSON `{json}` (see `goc request --help`)"
    ))
}

fn cmd_simulate(opts: &Options) -> Result<(), String> {
    // With --spec, run an arbitrary declarative scenario from disk;
    // otherwise the classic parameterized Figure 1 market.
    let (mut sim, coin_names, description) = match &opts.spec {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let spec: ScenarioSpec = serde_json::from_str(&text)
                .map_err(|e| format!("invalid scenario spec {path}: {e}"))?;
            let sim = spec.build().map_err(|e| e.to_string())?;
            let names: Vec<String> = spec.chains.iter().map(|c| c.name.clone()).collect();
            let description = format!(
                "scenario `{}` over {} days ({} miners)",
                spec.name,
                spec.horizon_days,
                spec.miners.count()
            );
            (sim, names, description)
        }
        None => {
            let sim = btc_bch(BtcBchParams {
                num_miners: opts.miners,
                horizon_days: opts.days,
                shock_day: opts.shock_day,
                revert_day: opts.shock_day + 15.0,
                seed: opts.seed.max(1),
                ..BtcBchParams::default()
            });
            let description = format!(
                "BTC/BCH migration over {} days ({} miners)",
                opts.days, opts.miners
            );
            (sim, vec!["BTC".into(), "BCH".into()], description)
        }
    };
    let metrics = sim.run().clone();
    let days: Vec<f64> = metrics.times.iter().map(|t| t / DAY).collect();
    // Chart the shares of every coin beyond the first (the first coin's
    // share is their complement); single-coin scenarios chart coin 0.
    let charted: Vec<usize> = if metrics.num_coins() > 1 {
        (1..metrics.num_coins()).collect()
    } else {
        vec![0]
    };
    let shares: Vec<Vec<f64>> = charted
        .iter()
        .map(|&c| {
            (0..metrics.len())
                .map(|t| metrics.hashrate_share(c, t))
                .collect()
        })
        .collect();
    const SYMBOLS: [char; 6] = ['#', 'o', '*', '+', 'x', '%'];
    let labels: Vec<String> = charted
        .iter()
        .map(|&c| format!("{} share", coin_names[c]))
        .collect();
    let series: Vec<Series<'_>> = charted
        .iter()
        .zip(&shares)
        .zip(&labels)
        .enumerate()
        .map(|(i, ((_, values), label))| Series {
            name: label,
            values,
            symbol: SYMBOLS[i % SYMBOLS.len()],
        })
        .collect();
    println!("hashrate share — {description}:");
    println!("{}", ascii_chart(&days, &series, 72, 12));
    let blocks: Vec<String> = sim
        .chains()
        .iter()
        .zip(&coin_names)
        .map(|(chain, name)| format!("{name} {}", chain.height()))
        .collect();
    println!(
        "blocks: {}; switches: {}",
        blocks.join(", "),
        metrics.total_switches
    );
    Ok(())
}
