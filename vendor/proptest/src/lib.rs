//! Vendored, minimal `proptest` stand-in so the workspace's property
//! tests run offline. Implements the subset this workspace uses:
//!
//! (Patterns are allowed on the left of `in`, e.g.
//! `(game, start) in arb_game_and_start()`.)
//!
//! * the `proptest! { #![proptest_config(...)] #[test] fn f(x in S) {..} }`
//!   macro form,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, `prop_oneof!`,
//!   `Just`, ranges as strategies, tuples of strategies,
//!   `proptest::collection::vec`, and the `prop_map` / `prop_flat_map` /
//!   `prop_filter` / `prop_filter_map` / `boxed` combinators.
//!
//! Differences from real proptest: cases are sampled from a fixed seed
//! (deterministic across runs) and failures are **not shrunk** — the
//! failing case number and message are reported instead.

#![warn(rust_2018_idioms)]

/// Strategy combinators and sampling.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of one type.
    ///
    /// `sample` returns `None` when the draw was rejected (filters).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value (or a rejection).
        fn sample(&self, rng: &mut SmallRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values failing the predicate.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }

        /// Maps values through `f`, rejecting `None`s.
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            _reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
    pub trait DynStrategy {
        /// The generated type.
        type Value;
        /// Draws one value (or a rejection).
        fn sample_dyn(&self, rng: &mut SmallRng) -> Option<Self::Value>;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn sample_dyn(&self, rng: &mut SmallRng) -> Option<S::Value> {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> Option<T> {
            self.inner.sample_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut SmallRng) -> Option<O> {
            self.inner.sample(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut SmallRng) -> Option<S2::Value> {
            let v = self.inner.sample(rng)?;
            (self.f)(v).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut SmallRng) -> Option<S::Value> {
            self.inner.sample(rng).filter(&self.f)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut SmallRng) -> Option<O> {
            self.inner.sample(rng).and_then(&self.f)
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// A uniform choice among boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> Option<T> {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut SmallRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.sample(rng)?,)+))
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Marker so `PhantomData` stays referenced if combinators change.
    #[allow(dead_code)]
    type Unused = PhantomData<()>;
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Something usable as a vector-length specification.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut SmallRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut SmallRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy for vectors of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose length comes from `len` (a `usize` or a
    /// `Range<usize>`) and whose elements come from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Option<Vec<S::Value>> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The test runner: configuration, errors, and the case loop.
pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw another case.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject(String::from("prop_assume rejected"))
        }
    }

    /// Runs `config.cases` accepted cases of `f` over `strategy`.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failed case
    /// or when rejections exceed `20 × cases + 1000` attempts.
    pub fn run<S: Strategy>(
        config: ProptestConfig,
        strategy: S,
        f: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) {
        let mut rng = SmallRng::seed_from_u64(0x5EED_CA5E_0001);
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = config.cases as u64 * 20 + 1000;
        while accepted < config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "proptest: too many rejections ({accepted}/{} cases accepted after {attempts} attempts)",
                config.cases
            );
            let Some(value) = strategy.sample(&mut rng) else {
                continue;
            };
            match f(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case #{} failed: {msg}", accepted + 1)
                }
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec` also works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. See the crate docs for the supported form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(config, ($($strat,)+), |($($arg,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Asserts inside a proptest body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {} ({l:?} vs {r:?})",
                    stringify!($left),
                    stringify!($right)
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Rejects the current case (sampling continues with a fresh draw).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn combinators_compose(x in (1u64..4).prop_map(|v| v * 10)) {
            prop_assert!(x == 10 || x == 20 || x == 30, "unexpected {}", x);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic() {
        crate::test_runner::run(ProptestConfig::with_cases(4), 0u32..2, |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
