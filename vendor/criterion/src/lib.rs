//! Vendored, minimal `criterion` stand-in so the workspace's benchmarks
//! build and run offline. Implements the subset the benches use —
//! `Criterion::{bench_function, benchmark_group}`, groups with
//! `sample_size`/`throughput`/`bench_with_input`/`finish`,
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark warms up briefly,
//! then runs timed batches and reports the mean wall-clock time per
//! iteration. No statistical analysis, no HTML reports.

#![warn(rust_2018_idioms)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter (inside a named group).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean time per iteration measured by the last `iter` call.
    last_mean: Option<Duration>,
    /// Target measurement time.
    target: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed run (also primes caches/allocs).
        black_box(f());
        // Estimate a batch size from a single timed call.
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let iters = (self.target.as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.last_mean = Some(elapsed / iters);
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one(label: &str, target: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        last_mean: None,
        target,
    };
    f(&mut b);
    match b.last_mean {
        Some(mean) => println!("{label:<60} time: {}", fmt_duration(mean)),
        None => println!("{label:<60} (no measurement: closure never called iter)"),
    }
}

/// The benchmark driver.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.target, |b| f(b));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (sampling is adaptive here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.target = d.min(Duration::from_secs(2));
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.target, |b| f(b, input));
        self
    }

    /// Benchmarks a function inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.target, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion {
            target: Duration::from_millis(5),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
