//! Vendored minimal `#[derive(Serialize, Deserialize)]` for the sibling
//! vendored `serde` crate. Parses the item with a hand-rolled token
//! walker (no `syn`): supports non-generic structs (named, tuple, unit)
//! and enums whose variants are unit, newtype, tuple, or struct-shaped —
//! exactly the shapes in this workspace. Externally tagged enum
//! representation, matching real serde's default.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored, `Value`-model flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (the vendored, `Value`-model flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid")
}

// ---------------------------------------------------------------------
// A tiny item model
// ---------------------------------------------------------------------

enum Fields {
    /// `struct S;`
    Unit,
    /// `struct S(T, U);` — field count.
    Tuple(usize),
    /// `struct S { a: T, b: U }` — field names in order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

// ---------------------------------------------------------------------
// Token walking
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips attributes (`#[...]`, including doc comments) and
    /// visibility (`pub`, `pub(crate)`, …).
    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    // The bracket group of the attribute.
                    if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                    {
                        self.pos += 1;
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    self.pos += 1;
                    if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Consumes type tokens until a top-level `,` (tracking `<`/`>`
    /// nesting), leaving the cursor on the comma (not consumed).
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    // Find `struct` or `enum`, skipping attributes/visibility.
    let kind_word = loop {
        c.skip_attrs_and_vis();
        match c.next() {
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
                // Words like `union` (unsupported) or stray idents.
                if word == "union" {
                    return Err("derive(Serialize/Deserialize): unions unsupported".into());
                }
            }
            Some(_) => {}
            None => return Err("derive: could not find `struct` or `enum`".into()),
        }
    };
    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("derive: expected item name, got {other:?}")),
    };
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive: generic type `{name}` unsupported by vendored serde_derive"
        ));
    }
    if kind_word == "struct" {
        match c.next() {
            None => Ok(Item {
                name,
                kind: ItemKind::Struct(Fields::Unit),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                kind: ItemKind::Struct(Fields::Unit),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: ItemKind::Struct(Fields::Named(parse_named_fields(g.stream())?)),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                kind: ItemKind::Struct(Fields::Tuple(count_tuple_fields(g.stream()))),
            }),
            other => Err(format!("derive: unexpected struct body {other:?}")),
        }
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: ItemKind::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("derive: expected enum body, got {other:?}")),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        let field = match c.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("derive: expected field name, got {other:?}")),
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("derive: expected `:` after field, got {other:?}")),
        }
        c.skip_type();
        fields.push(field);
        match c.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => {
                return Err(format!(
                    "derive: expected `,` between fields, got {other:?}"
                ))
            }
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0usize;
    let mut saw_token = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        let name = match c.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("derive: expected variant name, got {other:?}")),
        };
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        match c.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err("derive: explicit enum discriminants unsupported".into())
            }
            other => {
                return Err(format!(
                    "derive: expected `,` between variants, got {other:?}"
                ))
            }
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation (string-built, then reparsed)
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::Struct(Fields::Named(fields)) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(::std::string::String::from({vname:?}))"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(x0) => ::serde::__private::tagged({vname:?}, ::serde::Serialize::to_value(x0))"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::__private::tagged({vname:?}, ::serde::Value::Array(vec![{}]))",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::__private::tagged({vname:?}, ::serde::Value::Object(vec![{}]))",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => format!("Ok({name})"),
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::__private::whole(&v)?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::element(&v, {i})?"))
                .collect();
            format!("Ok({name}({}))", items.join(", "))
        }
        ItemKind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(&v, {f:?})?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|var| {
                    let vname = &var.name;
                    match &var.fields {
                        Fields::Unit => format!("{vname:?} => Ok({name}::{vname})"),
                        Fields::Tuple(1) => format!(
                            "{vname:?} => {{\n\
                                 let p = payload.ok_or_else(|| ::serde::de::Error::custom(\"variant needs a payload\"))?;\n\
                                 Ok({name}::{vname}(::serde::__private::whole(&p)?))\n\
                             }}"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::__private::element(&p, {i})?"))
                                .collect();
                            format!(
                                "{vname:?} => {{\n\
                                     let p = payload.ok_or_else(|| ::serde::de::Error::custom(\"variant needs a payload\"))?;\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}",
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::__private::field(&p, {f:?})?"))
                                .collect();
                            format!(
                                "{vname:?} => {{\n\
                                     let p = payload.ok_or_else(|| ::serde::de::Error::custom(\"variant needs a payload\"))?;\n\
                                     Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (tag, payload) = ::serde::__private::variant(&v)?;\n\
                 match tag.as_str() {{\n\
                     {},\n\
                     other => Err(::serde::de::Error::custom(format!(\"unknown variant `{{other}}`\")))\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(d: D) -> ::std::result::Result<Self, D::Error> {{\n\
                 let v = ::serde::Deserializer::into_value(d)?;\n\
                 let r = (move || -> ::std::result::Result<{name}, ::serde::de::DeError> {{\n\
                     {body}\n\
                 }})();\n\
                 r.map_err(|e| <D::Error as ::serde::de::Error>::custom(e))\n\
             }}\n\
         }}"
    )
}
