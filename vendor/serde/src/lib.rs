//! Vendored, minimal, API-shape-compatible stand-in for `serde` so the
//! workspace builds offline. Serialization goes through an in-memory
//! [`Value`] tree (the JSON data model) instead of serde's visitor
//! machinery; `#[derive(Serialize, Deserialize)]` is provided by the
//! sibling `serde_derive` crate and generates `Value` conversions.
//!
//! Supported surface (exactly what this workspace uses):
//!
//! * `#[derive(Serialize, Deserialize)]` on non-generic structs
//!   (named, tuple/newtype, unit) and enums (unit, newtype, tuple, and
//!   struct variants; externally tagged, like serde's default).
//! * Manual `impl<'de> Deserialize<'de> for T` against a
//!   [`Deserializer`] with `serde::de::Error::custom`.
//! * `serde_json::{to_string, to_string_pretty, from_str}` over these
//!   traits (see the vendored `serde_json`).

#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integers (covers every integer type up to `i128`).
    Int(i128),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    String(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization error machinery (mirrors `serde::de`).
pub mod de {
    use std::fmt;

    /// The error-construction contract deserializers expose.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// The concrete error used by [`crate::Value`]-backed deserialization.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct DeError(pub String);

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for DeError {}

    impl Error for DeError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            DeError(msg.to_string())
        }
    }
}

/// A source of [`Value`]s (the stand-in for serde's `Deserializer`).
pub trait Deserializer<'de>: Sized {
    /// The error type reported by this deserializer.
    type Error: de::Error;

    /// Consumes the deserializer, yielding the underlying value tree.
    fn into_value(self) -> Result<Value, Self::Error>;
}

impl<'de> Deserializer<'de> for Value {
    type Error = de::DeError;

    fn into_value(self) -> Result<Value, de::DeError> {
        Ok(self)
    }
}

impl<'de> Deserializer<'de> for &Value {
    type Error = de::DeError;

    fn into_value(self) -> Result<Value, de::DeError> {
        Ok(self.clone())
    }
}

/// Deserialization from the [`Value`] model.
pub trait Deserialize<'de>: Sized {
    /// Reads `Self` out of a deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// `Deserialize` without borrowed data (all of ours is owned).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

// ---------------------------------------------------------------------
// Primitive and container impls
// ---------------------------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.into_value()? {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| de::Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    // Whole-number floats are accepted, but through the
                    // same range check as integers — a bare `as` cast
                    // would silently saturate -1.0 to 0 for unsigned
                    // targets or 1e30 to the type's maximum.
                    Value::Float(f)
                        if f.fract() == 0.0
                            && f >= i128::MIN as f64
                            && f <= i128::MAX as f64 =>
                    {
                        <$t>::try_from(f as i128).map_err(|_| {
                            de::Error::custom(concat!("number out of range for ", stringify!($t)))
                        })
                    }
                    other => Err(de::Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Int(*self as i128)
    }
}

impl<'de> Deserialize<'de> for u128 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Int(i) => {
                u128::try_from(i).map_err(|_| de::Error::custom("negative integer for u128"))
            }
            other => Err(de::Error::custom(format!("expected u128, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                // NB: `Null` is rejected (matching real serde_json), so
                // a missing required float field reports "missing field"
                // instead of silently deserializing to NaN.
                match d.into_value()? {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    other => Err(de::Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::String(s) => Ok(s),
            other => Err(de::Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de::Error::custom(format!("expected char, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_pointer {
    ($($p:ident),*) => {$(
        impl<T: Serialize> Serialize for $p<T> {
            fn to_value(&self) -> Value {
                (**self).to_value()
            }
        }
        impl<'de, T: DeserializeOwned> Deserialize<'de> for $p<T> {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                T::deserialize(d).map($p::new)
            }
        }
    )*};
}
use std::boxed::Box;
use std::rc::Rc;
use std::sync::Arc;
impl_serde_pointer!(Box, Rc, Arc);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|item| T::deserialize(item).map_err(de::Error::custom))
                .collect(),
            other => Err(de::Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Null => Ok(None),
            v => T::deserialize(v).map(Some).map_err(de::Error::custom),
        }
    }
}

impl<T: Serialize> Serialize for BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for BTreeMap<String, T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Object(pairs) => pairs
                .into_iter()
                .map(|(k, v)| T::deserialize(v).map(|v| (k, v)).map_err(de::Error::custom))
                .collect(),
            other => Err(de::Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.into_value()? {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(de::Error::custom("tuple length mismatch"));
                        }
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $idx;
                            $name::deserialize(it.next().expect("length checked"))
                                .map_err(|e| de::Error::custom(e))?
                        },)+))
                    }
                    other => Err(de::Error::custom(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, E: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.into_value()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::__private::render(self, false))
    }
}

// ---------------------------------------------------------------------
// Support machinery for the derive macro (not a public API)
// ---------------------------------------------------------------------

/// Helpers the `serde_derive` expansion calls. Not a stable interface.
pub mod __private {
    use super::de::{DeError, Error as _};
    use super::{DeserializeOwned, Value};

    /// Looks up and deserializes a named struct field (missing keys
    /// read as `Null`, which `Option` fields turn into `None`).
    pub fn field<T: DeserializeOwned>(v: &Value, name: &str) -> Result<T, DeError> {
        let field_value = match v {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::Null),
            other => {
                return Err(DeError::custom(format!(
                    "expected object with field `{name}`, got {other:?}"
                )))
            }
        };
        if field_value == Value::Null && v.get(name).is_none() {
            // Distinguish "missing" from a literal null for diagnostics.
            return T::deserialize(Value::Null)
                .map_err(|_| DeError::custom(format!("missing field `{name}`")));
        }
        T::deserialize(field_value).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
    }

    /// Deserializes positional element `idx` of an array value.
    pub fn element<T: DeserializeOwned>(v: &Value, idx: usize) -> Result<T, DeError> {
        match v {
            Value::Array(items) => items
                .get(idx)
                .cloned()
                .ok_or_else(|| DeError::custom(format!("missing tuple element {idx}")))
                .and_then(|item| {
                    T::deserialize(item).map_err(|e| DeError::custom(format!("element {idx}: {e}")))
                }),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }

    /// Deserializes a whole value (newtype-struct bodies).
    pub fn whole<T: DeserializeOwned>(v: &Value) -> Result<T, DeError> {
        T::deserialize(v.clone())
    }

    /// Builds an externally-tagged enum payload: `{"Variant": value}`.
    pub fn tagged(variant: &str, payload: Value) -> Value {
        Value::Object(vec![(variant.to_string(), payload)])
    }

    /// Splits an enum value into `(variant_name, payload)` — a bare
    /// string is a unit variant; `{"Variant": payload}` carries data.
    pub fn variant(v: &Value) -> Result<(String, Option<Value>), DeError> {
        match v {
            Value::String(s) => Ok((s.clone(), None)),
            Value::Object(pairs) if pairs.len() == 1 => {
                Ok((pairs[0].0.clone(), Some(pairs[0].1.clone())))
            }
            other => Err(DeError::custom(format!(
                "expected enum (string or single-key object), got {other:?}"
            ))),
        }
    }

    /// Renders a value as JSON text (used by the vendored `serde_json`).
    pub fn render(v: &Value, pretty: bool) -> String {
        let mut out = String::new();
        render_into(v, pretty, 0, &mut out);
        out
    }

    fn push_json_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn render_into(v: &Value, pretty: bool, indent: usize, out: &mut String) {
        let pad = |n: usize| "  ".repeat(n);
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Keep a trailing `.0` so floats survive a round-trip
                    // as floats (and always re-parse as JSON numbers).
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => push_json_string(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&pad(indent + 1));
                    }
                    render_into(item, pretty, indent + 1, out);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&pad(indent));
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, item)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&pad(indent + 1));
                    }
                    push_json_string(k, out);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    render_into(item, pretty, indent + 1, out);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&pad(indent));
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(u64::deserialize(42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::deserialize(2.5f64.to_value()).unwrap(), 2.5);
        assert!(bool::deserialize(true.to_value()).unwrap());
        assert_eq!(
            String::deserialize("hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u64> = Vec::deserialize(vec![1u64, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let o: Option<u64> = Option::deserialize(Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::deserialize(Value::Int(300)).is_err());
        assert!(u64::deserialize(Value::Int(-1)).is_err());
    }

    #[test]
    fn out_of_range_floats_do_not_saturate_into_integers() {
        assert!(u64::deserialize(Value::Float(-1.0)).is_err());
        assert!(u64::deserialize(Value::Float(1e30)).is_err());
        assert!(u8::deserialize(Value::Float(300.0)).is_err());
        assert_eq!(u64::deserialize(Value::Float(7.0)).unwrap(), 7);
        assert!(u64::deserialize(Value::Float(7.5)).is_err());
    }

    #[test]
    fn missing_float_fields_are_errors_not_nan() {
        assert!(f64::deserialize(Value::Null).is_err());
        let v = Value::Object(vec![]);
        assert!(__private::field::<f64>(&v, "inertia")
            .unwrap_err()
            .to_string()
            .contains("missing field"));
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
        let a: u64 = __private::field(&v, "a").unwrap();
        assert_eq!(a, 1);
        assert!(__private::field::<u64>(&v, "b").is_err());
        let missing: Option<u64> = __private::field(&v, "b").unwrap();
        assert_eq!(missing, None);
    }
}
