//! Vendored, minimal `serde_json` stand-in (offline build): JSON text
//! rendering and parsing over the vendored `serde` crate's [`Value`]
//! model. Supports the workspace surface: `to_string`,
//! `to_string_pretty`, `to_value`, `from_str`, `from_value`, the
//! streaming helpers `to_writer` / `to_vec` / `from_slice` (the wire
//! layer in `goc-proto` frames line-delimited messages over these), and
//! re-exports [`Value`].

#![warn(rust_2018_idioms)]

use std::fmt;
use std::io;

pub use serde::Value;
use serde::{DeserializeOwned, Serialize};

/// Errors from JSON parsing or conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// The usual `serde_json` result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::__private::render(&value.to_value(), false))
}

/// Serializes a value to pretty-printed JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::__private::render(&value.to_value(), true))
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserializes a typed value from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::deserialize(value).map_err(|e| Error(e.to_string()))
}

/// Parses JSON text into a typed value.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::deserialize(value).map_err(|e| Error(e.to_string()))
}

/// Serializes a value as compact JSON into a byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Writes a value as compact JSON text into an [`io::Write`] sink.
///
/// I/O failures surface as [`Error`]s carrying the underlying message
/// (this stand-in has a single error type, like-for-like with the
/// workspace's use of real `serde_json`'s `Error::io`).
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error(format!("io: {e}")))
}

/// Parses a typed value from JSON bytes (must be valid UTF-8).
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8 in JSON: {e}")))?;
    from_str(text)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            // Surrogate pairs: only handle BMP + paired
                            // surrogates (sufficient for our output).
                            if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error("truncated \\u escape".into()))?;
                                self.pos += 4;
                                let low = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| Error("invalid \\u escape".into()))?,
                                    16,
                                )
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error("invalid surrogate pair".into()))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error("invalid \\u codepoint".into()))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting here (multi-byte safe).
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_round_trip() {
        let text = r#"{"a": [1, 2.5, true, null, "x\n\"y\""], "b": {"c": -7}}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Int(-7)));
        let rendered = to_string(&v).unwrap();
        let reparsed = parse_value(&rendered).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn pretty_output_reparses() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("fig1".into())),
            (
                "series".into(),
                Value::Array(vec![Value::Float(0.5), Value::Int(3)]),
            ),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1.5f64, 2.0, -3.25];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn floats_always_reparse_as_floats() {
        let text = to_string(&vec![2.0f64]).unwrap();
        assert_eq!(text, "[2.0]");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(from_str::<Vec<f64>>("{}").is_err());
    }

    #[test]
    fn streaming_helpers_round_trip() {
        let xs = vec![1u64, 2, 3];
        let bytes = to_vec(&xs).unwrap();
        assert_eq!(bytes, b"[1,2,3]");
        let back: Vec<u64> = from_slice(&bytes).unwrap();
        assert_eq!(back, xs);

        let mut sink = Vec::new();
        to_writer(&mut sink, &xs).unwrap();
        sink.push(b'\n');
        assert_eq!(sink, b"[1,2,3]\n");

        assert!(from_slice::<Vec<u64>>(b"[1,").is_err());
        assert!(from_slice::<Vec<u64>>(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn to_writer_surfaces_io_errors() {
        struct Broken;
        impl io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = to_writer(Broken, &7u64).unwrap_err();
        assert!(err.to_string().contains("pipe closed"));
    }

    #[test]
    fn malformed_surrogate_pairs_error_instead_of_panicking() {
        // High surrogate followed by a non-low-surrogate escape.
        assert!(parse_value("\"\\ud800\\u0041\"").is_err());
        // Unpaired high surrogate at end of string.
        assert!(parse_value("\"\\ud800\"").is_err());
        // A valid pair still decodes.
        let v = parse_value("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::String("😀".into()));
    }
}
