//! Vendored, minimal, API-compatible subset of the `rand` crate (0.8 line)
//! so the workspace builds offline. Implements exactly the surface the
//! workspace uses: `Rng::{gen, gen_range, gen_bool}`, `SeedableRng`,
//! `rngs::SmallRng`, and `seq::SliceRandom::{choose, shuffle}`.
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`, but the workspace only relies on
//! *determinism per seed*, never on specific draws.

#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// The core random source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly with `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

/// Types `Rng::gen_range` can sample uniformly.
///
/// One *generic* `SampleRange` impl per range shape (mirroring upstream
/// `rand`) so integer-literal inference flows through `gen_range` — e.g.
/// `row[rng.gen_range(0..4)]` infers `usize` from the indexing context.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return u128::sample_standard(rng) as $t;
                    }
                    ((lo as i128).wrapping_add((u128::sample_standard(rng) % span) as i128)) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                    ((lo as i128).wrapping_add((u128::sample_standard(rng) % span) as i128)) as $t
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing random-sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type (`f64` in `[0,1)`, full
    /// width for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (xoshiro256++ under the hood).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// The `rand::prelude` re-exports.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(0usize..7);
            assert!(w < 7);
            let x = rng.gen_range(-5i128..=5);
            assert!((-5..=5).contains(&x));
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose_cover_elements() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
