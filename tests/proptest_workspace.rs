//! Workspace-level property tests: invariants that span crates.

use gameofcoins::chain::{Blockchain, ChainParams, DifficultyRule, FeeParams, SubsidySchedule};
use gameofcoins::game::{CoinId, Configuration, Game};
use gameofcoins::learning::{run, LearningOptions, SchedulerKind};
use proptest::prelude::*;

fn arb_game() -> impl Strategy<Value = Game> {
    (2usize..8, 2usize..4).prop_flat_map(|(n, k)| {
        (
            proptest::collection::vec(1u64..2000, n),
            proptest::collection::vec(1u64..2000, k),
        )
            .prop_map(|(p, r)| Game::build(&p, &r).expect("valid parameters"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 as a property: every scheduler converges from every
    /// start, and the final configuration is stable.
    #[test]
    fn learning_converges_from_any_start(
        game in arb_game(),
        seed in 0u64..1000,
        kind_idx in 0usize..6,
    ) {
        let kind = SchedulerKind::ALL[kind_idx];
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let start = gameofcoins::game::gen::random_config(&mut rng, game.system());
        let mut sched = kind.build(seed);
        let outcome = run(&game, &start, sched.as_mut(), LearningOptions::default()).unwrap();
        prop_assert!(outcome.converged);
        prop_assert!(game.is_stable(&outcome.final_config));
    }

    /// Welfare never decreases along better-response learning's final
    /// outcome relative to a clumped start (coverage can only improve),
    /// and equals total reward whenever the result covers all coins.
    #[test]
    fn welfare_of_equilibrium_at_least_clumped(game in arb_game(), coin in 0usize..2) {
        let coin = CoinId(coin % game.system().num_coins());
        let start = Configuration::uniform(coin, game.system()).unwrap();
        let mut sched = SchedulerKind::RoundRobin.build(0);
        let outcome = run(&game, &start, sched.as_mut(), LearningOptions::default()).unwrap();
        prop_assert!(game.welfare(&outcome.final_config) >= game.welfare(&start));
    }

    /// Chain conservation: whatever the block pattern, total miner
    /// revenue equals total minted reward, and difficulty stays positive.
    #[test]
    fn chain_conserves_rewards(
        intervals in proptest::collection::vec(1.0f64..5000.0, 1..200),
        miners in proptest::collection::vec(0usize..5, 1..200),
        rule_idx in 0usize..3,
    ) {
        let rule = [
            DifficultyRule::Fixed,
            DifficultyRule::Epoch { interval: 10, max_factor: 4.0 },
            DifficultyRule::MovingAverage { window: 12, max_step: 2.0 },
        ][rule_idx];
        let mut chain = Blockchain::new(ChainParams {
            name: "P".to_string(),
            target_spacing: 600.0,
            initial_difficulty: 1e6,
            subsidy: SubsidySchedule::new(1_000_000, 50),
            difficulty_rule: rule,
            fees: FeeParams { fee_rate: 3.0, max_fees_per_block: 100_000 },
        });
        let mut t = 0.0;
        for (dt, m) in intervals.iter().zip(miners.iter().cycle()) {
            t += dt;
            chain.append_block(t, *m);
            prop_assert!(chain.difficulty() > 0.0);
        }
        let minted: u64 = chain.blocks().iter().map(|b| b.reward()).sum();
        prop_assert_eq!(minted, chain.total_revenue());
    }

    /// Snapshot bridge: quantization preserves the ordering of weights
    /// and powers.
    #[test]
    fn bridge_quantization_preserves_order(seed in 0u64..50) {
        use gameofcoins::sim::scenario::{btc_bch, BtcBchParams};
        let sim = btc_bch(BtcBchParams {
            num_miners: 10,
            horizon_days: 1.0,
            shock_day: 1e9,
            revert_day: 2e9,
            seed,
            ..BtcBchParams::default()
        });
        let (game, _) = gameofcoins::sim::snapshot_game(&sim, 0.0, 1e-4).unwrap();
        // Weight order: BTC >> BCH at start.
        prop_assert!(game.reward_of(CoinId(0)) > game.reward_of(CoinId(1)));
        // Power order matches hashrate order.
        let agents = sim.agents();
        for i in 1..agents.len() {
            if agents[i - 1].hashrate > agents[i].hashrate {
                prop_assert!(
                    game.system().power_of(gameofcoins::game::MinerId(i - 1))
                        >= game.system().power_of(gameofcoins::game::MinerId(i))
                );
            }
        }
    }
}
