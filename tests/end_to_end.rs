//! Cross-crate integration: the full pipeline from a mechanistic market
//! snapshot to a reward-design manipulation, exercising `goc-sim`,
//! `goc-chain`, `goc-market`, `goc-game`, `goc-learning`, and
//! `goc-design` together.

use gameofcoins::design::{design, DesignOptions, DesignProblem};
use gameofcoins::game::{equilibrium, CoinId, Configuration};
use gameofcoins::learning::{run, LearningOptions, SchedulerKind};
use gameofcoins::sim::scenario::{btc_bch, BtcBchParams, DAY};

/// Simulate a market, snapshot it into the exact game, and verify the
/// game agrees with the simulator about what the market looks like.
#[test]
fn market_snapshot_agrees_with_game_model() {
    let mut sim = btc_bch(BtcBchParams {
        num_miners: 12,
        horizon_days: 10.0,
        shock_day: 1e9,
        revert_day: 2e9,
        volatility: 0.0,
        seed: 4,
        ..BtcBchParams::default()
    });
    sim.run();
    let (game, config) = gameofcoins::sim::snapshot_game(&sim, 10.0 * DAY, 1e-4).unwrap();
    assert_eq!(game.system().num_miners(), 12);

    // The simulator's steady state is (near-)stable in the static game:
    // allow at most a couple of miners to still have marginal better
    // responses (agent granularity / inertia).
    let unstable = game.unstable_miners(&config).len();
    assert!(unstable <= 3, "{unstable} miners far from equilibrium");

    // Sharper: agents move only for gains above their inertia, so the
    // steady state must be an ε-equilibrium of the snapshot game for ε
    // slightly above the largest agent inertia (0.0705 here).
    let eps = gameofcoins::game::Ratio::new(1, 10).unwrap();
    assert!(
        game.is_epsilon_stable(&config, eps),
        "simulated steady state is not a 10% ε-equilibrium"
    );

    // Learning from the simulated state converges quickly.
    let mut sched = SchedulerKind::RoundRobin.build(0);
    let outcome = run(&game, &config, sched.as_mut(), LearningOptions::default()).unwrap();
    assert!(outcome.converged);
    assert!(outcome.steps <= 6, "simulated state was far from stable");
}

/// Full manipulation pipeline on a game with simulated-market weights.
#[test]
fn design_attack_on_snapshot_game() {
    // Small population so the equilibrium enumeration stays cheap.
    let mut sim = btc_bch(BtcBchParams {
        num_miners: 6,
        horizon_days: 5.0,
        shock_day: 1e9,
        revert_day: 2e9,
        volatility: 0.0,
        seed: 9,
        ..BtcBchParams::default()
    });
    sim.run();
    // Coarse quantization gives small distinct powers.
    let (game, _) = gameofcoins::sim::snapshot_game(&sim, 5.0 * DAY, 1e-2).unwrap();
    if !game.system().powers_distinct() {
        // Zipf hashrates are distinct; quantization should keep them so.
        panic!("quantized powers unexpectedly collided");
    }
    let eqs = equilibrium::enumerate_equilibria(&game, 1 << 16).unwrap();
    assert!(!eqs.is_empty(), "every game has a pure equilibrium");
    if eqs.len() < 2 {
        return; // nothing to design between
    }
    let (s0, sf) = (eqs[0].clone(), eqs[eqs.len() - 1].clone());
    let problem = DesignProblem::new(game.clone(), s0, sf.clone()).unwrap();
    let mut sched = SchedulerKind::UniformRandom.build(3);
    let outcome = design(
        &problem,
        sched.as_mut(),
        DesignOptions {
            verify_invariants: true,
            ..DesignOptions::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.final_config, sf);
    assert!(game.is_stable(&outcome.final_config));
}

/// The three-layer consistency claim behind the `cross` experiment:
/// value shares ≈ game equilibrium shares ≈ simulated hashrate shares.
#[test]
fn value_share_predicts_equilibrium_and_simulation() {
    let mut sim = btc_bch(BtcBchParams {
        num_miners: 40,
        horizon_days: 20.0,
        shock_day: 1e9,
        revert_day: 2e9,
        volatility: 0.0,
        seed: 11,
        ..BtcBchParams::default()
    });
    let metrics = sim.run().clone();
    let sim_share = metrics.hashrate_share(1, metrics.len() - 1);

    let weights = gameofcoins::sim::coin_weights(&sim, 20.0 * DAY);
    let value_share = weights[1] / (weights[0] + weights[1]);

    let (game, _) = gameofcoins::sim::snapshot_game(&sim, 20.0 * DAY, 1e-4).unwrap();
    let eq = equilibrium::greedy_equilibrium(&game);
    let masses = eq.masses(game.system());
    let eq_share = masses.mass_of(CoinId(1)) as f64 / masses.total() as f64;

    assert!(
        (sim_share - value_share).abs() < 0.05,
        "{sim_share} vs {value_share}"
    );
    assert!(
        (eq_share - value_share).abs() < 0.05,
        "{eq_share} vs {value_share}"
    );
}

/// Restarting learning from a designed equilibrium does nothing — the
/// "pay once, stay forever" property end to end.
#[test]
fn designed_equilibrium_is_self_sustaining() {
    let game = gameofcoins::game::Game::build(&[21, 13, 8, 5, 3, 2], &[29, 17]).unwrap();
    let (s0, sf) = equilibrium::two_equilibria(&game).unwrap();
    let problem = DesignProblem::new(game.clone(), s0, sf.clone()).unwrap();
    let mut sched = SchedulerKind::MinGain.build(0);
    let outcome = design(&problem, sched.as_mut(), DesignOptions::default()).unwrap();

    // After reverting to the original rewards, every scheduler stays put.
    for kind in SchedulerKind::ALL {
        let mut sched = kind.build(1);
        let after = run(
            &game,
            &outcome.final_config,
            sched.as_mut(),
            LearningOptions::default(),
        )
        .unwrap();
        assert_eq!(after.steps, 0, "{kind} moved from the designed equilibrium");
        assert_eq!(after.final_config, sf);
    }
}

/// A deliberately bad configuration (everyone on one coin) is repaired by
/// any scheduler into a covering equilibrium (Observation 3 territory).
#[test]
fn learning_restores_coverage() {
    let game = gameofcoins::game::Game::build(&[9, 7, 5, 3, 2, 1], &[10, 10, 10]).unwrap();
    let clumped = Configuration::uniform(CoinId(1), game.system()).unwrap();
    for kind in SchedulerKind::ALL {
        let mut sched = kind.build(2);
        let outcome = run(&game, &clumped, sched.as_mut(), LearningOptions::default()).unwrap();
        assert!(outcome.converged);
        let masses = outcome.final_config.masses(game.system());
        for c in game.system().coin_ids() {
            assert!(
                !masses.is_empty_coin(c),
                "{kind} left {c} empty in {}",
                outcome.final_config
            );
        }
        assert_eq!(game.welfare(&outcome.final_config), game.rewards().total());
    }
}
