//! Randomized theorem suite: re-checks the paper's formal results on
//! freshly sampled games every run (seeded, so failures are
//! reproducible). Complements the per-crate unit tests by crossing crate
//! boundaries the way the paper's proofs do.

use gameofcoins::design::{design, DesignOptions, DesignProblem};
use gameofcoins::game::gen::{GameSpec, PowerDist, RewardDist};
use gameofcoins::game::{assumptions, equilibrium, potential};
use gameofcoins::learning::{run, LearningOptions, SchedulerKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn spec(n: usize, k: usize) -> GameSpec {
    GameSpec {
        miners: n,
        coins: k,
        powers: PowerDist::Uniform { lo: 1, hi: 5000 },
        rewards: RewardDist::Uniform { lo: 1, hi: 5000 },
    }
}

/// Theorem 1, full strength: any scheduler, any game, any start —
/// convergence with a strictly increasing potential at every step.
#[test]
fn theorem1_universal_convergence() {
    let mut rng = SmallRng::seed_from_u64(1001);
    for trial in 0..15 {
        let game = spec(10, 3).sample(&mut rng).unwrap();
        let start = gameofcoins::game::gen::random_config(&mut rng, game.system());
        for kind in SchedulerKind::ALL {
            let mut sched = kind.build(trial);
            let outcome = run(
                &game,
                &start,
                sched.as_mut(),
                LearningOptions {
                    audit_potential: true,
                    ..LearningOptions::default()
                },
            )
            .unwrap();
            assert!(outcome.converged, "{kind} failed on trial {trial}");
            assert!(game.is_stable(&outcome.final_config));
        }
    }
}

/// Proposition 3 (Appendix A): the greedy construction is always stable,
/// at scale.
#[test]
fn appendix_a_construction_always_stable() {
    let mut rng = SmallRng::seed_from_u64(2002);
    for _ in 0..25 {
        let game = spec(40, 6).sample(&mut rng).unwrap();
        let eq = equilibrium::greedy_equilibrium(&game);
        assert!(game.is_stable(&eq));
    }
}

/// Proposition 2 pipeline: when the assumptions hold, every equilibrium
/// is dominated for someone.
#[test]
fn prop2_dominated_equilibria_when_assumptions_hold() {
    let mut rng = SmallRng::seed_from_u64(3003);
    let small = GameSpec {
        miners: 6,
        coins: 2,
        powers: PowerDist::DistinctUniform { lo: 50, hi: 150 },
        rewards: RewardDist::DistinctUniform { lo: 500, hi: 1500 },
    };
    let mut verified = 0;
    for _ in 0..60 {
        let game = match small.sample(&mut rng) {
            Ok(g) => g,
            Err(_) => continue,
        };
        let a1 = assumptions::never_alone_exhaustive(&game, 1 << 16).unwrap();
        let a2 = assumptions::generic_exhaustive(&game, 1 << 20).unwrap();
        if !(a1 && a2) {
            continue;
        }
        verified += 1;
        equilibrium::better_equilibrium_witnesses(&game, 1 << 16)
            .expect("Proposition 2 must hold under A1+A2");
    }
    assert!(
        verified >= 3,
        "too few assumption-satisfying samples: {verified}"
    );
}

/// Theorem 2 pipeline: random design problems complete with verified
/// invariants, and the per-stage iteration counts respect 2^(n-i+1).
#[test]
fn theorem2_design_completes_with_bounded_stages() {
    let mut rng = SmallRng::seed_from_u64(4004);
    let distinct = GameSpec {
        miners: 7,
        coins: 3,
        powers: PowerDist::DistinctUniform { lo: 1, hi: 2000 },
        rewards: RewardDist::Uniform { lo: 100, hi: 2000 },
    };
    let mut done = 0;
    while done < 5 {
        let game = distinct.sample(&mut rng).unwrap();
        let Ok((s0, sf)) = equilibrium::two_equilibria(&game) else {
            continue;
        };
        let n = game.system().num_miners();
        let problem = DesignProblem::new(game, s0, sf.clone()).unwrap();
        let mut sched = SchedulerKind::UniformRandom.build(done);
        let outcome = design(
            &problem,
            sched.as_mut(),
            DesignOptions {
                verify_invariants: true,
                ..DesignOptions::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.final_config, sf);
        for report in &outcome.stages {
            if report.stage >= 2 {
                let bound = 1u128 << (n - report.stage + 1);
                assert!((report.iterations as u128) <= bound);
            }
        }
        done += 1;
    }
}

/// The two potentials agree where both apply: in symmetric games, the
/// rank potential increases exactly when Σ 1/M_c decreases (on the
/// all-coins-occupied region).
#[test]
fn potentials_agree_on_symmetric_games() {
    let mut rng = SmallRng::seed_from_u64(5005);
    let sym = GameSpec {
        miners: 6,
        coins: 2,
        powers: PowerDist::Uniform { lo: 1, hi: 100 },
        rewards: RewardDist::Equal(1000),
    };
    for _ in 0..10 {
        let game = sym.sample(&mut rng).unwrap();
        for s in gameofcoins::game::ConfigurationIter::bounded(game.system(), 1 << 20).unwrap() {
            let masses = s.masses(game.system());
            let covered = game.system().coin_ids().all(|c| !masses.is_empty_coin(c));
            if !covered {
                continue;
            }
            for mv in game.improving_moves(&s) {
                let next = s.with_move(mv.miner, mv.to);
                assert!(potential::strictly_increases(&game, &s, &next));
                let before = potential::symmetric_potential(&game, &s);
                let after = potential::symmetric_potential(&game, &next);
                assert!(after < before, "Σ1/M did not decrease on {mv}");
            }
        }
    }
}
