//! Golden-file regression tests: the structured JSON reports of
//! `goc run <exp> --json --quick --seed 7` are snapshotted under
//! `tests/golden/` for `fig1`, `attack`, `scale`, `schedulers`,
//! `churn`, `ensemble`, and `serve`. A future perf
//! refactor that silently changes *results* (tables, charts, check
//! verdicts, artifacts) fails here; throughput is free to float because
//! the comparator strips the timing conventions the reports follow:
//!
//! * `params` whose key contains `secs` or `per_sec`,
//! * report items (tables/charts) whose title contains `timing`,
//! * notes starting with `timing:`,
//! * the `detail` of checks whose name contains `wall` (their pass/fail
//!   verdict is still compared),
//! * artifacts whose name contains `timing`.
//!
//! Regenerate after an *intentional* result change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! and commit the refreshed files under `tests/golden/`.

use std::path::PathBuf;

use gameofcoins::experiments::{self, RunContext};
use serde_json::Value;

const GOLDEN_EXPERIMENTS: [&str; 7] = [
    "fig1",
    "attack",
    "scale",
    "schedulers",
    "churn",
    "ensemble",
    "serve",
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn run_report_json(name: &str) -> Value {
    let experiment = experiments::find(name).expect("experiment is registered");
    let ctx = RunContext {
        seed: 7,
        quick: true,
        threads: 1,
        ..RunContext::default()
    };
    let report = experiment.run(&ctx);
    serde_json::from_str(&report.to_json()).expect("reports serialize to valid JSON")
}

fn contains_timing_key(key: &str) -> bool {
    key.contains("secs") || key.contains("per_sec")
}

/// Whether a report item (table/chart/note) carries timing content.
fn is_timing_item(item: &Value) -> bool {
    if let Some(payload) = item.get("Table").or_else(|| item.get("Chart")) {
        matches!(payload.get("title"), Some(Value::String(t)) if t.contains("timing"))
    } else if let Some(Value::String(note)) = item.get("Note") {
        note.starts_with("timing:")
    } else {
        false
    }
}

/// Blanks the `detail` of a wall-clock check (its verdict still counts).
fn blank_wall_detail(check: &mut Value) {
    let is_wall = matches!(check.get("name"), Some(Value::String(n)) if n.contains("wall"));
    if !is_wall {
        return;
    }
    if let Value::Object(fields) = check {
        for (key, value) in fields.iter_mut() {
            if key == "detail" {
                *value = Value::String(String::new());
            }
        }
    }
}

/// Strips the timing conventions listed in the module docs, in place.
/// (The vendored `serde_json::Value` models objects as ordered
/// key/value vectors.)
fn normalize(report: &mut Value) {
    let Value::Object(fields) = report else {
        panic!("report must be a JSON object");
    };
    for (key, value) in fields.iter_mut() {
        match (key.as_str(), value) {
            ("params", Value::Array(params)) => params.retain(|entry| match entry {
                Value::Array(kv) => {
                    !matches!(kv.first(), Some(Value::String(k)) if contains_timing_key(k))
                }
                _ => true,
            }),
            ("items", Value::Array(items)) => items.retain(|item| !is_timing_item(item)),
            ("checks", Value::Array(checks)) => {
                checks.iter_mut().for_each(blank_wall_detail);
            }
            ("artifacts", Value::Array(artifacts)) => artifacts.retain(
                |a| !matches!(a.get("name"), Some(Value::String(n)) if n.contains("timing")),
            ),
            _ => {}
        }
    }
}

#[test]
fn golden_reports_are_stable() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    for name in GOLDEN_EXPERIMENTS {
        let path = dir.join(format!("{name}.json"));
        let mut fresh = run_report_json(name);
        normalize(&mut fresh);
        if update {
            std::fs::create_dir_all(&dir).expect("golden dir is writable");
            let text = serde_json::to_string_pretty(&fresh).expect("normalized report serializes");
            std::fs::write(&path, text + "\n").expect("golden file is writable");
            eprintln!("[updated {}]", path.display());
            continue;
        }
        let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden",
                path.display()
            )
        });
        let mut golden: Value = serde_json::from_str(&stored)
            .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
        // Normalize the stored side too, so hand-edits or past timing
        // leaks cannot make the comparison asymmetric.
        normalize(&mut golden);
        assert_eq!(
            fresh,
            golden,
            "`goc run {name} --json --quick --seed 7` diverged from tests/golden/{name}.json; \
             if the change is intentional, regenerate with UPDATE_GOLDEN=1 cargo test --test golden"
        );
    }
}

#[test]
fn golden_runs_are_deterministic() {
    // The premise of the snapshot: same context, same report.
    for name in GOLDEN_EXPERIMENTS {
        let mut a = run_report_json(name);
        let mut b = run_report_json(name);
        normalize(&mut a);
        normalize(&mut b);
        assert_eq!(a, b, "{name} is not deterministic under a fixed context");
    }
}

#[test]
fn normalizer_strips_timing_but_keeps_results() {
    let mut report: Value = serde_json::from_str(
        r#"{
            "experiment": "demo",
            "params": [["miners", "10"], ["wall_secs", "1.2"], ["steps_per_sec", "99"]],
            "items": [
                {"Note": "timing: 3ms"},
                {"Note": "real result"},
                {"Table": {"title": "throughput timing", "headers": [], "rows": []}},
                {"Table": {"title": "results", "headers": [], "rows": []}}
            ],
            "checks": [
                {"name": "wall_clock_within_budget", "passed": true, "detail": "took 1.2 s"},
                {"name": "converged", "passed": true, "detail": "45 steps"}
            ],
            "artifacts": [
                {"name": "scale_timing.csv", "contents": "x"},
                {"name": "scale.csv", "contents": "y"}
            ]
        }"#,
    )
    .unwrap();
    normalize(&mut report);
    let text = serde_json::to_string(&report).unwrap();
    assert!(!text.contains("wall_secs"));
    assert!(!text.contains("per_sec"));
    assert!(!text.contains("timing"));
    assert!(!text.contains("took 1.2 s"));
    // Results and verdicts survive.
    assert!(text.contains("real result"));
    assert!(text.contains("results"));
    assert!(text.contains("45 steps"));
    assert!(text.contains("wall_clock_within_budget"));
    assert!(text.contains("scale.csv"));
}
