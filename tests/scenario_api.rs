//! Integration tests for the unified scenario API: declarative specs,
//! the experiment registry, and structured run reports.

use gameofcoins::analysis::{ReportItem, RunReport};
use gameofcoins::experiments::{self, RunContext, SweepRun, SweepSpec};
use gameofcoins::sim::{
    Assignment, ChainFlavor, ChainSpec, CohortSpec, MinerAgent, MinerSpec, OracleKind, PriceSpec,
    ScenarioSpec,
};

#[test]
fn every_preset_round_trips_through_serde_json() {
    for spec in ScenarioSpec::presets() {
        let json = serde_json::to_string_pretty(&spec).expect("spec serializes");
        let back: ScenarioSpec = serde_json::from_str(&json).expect("spec parses");
        assert_eq!(spec, back, "{} lost data in the JSON round trip", spec.name);
    }
}

#[test]
fn edited_spec_json_builds_a_different_simulation() {
    // The scenario-as-data workflow: serialize a preset, edit fields in
    // the JSON (as a user would in a spec file), build the result.
    let spec = ScenarioSpec::btc_bch();
    let json = serde_json::to_string(&spec).expect("serializes");
    let mut edited: ScenarioSpec = serde_json::from_str(&json).expect("parses");
    edited.horizon_days = 2.0;
    edited.shocks.clear();
    edited.oracle = OracleKind::Difficulty;
    edited.miners = MinerSpec::Uniform {
        count: 10,
        hashrate: 50.0,
        eval_hours: 2.0,
        eval_stagger_secs: 120.0,
        inertia: 0.01,
        inertia_step: 0.0,
        cost_per_hash: 0.0,
    };
    edited.assignment = Assignment::Modulo;
    let mut sim = edited.build().expect("edited spec builds");
    let metrics = sim.run();
    assert_eq!(metrics.num_coins(), 2);
    assert!(!metrics.is_empty());
}

#[test]
fn spec_builds_are_deterministic() {
    let run = |spec: &ScenarioSpec| {
        let mut sim = spec.build().expect("builds");
        let m = sim.run().clone();
        (
            sim.chains()[0].height(),
            sim.chains()[1].height(),
            m.total_switches,
        )
    };
    let mut spec = ScenarioSpec::btc_bch();
    spec.horizon_days = 5.0;
    spec.shocks[0].day = 2.0;
    spec.shocks[1].day = 4.0;
    assert_eq!(run(&spec), run(&spec), "same spec, different runs");
    let mut other_seed = spec.clone();
    other_seed.seed += 1;
    assert_ne!(run(&spec), run(&other_seed), "seed had no effect");
}

#[test]
fn registered_experiments_are_deterministic_under_a_fixed_seed() {
    // Same context => byte-identical JSON report, including across
    // internal parallel sweeps (input-ordered outputs).
    let ctx = RunContext {
        seed: 7,
        quick: true,
        ..RunContext::default()
    };
    for name in ["prop1", "cross"] {
        let a = experiments::find(name).expect("registered").run(&ctx);
        let b = experiments::find(name).expect("registered").run(&ctx);
        assert_eq!(a.to_json(), b.to_json(), "{name} is nondeterministic");
    }
}

#[test]
fn reports_round_trip_and_carry_content() {
    let ctx = RunContext {
        quick: true,
        ..RunContext::default()
    };
    let report = experiments::find("prop1").expect("registered").run(&ctx);
    assert!(report.passed(), "prop1 must pass");
    assert!(
        report
            .items
            .iter()
            .any(|item| matches!(item, ReportItem::Table(_))),
        "prop1 report should contain a table"
    );
    let back = RunReport::from_json(&report.to_json()).expect("valid JSON");
    assert_eq!(report, back);
}

#[test]
fn sweep_preserves_input_order_and_seeds() {
    let spec = SweepSpec {
        runs: vec![
            SweepRun {
                experiment: "prop1".into(),
                seed: Some(0),
                quick: Some(true),
                scheduler: None,
                turnover_pct: None,
                replicas: None,
            },
            SweepRun {
                experiment: "cross".into(),
                seed: Some(1),
                quick: Some(true),
                scheduler: None,
                turnover_pct: None,
                replicas: None,
            },
            SweepRun {
                experiment: "prop1".into(),
                seed: Some(2),
                quick: Some(true),
                scheduler: None,
                turnover_pct: None,
                replicas: None,
            },
        ],
    };
    let reports = experiments::sweep(&spec, 3).expect("sweep runs");
    assert_eq!(reports.len(), 3);
    assert_eq!(reports[0].experiment, "prop1");
    assert_eq!(reports[1].experiment, "cross");
    assert_eq!(reports[2].experiment, "prop1");
    assert!(reports.iter().all(RunReport::passed));
    // Parallel and serial sweeps agree exactly.
    let serial = experiments::sweep(&spec, 1).expect("serial sweep runs");
    let to_json = |rs: &[RunReport]| serde_json::to_string(&rs.to_vec()).unwrap();
    assert_eq!(to_json(&reports), to_json(&serial));
}

#[test]
fn sweep_specs_can_set_ensemble_replicas() {
    // A spec file can size the ensemble experiment's flagship fleet;
    // the field is optional and round-trips through JSON.
    let text = r#"{"runs": [{"experiment": "ensemble", "quick": true, "seed": 7,
                             "replicas": 3}]}"#;
    let spec: SweepSpec = serde_json::from_str(text).expect("spec parses");
    assert_eq!(spec.runs[0].replicas, Some(3));
    let back: SweepSpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
    assert_eq!(spec, back);
    let bare: SweepSpec =
        serde_json::from_str(r#"{"runs": [{"experiment": "ensemble"}]}"#).expect("spec parses");
    assert_eq!(bare.runs[0].replicas, None);

    // The pinned count reaches the experiment's flagship run.
    let reports = experiments::sweep(&spec, 1).expect("sweep runs");
    assert_eq!(reports.len(), 1);
    assert!(reports[0].passed(), "sized ensemble run must pass");
    assert!(
        reports[0]
            .params
            .iter()
            .any(|(k, v)| k == "flagship_replicas" && v == "3"),
        "flagship fleet is sized by the spec"
    );
}

#[test]
fn sweep_specs_can_name_schedulers() {
    // A spec file can pin a SchedulerKind by variant name; the field is
    // optional (missing => all kinds) and round-trips through JSON.
    let text = r#"{"runs": [{"experiment": "schedulers", "quick": true,
                             "scheduler": "MinGain"}]}"#;
    let spec: SweepSpec = serde_json::from_str(text).expect("spec parses");
    assert_eq!(
        spec.runs[0].scheduler,
        Some(gameofcoins::learning::SchedulerKind::MinGain)
    );
    let back: SweepSpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
    assert_eq!(spec, back);

    // Missing field deserializes as "all kinds".
    let bare: SweepSpec =
        serde_json::from_str(r#"{"runs": [{"experiment": "prop1"}]}"#).expect("spec parses");
    assert_eq!(bare.runs[0].scheduler, None);

    // The pinned kind reaches the experiment: its report sweeps exactly
    // one scheduler.
    let reports = experiments::sweep(&spec, 1).expect("sweep runs");
    assert_eq!(reports.len(), 1);
    assert!(reports[0].passed(), "pinned schedulers run must pass");
    let json = reports[0].to_json();
    assert!(json.contains("min-gain"), "report names the pinned kind");
    assert!(
        !json.contains("max-gain"),
        "other kinds must not be swept when one is pinned"
    );
}

#[test]
fn cohort_spec_snapshots_like_its_individual_miner_equivalent() {
    // A cohort population and the hand-written Explicit population it
    // abbreviates must produce the *same* static game snapshot — system,
    // rewards, and initial configuration — and do so deterministically
    // per seed, even though the cohort simulation aggregates each class
    // into a single agent.
    let chains = vec![
        ChainSpec::simple(
            "major",
            ChainFlavor::BchLike,
            4_000_000,
            PriceSpec::Constant { value: 3.0 },
        ),
        ChainSpec::simple(
            "minor",
            ChainFlavor::BchLike,
            4_000_000,
            PriceSpec::Constant { value: 1.0 },
        ),
    ];
    let classes = [(2_000.0, 3.0, 0.02, 0usize), (250.0, 6.0, 0.05, 1usize)];
    let cohorts: Vec<CohortSpec> = classes
        .iter()
        .enumerate()
        .map(|(i, &(hashrate, eval_hours, inertia, coin))| CohortSpec {
            name: format!("class{i}"),
            count: 60,
            hashrate,
            coin,
            eval_hours,
            inertia,
            cost_per_hash: 0.0,
        })
        .collect();
    let individuals: Vec<MinerAgent> = cohorts
        .iter()
        .flat_map(|c| {
            (0..c.count).map(|_| MinerAgent {
                hashrate: c.hashrate,
                coin: c.coin,
                eval_interval: c.eval_hours * 3600.0,
                inertia: c.inertia,
                cost_per_hash: c.cost_per_hash,
                active: true,
            })
        })
        .collect();
    let base = ScenarioSpec {
        name: "cohorts".into(),
        horizon_days: 5.0,
        snapshot_hours: 6.0,
        seed: 31,
        oracle: OracleKind::Hashrate,
        chains,
        miners: MinerSpec::Cohorts(cohorts),
        assignment: Assignment::Explicit,
        shocks: Vec::new(),
        whale: None,
        churn: None,
    };
    let by_hand = ScenarioSpec {
        name: "individuals".into(),
        miners: MinerSpec::Explicit(individuals),
        ..base.clone()
    };

    let (game_a, config_a) = base.game().expect("cohort spec snapshots");
    let (game_b, config_b) = by_hand.game().expect("individual spec snapshots");
    assert_eq!(game_a.system(), game_b.system());
    assert_eq!(game_a.rewards(), game_b.rewards());
    assert_eq!(config_a, config_b);
    assert_eq!(game_a.system().num_miners(), 120);

    // Determinism per seed: repeated snapshots are identical, and the
    // aggregated *simulation* still runs (with one agent per cohort).
    let (game_c, config_c) = base.game().expect("snapshots again");
    assert_eq!(game_a.system(), game_c.system());
    assert_eq!(config_a, config_c);
    let mut sim = base.build().expect("builds aggregated");
    assert_eq!(sim.agents().len(), 2);
    assert!(!sim.run().is_empty());
}

#[test]
fn attack_preset_feeds_the_design_pipeline() {
    // Spec -> static game -> two equilibria -> Algorithm 2: the full
    // declarative path from a market description to a designed outcome.
    use gameofcoins::design::{design, DesignOptions, DesignProblem};
    use gameofcoins::game::equilibrium;
    use gameofcoins::learning::SchedulerKind;

    let (game, _initial) = ScenarioSpec::attack().game().expect("snapshots");
    let (s0, sf) = equilibrium::two_equilibria(&game).expect("two equilibria");
    let problem = DesignProblem::new(game.clone(), s0, sf.clone()).expect("valid problem");
    let mut sched = SchedulerKind::RoundRobin.build(0);
    let outcome = design(&problem, sched.as_mut(), DesignOptions::default()).expect("designs");
    assert_eq!(outcome.final_config, sf);
    assert!(game.is_stable(&outcome.final_config));
}
