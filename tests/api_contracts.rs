//! API-contract tests (Rust API Guidelines): `Send`/`Sync` for the types
//! users move across threads, `Error` implementations, and `Display`
//! stability for identifiers used in output formats.

use gameofcoins::prelude::*;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}
fn assert_error<T: std::error::Error>() {}
fn assert_debug<T: std::fmt::Debug>() {}
fn assert_clone<T: Clone>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send::<Game>();
    assert_sync::<Game>();
    assert_send::<Configuration>();
    assert_sync::<Configuration>();
    assert_send::<System>();
    assert_sync::<System>();
    assert_send::<Rewards>();
    assert_sync::<Rewards>();
    assert_send::<Ratio>();
    assert_sync::<Ratio>();
    assert_send::<DesignProblem>();
    assert_sync::<DesignProblem>();
    assert_send::<Blockchain>();
    assert_sync::<Blockchain>();
    assert_send::<Market>();
    assert_sync::<Market>();
    assert_send::<Simulation>();
    // Simulation is intentionally not Sync (it owns its RNG), but it can
    // be moved to a worker thread, which the sweep runner relies on.
}

#[test]
fn scenario_api_types_are_send_sync_debug_clone() {
    // The scenario/report/registry layer is moved across threads by
    // `goc sweep` and embedded in user structs; lock in the auto traits.
    assert_send::<ScenarioSpec>();
    assert_sync::<ScenarioSpec>();
    assert_debug::<ScenarioSpec>();
    assert_clone::<ScenarioSpec>();
    assert_send::<RunReport>();
    assert_sync::<RunReport>();
    assert_debug::<RunReport>();
    assert_clone::<RunReport>();
    assert_send::<TableData>();
    assert_sync::<TableData>();
    assert_debug::<TableData>();
    assert_clone::<TableData>();
    assert_send::<RunContext>();
    assert_sync::<RunContext>();
    assert_debug::<RunContext>();
    assert_clone::<RunContext>();
    assert_send::<SweepSpec>();
    assert_sync::<SweepSpec>();
    assert_debug::<SweepSpec>();
    assert_clone::<SweepSpec>();
    assert_send::<gameofcoins::sim::SpecError>();
    assert_sync::<gameofcoins::sim::SpecError>();
    // Trait objects from the registry cross sweep worker threads.
    assert_send::<Box<dyn Experiment>>();
    assert_sync::<Box<dyn Experiment>>();
}

#[test]
fn spec_error_is_a_real_error() {
    assert_error::<gameofcoins::sim::SpecError>();
    let mut spec = ScenarioSpec::btc_bch();
    spec.chains.clear();
    let err = spec.build().unwrap_err();
    assert!(err.to_string().contains("no chains"));
}

#[test]
fn error_types_implement_error_send_sync() {
    assert_error::<GameError>();
    assert_send::<GameError>();
    assert_sync::<GameError>();
    assert_error::<gameofcoins::design::DesignError>();
    assert_send::<gameofcoins::design::DesignError>();
    assert_error::<gameofcoins::learning::LearningError>();
    assert_send::<gameofcoins::learning::LearningError>();
}

#[test]
fn games_can_be_shared_across_threads() {
    // The sweep pattern: one game, many worker threads.
    let game = Game::build(&[5, 3, 2], &[7, 4]).unwrap();
    let results: Vec<usize> = std::thread::scope(|scope| {
        (0..4u64)
            .map(|seed| {
                let game = &game;
                scope.spawn(move || {
                    let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
                    let mut sched = SchedulerKind::UniformRandom.build(seed);
                    run(game, &start, sched.as_mut(), LearningOptions::default())
                        .unwrap()
                        .steps
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(results.len(), 4);
}

#[test]
fn display_formats_are_stable() {
    // Identifiers and moves appear in CSV output and logs; these formats
    // are a compatibility surface.
    assert_eq!(MinerId(3).to_string(), "p3");
    assert_eq!(CoinId(1).to_string(), "c1");
    assert_eq!(Ratio::new(3, 2).unwrap().to_string(), "3/2");
    assert_eq!(Ratio::from_int(7).to_string(), "7");
    let game = Game::build(&[2, 1], &[1, 1]).unwrap();
    let s = Configuration::uniform(CoinId(0), game.system()).unwrap();
    assert_eq!(s.to_string(), "⟨c0, c0⟩");
}

#[test]
fn default_constructors_agree_with_new() {
    // C-COMMON-TRAITS: Default and new coincide where both exist.
    use gameofcoins::learning::RoundRobin;
    let _ = RoundRobin::new();
    let _ = RoundRobin::default();
    let a = gameofcoins::game::Ratio::default();
    assert_eq!(a, Ratio::ZERO);
}

#[test]
fn service_layer_types_are_send_sync_debug_clone() {
    // Protocol values cross session threads and live inside the load
    // generator's per-client plans.
    assert_send::<Request>();
    assert_sync::<Request>();
    assert_debug::<Request>();
    assert_clone::<Request>();
    assert_send::<Response>();
    assert_sync::<Response>();
    assert_debug::<Response>();
    assert_clone::<Response>();
    assert_send::<RejectReason>();
    assert_sync::<RejectReason>();
    assert_send::<Connection<std::net::TcpStream>>();
    assert_send::<Client>();
    assert_send::<ServerConfig>();
    assert_sync::<ServerConfig>();
    assert_debug::<ServerConfig>();
    assert_clone::<ServerConfig>();
    // Backends are injected once and called from every session thread.
    assert_send::<Box<dyn Backend>>();
    assert_sync::<Box<dyn Backend>>();
}

#[test]
fn service_layer_errors_are_real_errors() {
    assert_error::<ProtoError>();
    assert_send::<ProtoError>();
    assert_sync::<ProtoError>();
    assert_error::<gameofcoins::server::ServerError>();
    assert_send::<gameofcoins::server::ServerError>();
    assert_error::<gameofcoins::server::ConfigError>();
    assert_send::<gameofcoins::server::ConfigError>();
}

#[test]
fn reject_reason_display_is_the_stable_snake_case_name() {
    // `goc request` surfaces rejections as `rejected (<name>)`; tests
    // and scripts match on these strings.
    assert_eq!(RejectReason::SessionLimit.to_string(), "session_limit");
    assert_eq!(RejectReason::InFlightLimit.to_string(), "in_flight_limit");
    assert_eq!(
        RejectReason::SessionBudgetExhausted.to_string(),
        "session_budget_exhausted"
    );
    assert_eq!(RejectReason::FrameTooLarge.to_string(), "frame_too_large");
}
