//! Integration tests for the `goc` command-line interface.

use std::process::Command;

fn goc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_goc"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn learn_prints_convergence_and_payoffs() {
    let out = goc(&[
        "learn",
        "--powers",
        "13,11,7,5,3,2",
        "--rewards",
        "17,10",
        "--scheduler",
        "max-gain",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("converged after"));
    assert!(stdout.contains("payoff"));
}

#[test]
fn enumerate_lists_equilibria() {
    let out = goc(&["enumerate", "--powers", "2,1", "--rewards", "1,1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 pure equilibria"));
}

#[test]
fn design_reaches_a_target() {
    let out = goc(&[
        "design",
        "--powers",
        "13,11,7,5,3,2",
        "--rewards",
        "17,10",
        "--scheduler",
        "min-gain",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("reached"));
    assert!(stdout.contains("postings"));
}

#[test]
fn simulate_draws_a_chart() {
    let out = goc(&[
        "simulate",
        "--miners",
        "20",
        "--days",
        "3",
        "--shock-day",
        "1",
        "--seed",
        "7",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("BCH share"));
    assert!(stdout.contains("blocks:"));
}

#[test]
fn list_names_every_registered_experiment() {
    let out = goc(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for experiment in gameofcoins::experiments::registry() {
        assert!(
            stdout.contains(experiment.name()),
            "`goc list` is missing {}",
            experiment.name()
        );
    }
}

#[test]
fn run_emits_a_machine_readable_report() {
    let out = goc(&["run", "prop1", "--json", "--quick"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let report = gameofcoins::analysis::RunReport::from_json(&stdout)
        .expect("stdout of `goc run --json` is a RunReport");
    assert_eq!(report.experiment, "prop1");
    assert!(report.passed());
    assert!(!report.checks.is_empty());
}

#[test]
fn run_ascii_renders_checks() {
    let out = goc(&["run", "prop1", "--quick"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("prop1"));
    assert!(stdout.contains("[PASS]"));
}

#[test]
fn run_rejects_unknown_experiments() {
    let out = goc(&["run", "frobnicate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown experiment"));
}

#[test]
fn stray_positional_arguments_are_rejected() {
    for args in [
        vec!["run", "prop1", "bogus"],
        vec!["learn", "--powers", "2,1", "--rewards", "1,1", "extra"],
        vec!["sweep", "mysweep.json"],
        vec!["list", "surplus"],
    ] {
        let out = goc(&args);
        assert!(
            !out.status.success(),
            "args {args:?} unexpectedly succeeded"
        );
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("unexpected argument"), "stderr: {stderr}");
    }
}

#[test]
fn run_ensemble_honours_replicas_and_threads() {
    let out = goc(&[
        "run",
        "ensemble",
        "--json",
        "--quick",
        "--seed",
        "7",
        "--replicas",
        "4",
        "--threads",
        "2",
    ]);
    assert!(
        out.status.success(),
        "run ensemble failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let report = gameofcoins::analysis::RunReport::from_json(&stdout)
        .expect("stdout of `goc run ensemble --json` is a RunReport");
    assert_eq!(report.experiment, "ensemble");
    assert!(report.passed());
    let flagship = report
        .params
        .iter()
        .find(|(k, _)| k == "flagship_replicas")
        .expect("flagship_replicas param");
    assert_eq!(flagship.1, "4");
    let threads = report
        .params
        .iter()
        .find(|(k, _)| k == "threads")
        .expect("threads param");
    assert_eq!(threads.1, "2");

    // Degenerate replica counts are rejected at parse time.
    let out = goc(&["run", "ensemble", "--replicas", "0"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--replicas"), "stderr: {stderr}");
}

#[test]
fn sweep_fans_out_and_preserves_input_order() {
    let dir = std::env::temp_dir().join(format!("goc_sweep_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("sweep.json");
    std::fs::write(
        &spec_path,
        r#"{"runs": [
            {"experiment": "cross", "seed": 0, "quick": true},
            {"experiment": "prop1", "seed": 0, "quick": true}
        ]}"#,
    )
    .unwrap();
    let out = goc(&[
        "sweep",
        "--spec",
        spec_path.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert!(
        out.status.success(),
        "sweep failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let reports: Vec<gameofcoins::analysis::RunReport> =
        serde_json::from_str(&stdout).expect("sweep output is a JSON array of reports");
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].experiment, "cross");
    assert_eq!(reports[1].experiment, "prop1");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_runs_a_scenario_spec_file() {
    use gameofcoins::sim::ScenarioSpec;
    let dir = std::env::temp_dir().join(format!("goc_scenario_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("scenario.json");
    let mut spec = ScenarioSpec::asymmetric();
    spec.horizon_days = 2.0;
    std::fs::write(&spec_path, serde_json::to_string_pretty(&spec).unwrap()).unwrap();
    let out = goc(&["simulate", "--spec", spec_path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "simulate --spec failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("scenario `asymmetric`"), "stdout: {stdout}");
    assert!(stdout.contains("B share"));
    assert!(stdout.contains("blocks: A"));

    // Malformed and invalid scenario files are rejected with errors.
    let bad_path = dir.join("bad.json");
    std::fs::write(&bad_path, "{not json").unwrap();
    let out = goc(&["simulate", "--spec", bad_path.to_str().unwrap()]);
    assert!(!out.status.success());
    spec.chains.clear();
    std::fs::write(&bad_path, serde_json::to_string(&spec).unwrap()).unwrap();
    let out = goc(&["simulate", "--spec", bad_path.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("no chains"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_rejects_bad_specs() {
    let out = goc(&["sweep"]);
    assert!(!out.status.success());
    let dir = std::env::temp_dir().join(format!("goc_sweep_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("bad.json");
    std::fs::write(&spec_path, r#"{"runs": [{"experiment": "nope"}]}"#).unwrap();
    let out = goc(&["sweep", "--spec", spec_path.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown experiment"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_input_fails_with_usage() {
    for args in [
        vec!["learn"],                                      // missing flags
        vec!["learn", "--powers", "abc", "--rewards", "1"], // parse error
        vec!["learn", "--powers", "2,1", "--bogus", "x"],   // unknown flag
        vec!["frobnicate"],                                 // unknown command
        vec![],                                             // no command
    ] {
        let out = goc(&args);
        assert!(
            !out.status.success(),
            "args {args:?} unexpectedly succeeded"
        );
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("error") || stderr.contains("USAGE"));
    }
}

#[test]
fn help_succeeds() {
    let out = goc(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("USAGE"));
}

#[test]
fn equal_powers_design_is_rejected_cleanly() {
    // §5 requires strictly distinct powers; the CLI must surface the
    // library's validation error rather than panic.
    let out = goc(&["design", "--powers", "5,5,3", "--rewards", "7,4"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("distinct"), "stderr: {stderr}");
}

#[test]
fn serve_help_documents_the_service_flags() {
    let out = goc(&["serve", "--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("--addr"), "stdout: {stdout}");
    assert!(stdout.contains("--max-sessions"), "stdout: {stdout}");
    assert!(stdout.contains("--max-inflight"), "stdout: {stdout}");
    assert!(stdout.contains("admission"), "stdout: {stdout}");
}

#[test]
fn request_help_shows_the_wire_forms() {
    let out = goc(&["request", "--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Status"), "stdout: {stdout}");
    assert!(stdout.contains("RunEnsemble"), "stdout: {stdout}");
    assert!(stdout.contains("Shutdown"), "stdout: {stdout}");
}

#[test]
fn serve_zero_caps_are_rejected_up_front() {
    let out = goc(&["serve", "--max-inflight", "0"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("in-flight cap"), "stderr: {stderr}");

    let out = goc(&["serve", "--max-sessions", "0"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("session cap"), "stderr: {stderr}");
}

#[test]
fn request_rejects_bad_arguments_before_connecting() {
    // Invalid request JSON fails at parse time — no server needed.
    let out = goc(&["request", "127.0.0.1:1", "{not json"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("invalid request JSON"), "stderr: {stderr}");

    // A missing positional is a usage error.
    let out = goc(&["request", "127.0.0.1:1"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("goc request <ADDR>"), "stderr: {stderr}");
}

#[test]
fn serve_and_request_round_trip_over_tcp() {
    use std::io::{BufRead, BufReader, Write};

    let mut child = Command::new(env!("CARGO_BIN_EXE_goc"))
        .args(["serve", "--addr", "127.0.0.1:0", "--max-sessions", "4"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let banner = lines.next().expect("server prints a banner").unwrap();
    let addr = banner
        .strip_prefix("goc-server listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();

    // Status round-trips as JSON frames on stdout.
    let out = goc(&["request", &addr, "\"Status\""]);
    assert!(
        out.status.success(),
        "request failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"Status\""), "stdout: {stdout}");
    assert!(stdout.contains("\"sessions\""), "stdout: {stdout}");

    // An ensemble request streams Accepted then a Report frame.
    let out = goc(&[
        "request",
        &addr,
        r#"{"RunEnsemble":{"spec":{"name":"cli","replicas":2,"miners":32,"horizon_days":30.0,"seed":7}}}"#,
    ]);
    assert!(
        out.status.success(),
        "ensemble request failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"Accepted\""), "stdout: {stdout}");
    assert!(stdout.contains("\"Ensemble\""), "stdout: {stdout}");

    // A named rejection exits non-zero and names the reason on stderr.
    let out = goc(&[
        "request",
        &addr,
        r#"{"RunExperiment":{"experiment":"no_such_experiment"}}"#,
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("rejected (unknown_experiment)"),
        "stderr: {stderr}"
    );

    // Raw garbage frames are rejected by name and the session survives.
    {
        let stream = std::net::TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{this is not a frame\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("MalformedFrame"), "frame: {line}");

        // One byte past the 8 MiB default cap: discarded, named, and
        // the very same connection still answers a valid frame.
        let mut oversized = vec![b'z'; 8 * 1024 * 1024 + 1];
        oversized.push(b'\n');
        writer.write_all(&oversized).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("FrameTooLarge"), "frame: {line}");

        writer
            .write_all(b"{\"version\":1,\"id\":3,\"request\":\"Status\"}\n")
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"Report\""), "frame: {line}");
    }

    // Shutdown drains the server; the child exits 0 and reports its
    // served/rejected accounting.
    let out = goc(&["request", &addr, "\"Shutdown\""]);
    assert!(
        out.status.success(),
        "shutdown failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let status = child.wait().expect("server exits");
    assert!(status.success(), "server exited with {status}");
    let drained = lines
        .map(|l| l.unwrap())
        .find(|l| l.starts_with("drained:"))
        .expect("server prints its drain summary");
    assert!(drained.contains("rejected by name"), "line: {drained}");
}
