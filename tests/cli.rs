//! Integration tests for the `goc` command-line interface.

use std::process::Command;

fn goc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_goc"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn learn_prints_convergence_and_payoffs() {
    let out = goc(&[
        "learn",
        "--powers",
        "13,11,7,5,3,2",
        "--rewards",
        "17,10",
        "--scheduler",
        "max-gain",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("converged after"));
    assert!(stdout.contains("payoff"));
}

#[test]
fn enumerate_lists_equilibria() {
    let out = goc(&["enumerate", "--powers", "2,1", "--rewards", "1,1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 pure equilibria"));
}

#[test]
fn design_reaches_a_target() {
    let out = goc(&[
        "design",
        "--powers",
        "13,11,7,5,3,2",
        "--rewards",
        "17,10",
        "--scheduler",
        "min-gain",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("reached"));
    assert!(stdout.contains("postings"));
}

#[test]
fn simulate_draws_a_chart() {
    let out = goc(&[
        "simulate",
        "--miners",
        "20",
        "--days",
        "3",
        "--shock-day",
        "1",
        "--seed",
        "7",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("BCH share"));
    assert!(stdout.contains("blocks:"));
}

#[test]
fn bad_input_fails_with_usage() {
    for args in [
        vec!["learn"],                                        // missing flags
        vec!["learn", "--powers", "abc", "--rewards", "1"],   // parse error
        vec!["learn", "--powers", "2,1", "--bogus", "x"],     // unknown flag
        vec!["frobnicate"],                                   // unknown command
        vec![],                                               // no command
    ] {
        let out = goc(&args);
        assert!(!out.status.success(), "args {args:?} unexpectedly succeeded");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("error") || stderr.contains("USAGE"));
    }
}

#[test]
fn help_succeeds() {
    let out = goc(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("USAGE"));
}

#[test]
fn equal_powers_design_is_rejected_cleanly() {
    // §5 requires strictly distinct powers; the CLI must surface the
    // library's validation error rather than panic.
    let out = goc(&["design", "--powers", "5,5,3", "--rewards", "7,4"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("distinct"), "stderr: {stderr}");
}
