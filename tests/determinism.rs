//! Determinism guarantees across the workspace: identical seeds must
//! yield bit-identical results in every stochastic component — the
//! experiment harness depends on it.

use gameofcoins::game::gen::{GameSpec, PowerDist, RewardDist};
use gameofcoins::learning::{run, LearningOptions, SchedulerKind};
use gameofcoins::sim::scenario::{btc_bch, BtcBchParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn game_generation_is_deterministic() {
    let spec = GameSpec {
        miners: 20,
        coins: 5,
        powers: PowerDist::DistinctUniform { lo: 1, hi: 10_000 },
        rewards: RewardDist::Uniform { lo: 1, hi: 10_000 },
    };
    let a = spec.sample(&mut SmallRng::seed_from_u64(123)).unwrap();
    let b = spec.sample(&mut SmallRng::seed_from_u64(123)).unwrap();
    assert_eq!(a.system(), b.system());
    assert_eq!(a.rewards(), b.rewards());
}

#[test]
fn learning_paths_are_deterministic_per_seed() {
    let spec = GameSpec {
        miners: 15,
        coins: 4,
        powers: PowerDist::Uniform { lo: 1, hi: 1000 },
        rewards: RewardDist::Uniform { lo: 1, hi: 1000 },
    };
    for kind in SchedulerKind::ALL {
        let mut rng = SmallRng::seed_from_u64(7);
        let game = spec.sample(&mut rng).unwrap();
        let start = gameofcoins::game::gen::random_config(&mut rng, game.system());
        let run_once = || {
            let mut sched = kind.build(99);
            run(
                &game,
                &start,
                sched.as_mut(),
                LearningOptions {
                    record_path: true,
                    ..LearningOptions::default()
                },
            )
            .unwrap()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.path, b.path, "{kind} diverged across identical runs");
        assert_eq!(a.final_config, b.final_config);
    }
}

#[test]
fn simulation_is_deterministic_per_seed() {
    let run_sim = |seed| {
        let mut sim = btc_bch(BtcBchParams {
            num_miners: 30,
            horizon_days: 5.0,
            shock_day: 2.0,
            revert_day: 4.0,
            seed,
            ..BtcBchParams::default()
        });
        let m = sim.run().clone();
        (
            sim.chains()[0].height(),
            sim.chains()[1].height(),
            m.total_switches,
            m.prices[1].last().copied(),
        )
    };
    assert_eq!(run_sim(5), run_sim(5));
    assert_ne!(run_sim(5), run_sim(6));
}

#[test]
fn design_outcomes_are_deterministic() {
    use gameofcoins::design::{design, DesignOptions, DesignProblem};
    use gameofcoins::game::equilibrium;

    let game = gameofcoins::game::Game::build(&[13, 11, 7, 5, 3, 2], &[17, 10]).unwrap();
    let (s0, sf) = equilibrium::two_equilibria(&game).unwrap();
    let problem = DesignProblem::new(game, s0, sf).unwrap();
    let run_once = || {
        let mut sched = SchedulerKind::UniformRandom.build(31);
        design(&problem, sched.as_mut(), DesignOptions::default()).unwrap()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.final_config, b.final_config);
    assert_eq!(a.total_steps, b.total_steps);
    assert_eq!(a.total_iterations, b.total_iterations);
    assert_eq!(a.total_cost, b.total_cost);
}
