//! Whale-transaction budgets and injection plans.
//!
//! The paper (§1, citing Liao & Katz) names *whale transactions* — large
//! fees posted to a coin — as the second channel by which an interested
//! party can temporarily raise a coin's weight. This module models a
//! manipulator's budget and a schedule of planned injections; `goc-sim`
//! executes the plan against chain mempools, and the reward-design
//! experiments use the budget to account manipulation spend.

use serde::{Deserialize, Serialize};

/// A planned whale-fee injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhaleInjection {
    /// Simulation time (seconds) at which the fee is posted. Stored in
    /// milliseconds internally? No — seconds as an integer for `Eq`.
    pub at_secs: u64,
    /// Target coin index.
    pub coin: usize,
    /// Fee amount in base units.
    pub fee: u64,
}

/// A manipulator's whale budget: total allowance and cumulative spend.
///
/// # Examples
///
/// ```
/// use goc_market::WhaleBudget;
///
/// let mut budget = WhaleBudget::new(1_000);
/// assert!(budget.try_spend(400));
/// assert!(budget.try_spend(600));
/// assert!(!budget.try_spend(1)); // exhausted
/// assert_eq!(budget.spent(), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhaleBudget {
    total: u64,
    spent: u64,
}

impl WhaleBudget {
    /// Creates a budget with the given total allowance.
    pub fn new(total: u64) -> Self {
        WhaleBudget { total, spent: 0 }
    }

    /// Attempts to spend `amount`; returns `false` (and spends nothing)
    /// if it would exceed the allowance.
    pub fn try_spend(&mut self, amount: u64) -> bool {
        match self.spent.checked_add(amount) {
            Some(next) if next <= self.total => {
                self.spent = next;
                true
            }
            _ => false,
        }
    }

    /// Cumulative spend.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Remaining allowance.
    pub fn remaining(&self) -> u64 {
        self.total - self.spent
    }

    /// The total allowance.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// A time-sorted plan of whale injections constrained by a budget.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhalePlan {
    injections: Vec<WhaleInjection>,
    budget: WhaleBudget,
}

impl WhalePlan {
    /// Creates an empty plan over `budget`.
    pub fn new(budget: WhaleBudget) -> Self {
        WhalePlan {
            injections: Vec::new(),
            budget,
        }
    }

    /// Adds an injection if the budget allows it; returns whether it was
    /// accepted.
    pub fn add(&mut self, injection: WhaleInjection) -> bool {
        if !self.budget.try_spend(injection.fee) {
            return false;
        }
        let pos = self
            .injections
            .partition_point(|i| i.at_secs <= injection.at_secs);
        self.injections.insert(pos, injection);
        true
    }

    /// Pops all injections due at or before `now_secs`, in time order.
    pub fn due(&mut self, now_secs: u64) -> Vec<WhaleInjection> {
        let split = self.injections.partition_point(|i| i.at_secs <= now_secs);
        self.injections.drain(..split).collect()
    }

    /// Remaining scheduled injections.
    pub fn pending(&self) -> &[WhaleInjection] {
        &self.injections
    }

    /// The underlying budget (with spend applied at scheduling time).
    pub fn budget(&self) -> WhaleBudget {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_respects_budget() {
        let mut plan = WhalePlan::new(WhaleBudget::new(100));
        assert!(plan.add(WhaleInjection {
            at_secs: 10,
            coin: 0,
            fee: 60
        }));
        assert!(!plan.add(WhaleInjection {
            at_secs: 20,
            coin: 0,
            fee: 50
        }));
        assert!(plan.add(WhaleInjection {
            at_secs: 20,
            coin: 0,
            fee: 40
        }));
        assert_eq!(plan.budget().remaining(), 0);
    }

    #[test]
    fn due_pops_in_time_order() {
        let mut plan = WhalePlan::new(WhaleBudget::new(1000));
        for (t, fee) in [(30, 1), (10, 2), (20, 3)] {
            assert!(plan.add(WhaleInjection {
                at_secs: t,
                coin: 0,
                fee
            }));
        }
        let due = plan.due(25);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].at_secs, 10);
        assert_eq!(due[1].at_secs, 20);
        assert_eq!(plan.pending().len(), 1);
        assert!(plan.due(5).is_empty());
        assert_eq!(plan.due(1000).len(), 1);
    }

    #[test]
    fn budget_arithmetic() {
        let mut b = WhaleBudget::new(10);
        assert_eq!(b.remaining(), 10);
        assert!(b.try_spend(0));
        assert!(!b.try_spend(11));
        assert!(b.try_spend(10));
        assert_eq!(b.total(), 10);
        assert_eq!(b.spent(), 10);
    }
}
