//! The multi-coin market: one price process per coin plus scheduled
//! shocks, stepped jointly by the simulator.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::price::{ConstantPrice, Gbm, JumpDiffusion, MeanReverting, PriceProcess};

/// A price process variant (enum so markets are plain data and `Clone`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Price {
    /// Constant price.
    Constant(ConstantPrice),
    /// Geometric Brownian motion.
    Gbm(Gbm),
    /// GBM with Poisson jumps.
    JumpDiffusion(JumpDiffusion),
    /// Mean-reverting log-price.
    MeanReverting(MeanReverting),
}

impl Price {
    /// Current price.
    pub fn price(&self) -> f64 {
        match self {
            Price::Constant(p) => p.price(),
            Price::Gbm(p) => p.price(),
            Price::JumpDiffusion(p) => p.price(),
            Price::MeanReverting(p) => p.price(),
        }
    }

    /// Advances by `dt` seconds.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64) {
        match self {
            Price::Constant(p) => p.step(rng, dt),
            Price::Gbm(p) => p.step(rng, dt),
            Price::JumpDiffusion(p) => p.step(rng, dt),
            Price::MeanReverting(p) => p.step(rng, dt),
        }
    }

    /// Applies a multiplicative shock.
    pub fn shock(&mut self, factor: f64) {
        match self {
            Price::Constant(p) => p.shock(factor),
            Price::Gbm(p) => p.shock(factor),
            Price::JumpDiffusion(p) => p.shock(factor),
            Price::MeanReverting(p) => p.shock(factor),
        }
    }
}

/// A scheduled multiplicative price shock on one coin — the model of the
/// Nov 12 2017 BCH event driving Figure 1, and of deliberate pump
/// manipulation (§1's reward-design channels).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledShock {
    /// Simulation time at which the shock fires.
    pub at: f64,
    /// Index of the affected coin.
    pub coin: usize,
    /// Multiplicative price factor (2.0 = pump to double, 0.5 = dump).
    pub factor: f64,
}

/// The market: per-coin prices, a shock schedule, and the last-step time.
///
/// # Examples
///
/// ```
/// use goc_market::{Market, Price, ConstantPrice, ScheduledShock};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut market = Market::new(vec![
///     Price::Constant(ConstantPrice(6000.0)),
///     Price::Constant(ConstantPrice(600.0)),
/// ]);
/// market.schedule_shock(ScheduledShock { at: 100.0, coin: 1, factor: 3.0 });
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// market.advance_to(&mut rng, 200.0);
/// assert_eq!(market.price_of(1), 1800.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Market {
    prices: Vec<Price>,
    shocks: Vec<ScheduledShock>,
    now: f64,
}

impl Market {
    /// Creates a market at time 0 with the given per-coin processes.
    pub fn new(prices: Vec<Price>) -> Self {
        Market {
            prices,
            shocks: Vec::new(),
            now: 0.0,
        }
    }

    /// Number of coins priced.
    pub fn num_coins(&self) -> usize {
        self.prices.len()
    }

    /// Current price of coin `coin`.
    ///
    /// # Panics
    ///
    /// Panics if `coin` is out of range.
    pub fn price_of(&self, coin: usize) -> f64 {
        self.prices[coin].price()
    }

    /// All current prices.
    pub fn prices(&self) -> Vec<f64> {
        self.prices.iter().map(Price::price).collect()
    }

    /// Current market time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Registers a future shock. Shocks fire in time order during
    /// [`Market::advance_to`].
    pub fn schedule_shock(&mut self, shock: ScheduledShock) {
        self.shocks.push(shock);
        self.shocks
            .sort_by(|a, b| a.at.partial_cmp(&b.at).expect("shock times are finite"));
    }

    /// Advances all price processes to absolute time `to`, applying any
    /// scheduled shocks that fall in `(now, to]` at their exact times.
    pub fn advance_to<R: Rng + ?Sized>(&mut self, rng: &mut R, to: f64) {
        while let Some(&shock) = self.shocks.first() {
            if shock.at > to {
                break;
            }
            let dt = shock.at - self.now;
            if dt > 0.0 {
                for p in &mut self.prices {
                    p.step(rng, dt);
                }
                self.now = shock.at;
            }
            self.prices[shock.coin].shock(shock.factor);
            self.shocks.remove(0);
        }
        if to > self.now {
            let dt = to - self.now;
            for p in &mut self.prices {
                p.step(rng, dt);
            }
            self.now = to;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn flat_market() -> Market {
        Market::new(vec![
            Price::Constant(ConstantPrice(100.0)),
            Price::Constant(ConstantPrice(10.0)),
        ])
    }

    #[test]
    fn shocks_fire_in_order_and_once() {
        let mut m = flat_market();
        m.schedule_shock(ScheduledShock {
            at: 50.0,
            coin: 1,
            factor: 2.0,
        });
        m.schedule_shock(ScheduledShock {
            at: 20.0,
            coin: 1,
            factor: 3.0,
        });
        let mut rng = SmallRng::seed_from_u64(0);
        m.advance_to(&mut rng, 30.0);
        assert_eq!(m.price_of(1), 30.0);
        m.advance_to(&mut rng, 100.0);
        assert_eq!(m.price_of(1), 60.0);
        // No shock fires twice.
        m.advance_to(&mut rng, 1000.0);
        assert_eq!(m.price_of(1), 60.0);
        assert_eq!(m.price_of(0), 100.0);
    }

    #[test]
    fn shock_exactly_at_target_time_fires() {
        let mut m = flat_market();
        m.schedule_shock(ScheduledShock {
            at: 10.0,
            coin: 0,
            factor: 0.5,
        });
        let mut rng = SmallRng::seed_from_u64(0);
        m.advance_to(&mut rng, 10.0);
        assert_eq!(m.price_of(0), 50.0);
        assert_eq!(m.now(), 10.0);
    }

    #[test]
    fn gbm_market_advances_stochastically_but_deterministically_per_seed() {
        let mk = |seed| {
            let mut m = Market::new(vec![Price::Gbm(Gbm::new(100.0, 0.0, 0.2))]);
            let mut rng = SmallRng::seed_from_u64(seed);
            m.advance_to(&mut rng, 86_400.0);
            m.price_of(0)
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn prices_snapshot() {
        let m = flat_market();
        assert_eq!(m.prices(), vec![100.0, 10.0]);
        assert_eq!(m.num_coins(), 2);
    }
}
