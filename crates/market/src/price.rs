//! Exchange-rate processes.
//!
//! The paper's reward weights are "coupled with coin fiat exchange rates"
//! (§4), and its Figure 1 is driven by a real exchange-rate jump. We model
//! prices as geometric Brownian motion with optional Poisson jumps — the
//! standard reduced-form model for crypto prices — plus deterministic
//! scheduled shocks (see [`crate::market::ScheduledShock`]) for event
//! studies.

use rand::Rng;
use serde::{Deserialize, Serialize};

use self::rand_distr_free::normal_sample;

/// A stochastic price process stepped in continuous time.
pub trait PriceProcess {
    /// Current price.
    fn price(&self) -> f64;

    /// Advances the process by `dt` seconds.
    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64);

    /// Applies a multiplicative shock (e.g. a pump of `factor = 2.0`).
    fn shock(&mut self, factor: f64);
}

/// A constant price (for calibration and unit tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantPrice(pub f64);

impl PriceProcess for ConstantPrice {
    fn price(&self) -> f64 {
        self.0
    }

    fn step<R: Rng + ?Sized>(&mut self, _rng: &mut R, _dt: f64) {}

    fn shock(&mut self, factor: f64) {
        self.0 *= factor;
    }
}

/// Geometric Brownian motion:
/// `dS/S = μ dt + σ dW`, stepped exactly via the log-normal solution.
///
/// # Examples
///
/// ```
/// use goc_market::{Gbm, PriceProcess};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut p = Gbm::new(100.0, 0.0, 0.05);
/// p.step(&mut rng, 86_400.0);
/// assert!(p.price() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gbm {
    price: f64,
    /// Drift per day.
    drift: f64,
    /// Volatility per sqrt(day).
    volatility: f64,
}

/// Seconds per day, the natural unit for crypto drift/vol parameters.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

impl Gbm {
    /// Creates a GBM with `drift` per day and `volatility` per √day.
    pub fn new(price: f64, drift: f64, volatility: f64) -> Self {
        assert!(price > 0.0, "price must be positive");
        Gbm {
            price,
            drift,
            volatility,
        }
    }
}

impl PriceProcess for Gbm {
    fn price(&self) -> f64 {
        self.price
    }

    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        let dt_days = dt / SECONDS_PER_DAY;
        let z = normal_sample(rng);
        let exponent = (self.drift - 0.5 * self.volatility * self.volatility) * dt_days
            + self.volatility * dt_days.sqrt() * z;
        self.price *= exponent.exp();
    }

    fn shock(&mut self, factor: f64) {
        self.price *= factor;
    }
}

/// GBM plus compound-Poisson jumps: at rate `jump_rate` per day, the price
/// multiplies by `exp(N(jump_mean, jump_sd))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JumpDiffusion {
    /// The diffusive part.
    pub gbm: Gbm,
    /// Expected jumps per day.
    pub jump_rate: f64,
    /// Mean of the log jump size.
    pub jump_mean: f64,
    /// Standard deviation of the log jump size.
    pub jump_sd: f64,
}

impl JumpDiffusion {
    /// Creates a jump-diffusion process.
    pub fn new(gbm: Gbm, jump_rate: f64, jump_mean: f64, jump_sd: f64) -> Self {
        JumpDiffusion {
            gbm,
            jump_rate,
            jump_mean,
            jump_sd,
        }
    }
}

impl PriceProcess for JumpDiffusion {
    fn price(&self) -> f64 {
        self.gbm.price()
    }

    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64) {
        self.gbm.step(rng, dt);
        if dt <= 0.0 || self.jump_rate <= 0.0 {
            return;
        }
        let expected = self.jump_rate * dt / SECONDS_PER_DAY;
        // Sample the Poisson count by inversion (expected counts are tiny
        // per step in practice).
        let mut k = 0u32;
        let mut acc = (-expected).exp();
        let mut cdf = acc;
        let u: f64 = rng.gen();
        while u > cdf && k < 64 {
            k += 1;
            acc *= expected / k as f64;
            cdf += acc;
        }
        for _ in 0..k {
            let z = normal_sample(rng);
            self.gbm.shock((self.jump_mean + self.jump_sd * z).exp());
        }
    }

    fn shock(&mut self, factor: f64) {
        self.gbm.shock(factor);
    }
}

/// Mean-reverting log-price (Ornstein–Uhlenbeck on `ln S`): captures the
/// tendency of altcoin/BTC ratios to revert to a long-run level after
/// pump events, used by ratio-driven scenarios.
///
/// `d ln S = θ (ln μ − ln S) dt + σ dW`, stepped with the exact OU
/// transition (per-day parameters like [`Gbm`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanReverting {
    price: f64,
    /// Long-run price level `μ`.
    pub mean: f64,
    /// Reversion speed per day `θ`.
    pub speed: f64,
    /// Volatility per √day `σ`.
    pub volatility: f64,
}

impl MeanReverting {
    /// Creates a mean-reverting process around `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `price` or `mean` are not positive, or `speed` is
    /// negative.
    pub fn new(price: f64, mean: f64, speed: f64, volatility: f64) -> Self {
        assert!(price > 0.0 && mean > 0.0, "prices must be positive");
        assert!(speed >= 0.0, "reversion speed must be non-negative");
        MeanReverting {
            price,
            mean,
            speed,
            volatility,
        }
    }
}

impl PriceProcess for MeanReverting {
    fn price(&self) -> f64 {
        self.price
    }

    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        let dt_days = dt / SECONDS_PER_DAY;
        let x = self.price.ln();
        let mu = self.mean.ln();
        let decay = (-self.speed * dt_days).exp();
        let mean_x = mu + (x - mu) * decay;
        let var = if self.speed > 0.0 {
            self.volatility * self.volatility * (1.0 - decay * decay) / (2.0 * self.speed)
        } else {
            self.volatility * self.volatility * dt_days
        };
        let z = normal_sample(rng);
        self.price = (mean_x + var.sqrt() * z).exp();
    }

    fn shock(&mut self, factor: f64) {
        self.price *= factor;
    }
}

/// Minimal normal sampling (Box–Muller) so the workspace does not need a
/// distributions crate.
mod rand_distr_free {
    use rand::Rng;

    /// One standard-normal sample via Box–Muller.
    pub fn normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constant_price_only_moves_on_shock() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut p = ConstantPrice(10.0);
        p.step(&mut rng, 1e6);
        assert_eq!(p.price(), 10.0);
        p.shock(1.5);
        assert_eq!(p.price(), 15.0);
    }

    #[test]
    fn gbm_stays_positive_and_has_near_zero_drift_mean() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        let n = 2000;
        for _ in 0..n {
            let mut p = Gbm::new(100.0, 0.0, 0.1);
            for _ in 0..30 {
                p.step(&mut rng, SECONDS_PER_DAY);
            }
            assert!(p.price() > 0.0);
            sum += p.price().ln();
        }
        // E[ln S_30] = ln 100 − 30·σ²/2 = ln 100 − 0.15.
        let mean_log = sum / n as f64;
        let expected = 100.0f64.ln() - 0.15;
        assert!(
            (mean_log - expected).abs() < 0.05,
            "mean log price {mean_log} vs expected {expected}"
        );
    }

    #[test]
    fn zero_dt_is_identity() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut p = Gbm::new(50.0, 0.1, 0.3);
        p.step(&mut rng, 0.0);
        assert_eq!(p.price(), 50.0);
    }

    #[test]
    fn jumps_occur_at_the_configured_rate() {
        let mut rng = SmallRng::seed_from_u64(4);
        // Pure jump process: no diffusion, deterministic jump size e^0.01
        // (small enough to stay in f64 range over the horizon).
        let mut p = JumpDiffusion::new(Gbm::new(1.0, 0.0, 0.0), 2.0, 0.01, 0.0);
        let days = 500;
        for _ in 0..days {
            p.step(&mut rng, SECONDS_PER_DAY);
        }
        // ln price / 0.01 counts the jumps; expect ~2 per day.
        let rate = p.price().ln() / 0.01 / days as f64;
        assert!((rate - 2.0).abs() < 0.2, "observed jump rate {rate}");
    }

    #[test]
    fn mean_reversion_pulls_back_after_shock() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut p = MeanReverting::new(100.0, 100.0, 0.3, 0.0); // no noise
        p.shock(3.0);
        assert_eq!(p.price(), 300.0);
        for _ in 0..60 {
            p.step(&mut rng, SECONDS_PER_DAY);
        }
        assert!(
            (p.price() - 100.0).abs() < 1.0,
            "price {} did not revert",
            p.price()
        );
    }

    #[test]
    fn mean_reversion_stationary_spread() {
        // With θ=0.5/day, σ=0.1/√day, stationary var of ln S is
        // σ²/(2θ) = 0.01; sample long-run values and check the spread.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut p = MeanReverting::new(100.0, 100.0, 0.5, 0.1);
        let mut logs = Vec::new();
        for _ in 0..4000 {
            p.step(&mut rng, SECONDS_PER_DAY);
            logs.push(p.price().ln());
        }
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / logs.len() as f64;
        assert!((mean - 100.0f64.ln()).abs() < 0.02, "mean {mean}");
        assert!((var - 0.01).abs() < 0.002, "var {var}");
    }

    #[test]
    fn mean_reversion_zero_speed_is_gbm_like() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut p = MeanReverting::new(50.0, 100.0, 0.0, 0.2);
        p.step(&mut rng, SECONDS_PER_DAY);
        assert!(p.price() > 0.0);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal_sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
