//! # goc-market — exchange rates, shocks, and whale budgets
//!
//! Market substrate for the "Game of Coins" reproduction: per-coin price
//! processes (constant / GBM / jump-diffusion), deterministic scheduled
//! shocks (the Nov 2017 BCH pump of the paper's Figure 1), and
//! whale-transaction budgets (the fee-based manipulation channel of §1).
//!
//! ```
//! use goc_market::{Gbm, Market, Price, PriceProcess, ScheduledShock};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // BTC-like and BCH-like prices; BCH triples on day 2.
//! let mut market = Market::new(vec![
//!     Price::Gbm(Gbm::new(6000.0, 0.0, 0.04)),
//!     Price::Gbm(Gbm::new(600.0, 0.0, 0.08)),
//! ]);
//! market.schedule_shock(ScheduledShock { at: 2.0 * 86_400.0, coin: 1, factor: 3.0 });
//!
//! let mut rng = SmallRng::seed_from_u64(17);
//! market.advance_to(&mut rng, 3.0 * 86_400.0);
//! assert!(market.price_of(1) > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod market;
pub mod price;
pub mod whale;

pub use market::{Market, Price, ScheduledShock};
pub use price::{ConstantPrice, Gbm, JumpDiffusion, MeanReverting, PriceProcess, SECONDS_PER_DAY};
pub use whale::{WhaleBudget, WhaleInjection, WhalePlan};
