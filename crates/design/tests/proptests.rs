//! Property tests for the reward designer: Algorithm 2 reaches any
//! target across generated games, schedules satisfy the paper's
//! structural properties, and the cost model behaves.

use goc_design::{design, h1, hi, DesignOptions, DesignProblem};
use goc_game::{equilibrium, Extended, Game};
use goc_learning::SchedulerKind;
use proptest::prelude::*;

/// Games with strictly distinct powers (a §5 requirement) that admit at
/// least two equilibria via the Lemma 2 construction.
fn arb_problem() -> impl Strategy<Value = DesignProblem> {
    (3usize..7, 2usize..4, 0u64..10_000).prop_filter_map(
        "needs distinct powers and two equilibria",
        |(n, k, salt)| {
            // Deterministic distinct powers seeded by the salt.
            let powers: Vec<u64> = (0..n)
                .map(|i| 1 + salt % 97 + (i as u64) * (7 + salt % 13))
                .collect();
            let rewards: Vec<u64> = (0..k)
                .map(|i| 100 + ((salt / 7) % 89) * (i as u64 + 1))
                .collect();
            let game = Game::build(&powers, &rewards).ok()?;
            if !game.system().powers_distinct() {
                return None;
            }
            let (s0, sf) = equilibrium::two_equilibria(&game).ok()?;
            DesignProblem::new(game, s0, sf).ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full algorithm reaches the target with invariants verified,
    /// for every bundled scheduler.
    #[test]
    fn design_always_reaches_target(problem in arb_problem(), kind_idx in 0usize..6, seed in 0u64..100) {
        let kind = SchedulerKind::ALL[kind_idx];
        let mut sched = kind.build(seed);
        let outcome = design(
            &problem,
            sched.as_mut(),
            DesignOptions { verify_invariants: true, ..DesignOptions::default() },
        ).unwrap();
        prop_assert_eq!(&outcome.final_config, problem.target());
        prop_assert!(problem.game().is_stable(&outcome.final_config));
        prop_assert!(outcome.total_cost >= 0.0);
    }

    /// H1 structural property: every miner outside the stage-1 target has
    /// a strict better response to it in every configuration.
    #[test]
    fn h1_target_strictly_dominates(problem in arb_problem()) {
        let game = problem.game();
        let target = {
            // final coin of the strongest miner
            let strongest = game.system().ids_by_power_desc()[0];
            problem.target().coin_of(strongest)
        };
        let designed = game.with_rewards(h1(&problem)).unwrap();
        // Sample a handful of configurations rather than enumerate.
        for salt in 0..5usize {
            let assignment: Vec<goc_game::CoinId> = (0..game.system().num_miners())
                .map(|i| goc_game::CoinId((i + salt) % game.system().num_coins()))
                .collect();
            let s = goc_game::Configuration::new(assignment, game.system()).unwrap();
            let masses = s.masses(game.system());
            for p in game.system().miner_ids() {
                if s.coin_of(p) != target {
                    prop_assert!(designed.is_better_response(p, target, &s, &masses));
                }
            }
        }
    }

    /// H_i structural properties at each stage start: non-target occupied
    /// coins are evened out to exactly R(s); the mover's step is unique.
    #[test]
    fn hi_schedule_structure(problem in arb_problem()) {
        for i in 2..=problem.num_stages() {
            let s = problem.stage_config(i - 1);
            if s == problem.stage_config(i) {
                continue;
            }
            let schedule = hi(&problem, i, &s).unwrap();
            let designed = problem.game().with_rewards(schedule).unwrap();
            let masses = s.masses(designed.system());
            let r = goc_design::max_rpu(problem.game(), &s);
            let target = problem.final_coin(i);
            for c in designed.system().coin_ids() {
                if c != target && !masses.is_empty_coin(c) {
                    prop_assert_eq!(designed.rpu(c, &masses), Extended::Finite(r));
                }
            }
            let moves = designed.improving_moves(&s);
            prop_assert_eq!(moves.len(), 1, "stage {} must have a unique step", i);
            let mover_rank = problem.mover_rank(i, &s).unwrap();
            prop_assert_eq!(moves[0].miner, problem.ranked(mover_rank));
            prop_assert_eq!(moves[0].to, target);
        }
    }

    /// Determinism: two identical design runs agree completely.
    #[test]
    fn design_is_deterministic(problem in arb_problem(), seed in 0u64..50) {
        let once = |seed: u64| {
            let mut sched = SchedulerKind::UniformRandom.build(seed);
            design(&problem, sched.as_mut(), DesignOptions::default()).unwrap()
        };
        let a = once(seed);
        let b = once(seed);
        prop_assert_eq!(a.final_config, b.final_config);
        prop_assert_eq!(a.total_steps, b.total_steps);
        prop_assert_eq!(a.total_cost, b.total_cost);
    }
}
