//! Runtime verification of Lemma 1's Ψ invariants.
//!
//! During a stage-`i` learning phase that starts at `s ∈ T_i \ {sⁱ}` with
//! mover `p_m` moving `c = s_f.p_{i-1} → c' = s_f.p_i`, every reached
//! configuration `s'` must satisfy (Appendix E):
//!
//! * **Ψ₁** — ranks `k < m` keep their coins: `s'.p_k = s.p_k`;
//! * **Ψ₂** — the mover stays on the target: `s'.p_m = c'`;
//! * **Ψ₃** — ranks `k > m` remain on `{c, c'}`;
//! * **Ψ₄** — `M_c(s⁰) ≤ M_c(s') ≤ M_c(s)`;
//! * **Ψ₅** — `M_{c'}(s) ≤ M_{c'}(s') ≤ M_{c'}(s⁰)`,
//!
//! where `s⁰ = (s₋p_m, c')`. The checker observes every applied move and
//! records the first violation (if any) for the caller to surface.

use std::sync::Arc;

use goc_game::{CoinId, Configuration, MinerId, Move, System};

use crate::error::DesignError;
use crate::stage::DesignProblem;

/// Observer verifying Ψ₁–Ψ₅ across one learning phase.
#[derive(Debug)]
pub struct PsiChecker {
    system: Arc<System>,
    /// `(miner, expected coin)` for every rank `k < m`.
    prefix: Vec<(MinerId, CoinId)>,
    /// Miners of rank `> m` (must stay on `{c, c'}`).
    suffix: Vec<MinerId>,
    mover: MinerId,
    c_prev: CoinId,
    c_new: CoinId,
    /// Running masses of `c` and `c'`, updated per observed move.
    mass_prev: u128,
    mass_new: u128,
    /// `[M_c(s⁰), M_c(s)]`.
    c_prev_bounds: (u128, u128),
    /// `[M_{c'}(s), M_{c'}(s⁰)]`.
    c_new_bounds: (u128, u128),
    violation: Option<String>,
    steps_seen: usize,
}

impl PsiChecker {
    /// Prepares a checker for the stage-`i` phase starting at `start`.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::InvariantViolated`] if `start ∉ T_i` or
    /// `start = sⁱ` (no mover — the phase should not have been launched).
    pub fn new(
        problem: &DesignProblem,
        stage: usize,
        start: &Configuration,
    ) -> Result<Self, DesignError> {
        if !problem.in_t(stage, start) {
            return Err(DesignError::InvariantViolated {
                stage,
                iteration: 0,
                what: format!("phase start {start} is outside T_{stage}"),
            });
        }
        let m = problem
            .mover_rank(stage, start)
            .ok_or_else(|| DesignError::InvariantViolated {
                stage,
                iteration: 0,
                what: "phase started at s^i (no mover)".to_string(),
            })?;
        let system = Arc::clone(problem.game().system());
        let mover = problem.ranked(m);
        let c_prev = problem.final_coin(stage - 1);
        let c_new = problem.final_coin(stage);
        let masses = start.masses(&system);
        let mover_power = u128::from(system.power_of(mover));
        let mc = masses.mass_of(c_prev);
        let mcp = masses.mass_of(c_new);
        Ok(PsiChecker {
            prefix: (1..m)
                .map(|k| {
                    let p = problem.ranked(k);
                    (p, start.coin_of(p))
                })
                .collect(),
            suffix: ((m + 1)..=problem.num_stages())
                .map(|k| problem.ranked(k))
                .collect(),
            mover,
            c_prev,
            c_new,
            mass_prev: mc,
            mass_new: mcp,
            c_prev_bounds: (mc - mover_power, mc),
            c_new_bounds: (mcp, mcp + mover_power),
            system,
            violation: None,
            steps_seen: 0,
        })
    }

    /// Observes one applied move; call with the configuration *after* the
    /// move. Records the first violation and ignores the rest.
    pub fn observe(&mut self, config: &Configuration, mv: Move) {
        // Track the two interesting masses regardless of violation state so
        // the bookkeeping stays consistent.
        let power = u128::from(self.system.power_of(mv.miner));
        if mv.from != mv.to {
            if mv.from == self.c_prev {
                self.mass_prev -= power;
            } else if mv.from == self.c_new {
                self.mass_new -= power;
            }
            if mv.to == self.c_prev {
                self.mass_prev += power;
            } else if mv.to == self.c_new {
                self.mass_new += power;
            }
        }
        self.steps_seen += 1;
        if self.violation.is_some() {
            return;
        }
        if self.steps_seen == 1 && (mv.miner != self.mover || mv.to != self.c_new) {
            // The phase's first step must be the mover's unique better
            // response c → c' (the paper's s⁰ construction).
            self.violation = Some(format!(
                "first step was {mv}, expected mover {} to join {}",
                self.mover, self.c_new
            ));
            return;
        }
        if let Some(what) = self.check(config) {
            self.violation = Some(what);
        }
    }

    fn check(&self, config: &Configuration) -> Option<String> {
        for &(p, coin) in &self.prefix {
            if config.coin_of(p) != coin {
                return Some(format!("Ψ1: {p} left its coin {coin}"));
            }
        }
        if config.coin_of(self.mover) != self.c_new {
            return Some(format!("Ψ2: mover {} left {}", self.mover, self.c_new));
        }
        for &p in &self.suffix {
            let c = config.coin_of(p);
            if c != self.c_prev && c != self.c_new {
                return Some(format!("Ψ3: {p} escaped to {c}"));
            }
        }
        let (lo, hi) = self.c_prev_bounds;
        if self.mass_prev < lo || self.mass_prev > hi {
            return Some(format!(
                "Ψ4: M_{}(s') = {} outside [{lo}, {hi}]",
                self.c_prev, self.mass_prev
            ));
        }
        let (lo, hi) = self.c_new_bounds;
        if self.mass_new < lo || self.mass_new > hi {
            return Some(format!(
                "Ψ5: M_{}(s') = {} outside [{lo}, {hi}]",
                self.c_new, self.mass_new
            ));
        }
        None
    }

    /// Consumes the checker, returning the first recorded violation.
    pub fn into_violation(self) -> Option<String> {
        self.violation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_game::{equilibrium, Game};

    fn problem() -> DesignProblem {
        let game = Game::build(&[13, 11, 7, 5, 3, 2], &[17, 10]).unwrap();
        let (s0, sf) = equilibrium::two_equilibria(&game).unwrap();
        DesignProblem::new(game, s0, sf).unwrap()
    }

    /// Finds the first stage with a genuine phase to run and returns
    /// `(stage, start_config)`.
    fn first_active_stage(p: &DesignProblem) -> (usize, Configuration) {
        for i in 2..=p.num_stages() {
            let start = p.stage_config(i - 1);
            if start != p.stage_config(i) {
                return (i, start);
            }
        }
        panic!("problem has no active stage >= 2");
    }

    #[test]
    fn accepts_the_movers_step() {
        let p = problem();
        let (i, start) = first_active_stage(&p);
        let mover = p.ranked(p.mover_rank(i, &start).unwrap());
        let mut checker = PsiChecker::new(&p, i, &start).unwrap();
        let mv = Move {
            miner: mover,
            from: start.coin_of(mover),
            to: p.final_coin(i),
        };
        let after = start.with_move(mover, p.final_coin(i));
        checker.observe(&after, mv);
        assert_eq!(checker.into_violation(), None);
    }

    #[test]
    fn rejects_a_wrong_first_step() {
        let p = problem();
        let (i, start) = first_active_stage(&p);
        // The strongest miner moving first violates the unique-step claim.
        let p1 = p.ranked(1);
        let mv = Move {
            miner: p1,
            from: start.coin_of(p1),
            to: p.final_coin(i),
        };
        let after = start.with_move(p1, p.final_coin(i));
        let mut checker = PsiChecker::new(&p, i, &start).unwrap();
        checker.observe(&after, mv);
        let v = checker.into_violation().unwrap();
        assert!(v.contains("first step"), "{v}");
    }

    #[test]
    fn rejects_prefix_motion_later() {
        let p = problem();
        let (i, start) = first_active_stage(&p);
        let mover = p.ranked(p.mover_rank(i, &start).unwrap());
        let mut checker = PsiChecker::new(&p, i, &start).unwrap();
        let mv1 = Move {
            miner: mover,
            from: start.coin_of(mover),
            to: p.final_coin(i),
        };
        let s1 = start.with_move(mover, p.final_coin(i));
        checker.observe(&s1, mv1);
        // Now the top miner wanders off.
        let p1 = p.ranked(1);
        let elsewhere = p.final_coin(i);
        if s1.coin_of(p1) != elsewhere {
            let mv2 = Move {
                miner: p1,
                from: s1.coin_of(p1),
                to: elsewhere,
            };
            let s2 = s1.with_move(p1, elsewhere);
            checker.observe(&s2, mv2);
            let v = checker.into_violation().unwrap();
            assert!(v.contains("Ψ1"), "{v}");
        }
    }

    #[test]
    fn rejects_start_outside_t() {
        let p = problem();
        let (i, start) = first_active_stage(&p);
        let p1 = p.ranked(1);
        let other = (0..p.game().system().num_coins())
            .map(CoinId)
            .find(|&c| c != start.coin_of(p1))
            .unwrap();
        let bad = start.with_move(p1, other);
        if !p.in_t(i, &bad) {
            assert!(PsiChecker::new(&p, i, &bad).is_err());
        }
    }

    #[test]
    fn rejects_start_at_stage_target() {
        let p = problem();
        let (i, _) = first_active_stage(&p);
        assert!(PsiChecker::new(&p, i, &p.stage_config(i)).is_err());
    }
}
