//! Algorithm 2: the dynamic reward design driving any better-response
//! learning from `s0` to `sf` (paper §5), with optional verification of
//! Lemma 1's Ψ invariants and Theorem 2's Φ progress measure.

use goc_game::{Configuration, Game};
use goc_learning::{run, LearningOptions, Scheduler};

use crate::error::DesignError;
use crate::rewards::{h1, hi, iteration_cost};
use crate::stage::DesignProblem;
use crate::verify::PsiChecker;

/// Options for a design run.
#[derive(Debug, Clone, Copy)]
pub struct DesignOptions {
    /// Cap on loop iterations per stage; Theorem 2 bounds the true count
    /// by `2^(n-i+1)`, so the cap only guards against engine bugs.
    pub max_iterations_per_stage: usize,
    /// Options forwarded to each learning phase.
    pub learning: LearningOptions,
    /// Verify Lemma 1's Ψ₁–Ψ₅ invariants after every learning step and the
    /// Φ progress measure after every iteration (recommended in tests;
    /// costs one masses-recompute per step).
    pub verify_invariants: bool,
}

impl Default for DesignOptions {
    fn default() -> Self {
        DesignOptions {
            max_iterations_per_stage: 100_000,
            learning: LearningOptions::default(),
            verify_invariants: false,
        }
    }
}

/// Per-stage accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage number (1-based as in the paper).
    pub stage: usize,
    /// Loop iterations executed (0 when the stage was already satisfied).
    pub iterations: usize,
    /// Better-response steps taken across the stage's learning phases.
    pub steps: usize,
    /// Sum of per-iteration manipulation costs (`Σ_c max(0, H−F)` each),
    /// accumulated in `f64` — each iteration's cost is exact, but exact
    /// sums across iterations grow denominators without bound.
    pub cost: f64,
}

/// Outcome of a full Algorithm 2 run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignOutcome {
    /// The final configuration (always `sf` on success).
    pub final_config: Configuration,
    /// Per-stage reports, in stage order.
    pub stages: Vec<StageReport>,
    /// Total learning steps across all stages.
    pub total_steps: usize,
    /// Total loop iterations across all stages.
    pub total_iterations: usize,
    /// Total manipulation cost (see [`StageReport::cost`]).
    pub total_cost: f64,
}

impl DesignOutcome {
    fn tally(stages: Vec<StageReport>, final_config: Configuration) -> Self {
        let total_steps = stages.iter().map(|s| s.steps).sum();
        let total_iterations = stages.iter().map(|s| s.iterations).sum();
        let total_cost = stages.iter().map(|s| s.cost).sum::<f64>();
        DesignOutcome {
            final_config,
            stages,
            total_steps,
            total_iterations,
            total_cost,
        }
    }
}

/// Runs Algorithm 2 on `problem` with the given learning `scheduler`.
///
/// Each loop iteration posts a designed reward schedule (`H₁` for stage 1,
/// `H_i(s)` otherwise), lets better-response learning converge in the
/// modified game, and repeats until the stage configuration `sⁱ` is
/// reached; after stage `n`, the system sits in `sf`, which is stable
/// under the *original* rewards, so the manipulation can stop.
///
/// # Errors
///
/// * [`DesignError::LearningDidNotConverge`] if a learning phase exhausts
///   its step budget.
/// * [`DesignError::StageStalled`] if a stage makes no Φ progress or
///   exceeds the iteration cap (would contradict Theorem 2).
/// * [`DesignError::InvariantViolated`] if verification is enabled and a
///   Ψ/T_i invariant breaks (would contradict Lemma 1).
///
/// # Examples
///
/// ```
/// use goc_design::{design, DesignOptions, DesignProblem};
/// use goc_game::{equilibrium, Game};
/// use goc_learning::RoundRobin;
///
/// let game = Game::build(&[13, 11, 7, 5, 3, 2], &[17, 10])?;
/// let (s0, sf) = equilibrium::two_equilibria(&game)?;
/// let problem = DesignProblem::new(game.clone(), s0, sf.clone())?;
/// let outcome = design(&problem, &mut RoundRobin::new(), DesignOptions::default())?;
/// assert_eq!(outcome.final_config, sf);
/// assert!(game.is_stable(&outcome.final_config)); // safe to stop paying
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn design(
    problem: &DesignProblem,
    scheduler: &mut dyn Scheduler,
    options: DesignOptions,
) -> Result<DesignOutcome, DesignError> {
    let game = problem.game();
    let mut s = problem.initial().clone();
    let mut stages = Vec::with_capacity(problem.num_stages());

    if &s == problem.target() {
        return Ok(DesignOutcome::tally(stages, s));
    }

    for i in 1..=problem.num_stages() {
        let target_config = problem.stage_config(i);
        let mut report = StageReport {
            stage: i,
            iterations: 0,
            steps: 0,
            cost: 0.0,
        };

        while s != target_config {
            if report.iterations >= options.max_iterations_per_stage {
                return Err(DesignError::StageStalled {
                    stage: i,
                    iterations: report.iterations,
                });
            }
            report.iterations += 1;
            let phi_before = (i >= 2).then(|| problem.phi(i, &s));

            let designed = if i == 1 {
                h1(problem)
            } else {
                hi(problem, i, &s)?
            };
            report.cost += iteration_cost(game.rewards(), &designed).to_f64();
            let design_game: Game = game.with_rewards(designed)?;

            let outcome = if options.verify_invariants && i >= 2 {
                run_verified(
                    problem,
                    i,
                    report.iterations,
                    &design_game,
                    &s,
                    scheduler,
                    options,
                )?
            } else {
                run(&design_game, &s, scheduler, options.learning)?
            };
            if !outcome.converged {
                return Err(DesignError::LearningDidNotConverge {
                    stage: i,
                    iteration: report.iterations,
                });
            }
            report.steps += outcome.steps;

            // Theorem 2 progress: Φ_i strictly increases per iteration.
            if let Some(before) = phi_before {
                if problem.phi(i, &outcome.final_config) <= before {
                    return Err(DesignError::StageStalled {
                        stage: i,
                        iterations: report.iterations,
                    });
                }
            } else if outcome.final_config == s {
                // Stage 1 converged without moving: H₁ failed to create a
                // better response (cannot happen with the +1 fix).
                return Err(DesignError::StageStalled {
                    stage: i,
                    iterations: report.iterations,
                });
            }
            s = outcome.final_config;
        }
        stages.push(report);
    }

    debug_assert_eq!(&s, problem.target());
    Ok(DesignOutcome::tally(stages, s))
}

/// Runs one learning phase with a [`PsiChecker`] attached, translating any
/// recorded violation into [`DesignError::InvariantViolated`].
fn run_verified(
    problem: &DesignProblem,
    stage: usize,
    iteration: usize,
    design_game: &Game,
    start: &Configuration,
    scheduler: &mut dyn Scheduler,
    options: DesignOptions,
) -> Result<goc_learning::LearningOutcome, DesignError> {
    let mut checker = PsiChecker::new(problem, stage, start)?;
    let outcome = goc_learning::run_with_observer(
        design_game,
        start,
        scheduler,
        options.learning,
        |config, mv| checker.observe(config, mv),
    )?;
    if let Some(what) = checker.into_violation() {
        return Err(DesignError::InvariantViolated {
            stage,
            iteration,
            what,
        });
    }
    // Lemma 1 conclusions at the converged configuration.
    if outcome.converged {
        if !problem.in_t(stage, &outcome.final_config) {
            return Err(DesignError::InvariantViolated {
                stage,
                iteration,
                what: format!(
                    "converged configuration {} left T_{stage}",
                    outcome.final_config
                ),
            });
        }
        if let Some(m) = problem.mover_rank(stage, start) {
            let mover = problem.ranked(m);
            // Lemma 1(2): the mover ends at s_f.p_i.
            if outcome.final_config.coin_of(mover) != problem.final_coin(stage) {
                return Err(DesignError::InvariantViolated {
                    stage,
                    iteration,
                    what: format!("mover {mover} did not settle on the stage target"),
                });
            }
            // Lemma 1(1): every rank below the mover kept its coin.
            for k in 1..m {
                let p = problem.ranked(k);
                if outcome.final_config.coin_of(p) != start.coin_of(p) {
                    return Err(DesignError::InvariantViolated {
                        stage,
                        iteration,
                        what: format!("rank-{k} miner {p} moved during the phase"),
                    });
                }
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_game::gen::{GameSpec, PowerDist, RewardDist};
    use goc_game::{equilibrium, CoinId};
    use goc_learning::{RoundRobin, SchedulerKind};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn problem() -> DesignProblem {
        let game = Game::build(&[13, 11, 7, 5, 3, 2], &[17, 10]).unwrap();
        let (s0, sf) = equilibrium::two_equilibria(&game).unwrap();
        DesignProblem::new(game, s0, sf).unwrap()
    }

    fn verified_options() -> DesignOptions {
        DesignOptions {
            verify_invariants: true,
            ..DesignOptions::default()
        }
    }

    #[test]
    fn reaches_target_with_round_robin() {
        let p = problem();
        let outcome = design(&p, &mut RoundRobin::new(), verified_options()).unwrap();
        assert_eq!(&outcome.final_config, p.target());
        assert!(p.game().is_stable(&outcome.final_config));
        assert!(outcome.total_cost > 0.0);
        assert_eq!(outcome.stages.len(), p.num_stages());
    }

    #[test]
    fn reaches_target_under_every_scheduler() {
        let p = problem();
        for kind in SchedulerKind::ALL {
            let mut sched = kind.build(123);
            let outcome = design(&p, sched.as_mut(), verified_options())
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(&outcome.final_config, p.target(), "{kind}");
        }
    }

    #[test]
    fn both_directions_work() {
        let game = Game::build(&[13, 11, 7, 5, 3, 2], &[17, 10]).unwrap();
        let (a, b) = equilibrium::two_equilibria(&game).unwrap();
        for (s0, sf) in [(a.clone(), b.clone()), (b, a)] {
            let p = DesignProblem::new(game.clone(), s0, sf.clone()).unwrap();
            let outcome = design(&p, &mut RoundRobin::new(), verified_options()).unwrap();
            assert_eq!(outcome.final_config, sf);
        }
    }

    #[test]
    fn identity_design_is_free() {
        let game = Game::build(&[5, 3, 2], &[9, 4]).unwrap();
        let eq = equilibrium::greedy_equilibrium(&game);
        let p = DesignProblem::new(game, eq.clone(), eq).unwrap();
        let outcome = design(&p, &mut RoundRobin::new(), verified_options()).unwrap();
        assert_eq!(outcome.total_iterations, 0);
        assert_eq!(outcome.total_cost, 0.0);
    }

    #[test]
    fn random_games_random_equilibria_all_reachable() {
        let spec = GameSpec {
            miners: 6,
            coins: 3,
            powers: PowerDist::DistinctUniform { lo: 1, hi: 500 },
            rewards: RewardDist::Uniform { lo: 10, hi: 500 },
        };
        let mut rng = SmallRng::seed_from_u64(99);
        let mut tested = 0;
        while tested < 8 {
            let game = spec.sample(&mut rng).unwrap();
            let eqs = equilibrium::enumerate_equilibria(&game, 1 << 16).unwrap();
            if eqs.len() < 2 {
                continue;
            }
            tested += 1;
            let s0 = eqs[0].clone();
            let sf = eqs[eqs.len() - 1].clone();
            let p = DesignProblem::new(game, s0, sf.clone()).unwrap();
            for kind in [SchedulerKind::UniformRandom, SchedulerKind::MinGain] {
                let mut sched = kind.build(tested as u64);
                let outcome = design(&p, sched.as_mut(), verified_options())
                    .unwrap_or_else(|e| panic!("{kind}: {e}"));
                assert_eq!(&outcome.final_config, &sf, "{kind}");
            }
        }
    }

    #[test]
    fn stage_iteration_counts_respect_theorem2_bound() {
        let p = problem();
        let outcome = design(&p, &mut RoundRobin::new(), verified_options()).unwrap();
        let n = p.num_stages();
        for report in &outcome.stages {
            if report.stage >= 2 {
                let bound = 1u128 << (n - report.stage + 1);
                assert!(
                    (report.iterations as u128) <= bound,
                    "stage {} took {} iterations (> 2^{})",
                    report.stage,
                    report.iterations,
                    n - report.stage + 1
                );
            }
        }
    }

    #[test]
    fn cost_is_finite_and_positive_for_nontrivial_designs() {
        let p = problem();
        let outcome = design(&p, &mut RoundRobin::new(), verified_options()).unwrap();
        assert!(outcome.total_cost > 0.0);
        // Reverting to original rewards afterwards is safe: sf is stable.
        assert!(p.game().is_stable(p.target()));
    }

    #[test]
    fn two_miner_minimal_design() {
        // Smallest nontrivial instance: 2 miners, 2 coins, both split
        // equilibria; drive from one to the other.
        let game = Game::build(&[2, 1], &[3, 2]).unwrap();
        let eqs = equilibrium::enumerate_equilibria(&game, 1 << 10).unwrap();
        assert_eq!(eqs.len(), 2);
        let p = DesignProblem::new(game, eqs[0].clone(), eqs[1].clone()).unwrap();
        let outcome = design(&p, &mut RoundRobin::new(), verified_options()).unwrap();
        assert_eq!(&outcome.final_config, &eqs[1]);
    }

    #[test]
    fn single_coin_design_is_trivial() {
        let game = Game::build(&[3, 2, 1], &[7]).unwrap();
        let s = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let p = DesignProblem::new(game, s.clone(), s).unwrap();
        let outcome = design(&p, &mut RoundRobin::new(), verified_options()).unwrap();
        assert_eq!(outcome.total_iterations, 0);
    }
}
