//! # goc-design — dynamic reward design (paper §5)
//!
//! Implements the paper's second major result: a manipulator who can
//! temporarily raise coin rewards (whale transactions, price pumps) can
//! steer **any** better-response learning from **any** initial equilibrium
//! to **any** desired one, then stop paying — the destination is stable
//! under the original rewards (Algorithms 1–2, Lemma 1, Theorem 2).
//!
//! * [`DesignProblem`] — validated `(game, s₀, s_f)` triple with the
//!   power-ranked miner order, stage configurations `sⁱ`, reachable sets
//!   `T_i`, movers/anchors, and the `Φ_i` progress rank.
//! * [`rewards`] — the designed reward schedules `H₁` (Eq. 5) and `H_i`
//!   (Eq. 4) plus the manipulation cost model.
//! * [`design`] — the full Algorithm 2 loop over any
//!   [`Scheduler`](goc_learning::Scheduler), with optional runtime
//!   verification of Lemma 1's Ψ invariants ([`PsiChecker`]).
//!
//! ```
//! use goc_design::{design, DesignOptions, DesignProblem};
//! use goc_game::{equilibrium, Game};
//! use goc_learning::UniformRandom;
//!
//! let game = Game::build(&[13, 11, 7, 5, 3, 2], &[17, 10])?;
//! let (s0, sf) = equilibrium::two_equilibria(&game)?;
//! let problem = DesignProblem::new(game.clone(), s0, sf.clone())?;
//!
//! // Miners learn in an arbitrary (here: random) order; the designed
//! // rewards still funnel them to sf.
//! let mut learners = UniformRandom::seeded(7);
//! let outcome = design(&problem, &mut learners, DesignOptions::default())?;
//! assert_eq!(outcome.final_config, sf);
//! println!("total manipulation cost: {}", outcome.total_cost);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm;
pub mod baseline;
pub mod error;
pub mod rewards;
pub mod stage;
pub mod verify;

pub use algorithm::{design, DesignOptions, DesignOutcome, StageReport};
pub use baseline::{naive_design, BaselineOutcome};
pub use error::DesignError;
pub use rewards::{h1, hi, iteration_cost, max_rpu};
pub use stage::DesignProblem;
pub use verify::PsiChecker;
