//! Error types for the reward-design algorithms.

use std::fmt;

use goc_game::{GameError, MinerId};
use goc_learning::LearningError;

/// Errors produced while validating or executing a reward design.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DesignError {
    /// §5 requires strictly distinct mining powers (`m_{p1} > … > m_{pn}`).
    PowersNotDistinct,
    /// Reward design is defined for unrestricted games only.
    RestrictedGame,
    /// The initial configuration is not stable under the original rewards.
    InitialNotStable {
        /// A miner with a better response, as witness.
        witness: MinerId,
    },
    /// The target configuration is not stable under the original rewards.
    TargetNotStable {
        /// A miner with a better response, as witness.
        witness: MinerId,
    },
    /// A learning phase exhausted its step budget without converging.
    LearningDidNotConverge {
        /// Stage number (1-based, as in the paper).
        stage: usize,
        /// Iteration within the stage (1-based).
        iteration: usize,
    },
    /// A stage kept iterating without progress (would contradict Thm 2).
    StageStalled {
        /// Stage number (1-based).
        stage: usize,
        /// Iterations executed before giving up.
        iterations: usize,
    },
    /// A Lemma 1 / Ψ invariant was violated during a learning phase.
    InvariantViolated {
        /// Stage number (1-based).
        stage: usize,
        /// Iteration within the stage (1-based).
        iteration: usize,
        /// Human-readable description of the violated invariant.
        what: String,
    },
    /// The underlying learning engine failed.
    Learning(LearningError),
    /// The underlying game model reported an error.
    Game(GameError),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::PowersNotDistinct => {
                f.write_str("reward design requires strictly distinct mining powers")
            }
            DesignError::RestrictedGame => {
                f.write_str("reward design is defined for unrestricted games only")
            }
            DesignError::InitialNotStable { witness } => {
                write!(
                    f,
                    "initial configuration is not stable ({witness} can improve)"
                )
            }
            DesignError::TargetNotStable { witness } => {
                write!(
                    f,
                    "target configuration is not stable ({witness} can improve)"
                )
            }
            DesignError::LearningDidNotConverge { stage, iteration } => write!(
                f,
                "learning phase did not converge (stage {stage}, iteration {iteration})"
            ),
            DesignError::StageStalled { stage, iterations } => {
                write!(f, "stage {stage} stalled after {iterations} iterations")
            }
            DesignError::InvariantViolated {
                stage,
                iteration,
                what,
            } => write!(
                f,
                "invariant violated at stage {stage}, iteration {iteration}: {what}"
            ),
            DesignError::Learning(e) => write!(f, "learning engine error: {e}"),
            DesignError::Game(e) => write!(f, "game model error: {e}"),
        }
    }
}

impl std::error::Error for DesignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DesignError::Learning(e) => Some(e),
            DesignError::Game(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LearningError> for DesignError {
    fn from(e: LearningError) -> Self {
        DesignError::Learning(e)
    }
}

impl From<GameError> for DesignError {
    fn from(e: GameError) -> Self {
        DesignError::Game(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            DesignError::PowersNotDistinct,
            DesignError::RestrictedGame,
            DesignError::InitialNotStable {
                witness: MinerId(0),
            },
            DesignError::TargetNotStable {
                witness: MinerId(1),
            },
            DesignError::LearningDidNotConverge {
                stage: 2,
                iteration: 3,
            },
            DesignError::StageStalled {
                stage: 1,
                iterations: 5,
            },
            DesignError::InvariantViolated {
                stage: 2,
                iteration: 1,
                what: "prefix changed".to_string(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions() {
        let e: DesignError = GameError::NoMiners.into();
        assert!(matches!(e, DesignError::Game(_)));
    }
}
