//! Stage machinery of Algorithm 2: the intermediate configurations `sⁱ`
//! (Eq. 3), the reachable sets `T_i`, the mover `m_i(s)` and anchor
//! `a_i(s)`, and the stage progress rank `Φ_i`.
//!
//! Throughout, miners are indexed by *power rank*: `p_1` is the strongest
//! miner and `p_n` the weakest, mirroring the paper's `m_{p_1} > … >
//! m_{p_n}`. Stage numbers are 1-based as in the paper.

use goc_game::{CoinId, Configuration, Game, MinerId};

use crate::error::DesignError;

/// A validated reward-design problem: move the system of `game` from the
/// stable configuration `s0` to the stable configuration `sf`.
///
/// # Examples
///
/// ```
/// use goc_design::DesignProblem;
/// use goc_game::{equilibrium, Game};
///
/// let game = Game::build(&[13, 11, 7, 5, 3, 2], &[17, 10])?;
/// let (s0, sf) = equilibrium::two_equilibria(&game)?;
/// let problem = DesignProblem::new(game, s0, sf)?;
/// assert_eq!(problem.num_stages(), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DesignProblem {
    game: Game,
    s0: Configuration,
    sf: Configuration,
    /// Miner ids sorted by strictly decreasing power: `order[k-1] = p_k`.
    order: Vec<MinerId>,
}

impl DesignProblem {
    /// Validates and constructs a design problem.
    ///
    /// # Errors
    ///
    /// * [`DesignError::PowersNotDistinct`] — §5 requires `m_{p1} > … > m_{pn}`.
    /// * [`DesignError::RestrictedGame`] — design assumes unrestricted moves.
    /// * [`DesignError::InitialNotStable`] / [`DesignError::TargetNotStable`]
    ///   — both endpoints must be pure equilibria of the original game.
    /// * [`DesignError::Game`] — on malformed configurations.
    pub fn new(game: Game, s0: Configuration, sf: Configuration) -> Result<Self, DesignError> {
        if game.is_restricted() {
            return Err(DesignError::RestrictedGame);
        }
        if !game.system().powers_distinct() {
            return Err(DesignError::PowersNotDistinct);
        }
        // Shape validation via re-construction.
        let s0 = Configuration::new(s0.as_slice().to_vec(), game.system())?;
        let sf = Configuration::new(sf.as_slice().to_vec(), game.system())?;
        if let Some(&witness) = game.unstable_miners(&s0).first() {
            return Err(DesignError::InitialNotStable { witness });
        }
        if let Some(&witness) = game.unstable_miners(&sf).first() {
            return Err(DesignError::TargetNotStable { witness });
        }
        let order = game.system().ids_by_power_desc();
        Ok(DesignProblem {
            game,
            s0,
            sf,
            order,
        })
    }

    /// The game with the original (organic) rewards.
    pub fn game(&self) -> &Game {
        &self.game
    }

    /// The initial equilibrium.
    pub fn initial(&self) -> &Configuration {
        &self.s0
    }

    /// The desired equilibrium.
    pub fn target(&self) -> &Configuration {
        &self.sf
    }

    /// Number of stages `n = |Π|`.
    pub fn num_stages(&self) -> usize {
        self.order.len()
    }

    /// The miner of power rank `k` (1-based): `p_k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in `1..=n`.
    pub fn ranked(&self, k: usize) -> MinerId {
        self.order[k - 1]
    }

    /// The power rank (1-based) of a miner id.
    pub fn rank_of(&self, p: MinerId) -> usize {
        1 + self
            .order
            .iter()
            .position(|&q| q == p)
            .expect("miner belongs to the system")
    }

    /// The final coin of the rank-`k` miner: `s_f.p_k`.
    pub fn final_coin(&self, k: usize) -> CoinId {
        self.sf.coin_of(self.ranked(k))
    }

    /// The intermediate configuration `sⁱ` of Eq. 3: ranks `1..=i` at their
    /// final coins, ranks `i+1..=n` at `s_f.p_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not in `1..=n`.
    pub fn stage_config(&self, i: usize) -> Configuration {
        assert!((1..=self.num_stages()).contains(&i), "stage out of range");
        let mut assignment = self.sf.as_slice().to_vec();
        let anchor_coin = self.final_coin(i);
        for k in (i + 1)..=self.num_stages() {
            assignment[self.ranked(k).index()] = anchor_coin;
        }
        Configuration::new(assignment, self.game.system())
            .expect("stage assignment is valid by construction")
    }

    /// Whether `s ∈ T_i`: ranks `< i` at final coins, ranks `>= i` on
    /// `{s_f.p_i, s_f.p_{i-1}}`. Defined for `i >= 2` (stage 1 places no
    /// constraint on intermediate configurations).
    ///
    /// # Panics
    ///
    /// Panics if `i < 2` or `i > n`.
    pub fn in_t(&self, i: usize, s: &Configuration) -> bool {
        assert!(
            (2..=self.num_stages()).contains(&i),
            "T_i needs 2 <= i <= n"
        );
        let c_prev = self.final_coin(i - 1);
        let c_new = self.final_coin(i);
        for k in 1..i {
            if s.coin_of(self.ranked(k)) != self.final_coin(k) {
                return false;
            }
        }
        for k in i..=self.num_stages() {
            let c = s.coin_of(self.ranked(k));
            if c != c_prev && c != c_new {
                return false;
            }
        }
        true
    }

    /// The mover rank `m_i(s) = min{ j | ∀ l > j : s.p_l = s_f.p_i }`,
    /// defined for `s ∈ T_i \ {sⁱ}`. Returns `None` when `s == sⁱ`
    /// (every rank from `i` on is already at the target coin).
    pub fn mover_rank(&self, i: usize, s: &Configuration) -> Option<usize> {
        let target = self.final_coin(i);
        (i..=self.num_stages())
            .rev()
            .find(|&k| s.coin_of(self.ranked(k)) != target)
    }

    /// The anchor rank `a_i(s) = m_i(s) − 1`.
    pub fn anchor_rank(&self, i: usize, s: &Configuration) -> Option<usize> {
        self.mover_rank(i, s).map(|m| m - 1)
    }

    /// The stage progress rank `Φ_i(s)`: the binary vector
    /// `vec(s)[j] = [p_{j+i−1} ∈ P_{s_f.p_i}(s)]` read as a big-endian
    /// integer. Lemma 1 implies this strictly increases across the loop
    /// iterations of stage `i` (Theorem 2).
    pub fn phi(&self, i: usize, s: &Configuration) -> u128 {
        let target = self.final_coin(i);
        let mut value: u128 = 0;
        for k in i..=self.num_stages() {
            value <<= 1;
            if s.coin_of(self.ranked(k)) == target {
                value |= 1;
            }
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_game::equilibrium;

    fn problem() -> DesignProblem {
        let game = Game::build(&[13, 11, 7, 5, 3, 2], &[17, 10]).unwrap();
        let (s0, sf) = equilibrium::two_equilibria(&game).unwrap();
        DesignProblem::new(game, s0, sf).unwrap()
    }

    #[test]
    fn validates_distinct_powers() {
        let game = Game::build(&[5, 5, 3], &[4, 4]).unwrap();
        let s = Configuration::uniform(CoinId(0), game.system()).unwrap();
        assert!(matches!(
            DesignProblem::new(game, s.clone(), s),
            Err(DesignError::PowersNotDistinct)
        ));
    }

    #[test]
    fn validates_stability() {
        let game = Game::build(&[5, 3, 2], &[4, 4]).unwrap();
        let unstable = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let stable = equilibrium::greedy_equilibrium(&game);
        assert!(matches!(
            DesignProblem::new(game.clone(), unstable.clone(), stable.clone()),
            Err(DesignError::InitialNotStable { .. })
        ));
        assert!(matches!(
            DesignProblem::new(game, stable, unstable),
            Err(DesignError::TargetNotStable { .. })
        ));
    }

    #[test]
    fn rejects_restricted_games() {
        let game = Game::build(&[5, 3], &[4, 4])
            .unwrap()
            .with_restrictions(vec![vec![true, true], vec![true, true]])
            .unwrap();
        let s = equilibrium::greedy_equilibrium(&game);
        assert!(matches!(
            DesignProblem::new(game, s.clone(), s),
            Err(DesignError::RestrictedGame)
        ));
    }

    #[test]
    fn ranking_is_descending() {
        let p = problem();
        for k in 1..p.num_stages() {
            assert!(
                p.game().system().power_of(p.ranked(k))
                    > p.game().system().power_of(p.ranked(k + 1))
            );
        }
        assert_eq!(p.rank_of(p.ranked(3)), 3);
    }

    #[test]
    fn stage_configs_interpolate() {
        let p = problem();
        let n = p.num_stages();
        // s^n == s_f.
        assert_eq!(&p.stage_config(n), p.target());
        // In s^i, ranks 1..=i match s_f and the rest sit on s_f.p_i.
        for i in 1..=n {
            let si = p.stage_config(i);
            for k in 1..=i {
                assert_eq!(si.coin_of(p.ranked(k)), p.final_coin(k));
            }
            for k in (i + 1)..=n {
                assert_eq!(si.coin_of(p.ranked(k)), p.final_coin(i));
            }
        }
    }

    #[test]
    fn t_membership() {
        let p = problem();
        for i in 2..=p.num_stages() {
            assert!(p.in_t(i, &p.stage_config(i - 1)), "s^(i-1) must be in T_i");
            assert!(p.in_t(i, &p.stage_config(i)), "s^i must be in T_i");
        }
    }

    #[test]
    fn mover_and_anchor() {
        let p = problem();
        let n = p.num_stages();
        for i in 2..=n {
            let prev = p.stage_config(i - 1);
            if prev == p.stage_config(i) {
                assert_eq!(p.mover_rank(i, &prev), None);
                continue;
            }
            // At the stage start, the mover is p_n per the paper.
            assert_eq!(p.mover_rank(i, &prev), Some(n));
            assert_eq!(p.anchor_rank(i, &prev), Some(n - 1));
            // At s^i there is no mover left.
            assert_eq!(p.mover_rank(i, &p.stage_config(i)), None);
        }
    }

    #[test]
    fn phi_increases_as_miners_reach_target() {
        let p = problem();
        let n = p.num_stages();
        for i in 2..=n {
            let start = p.stage_config(i - 1);
            let done = p.stage_config(i);
            if start == done {
                continue;
            }
            let mid = {
                // Move p_n to the target coin manually.
                start.with_move(p.ranked(n), p.final_coin(i))
            };
            assert!(p.phi(i, &mid) > p.phi(i, &start));
            assert!(p.phi(i, &done) >= p.phi(i, &mid));
        }
    }
}
