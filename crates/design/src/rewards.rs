//! The reward design functions `H₁` (Eq. 5) and `H_i` (Eq. 4).
//!
//! Two deliberate deviations from the paper's equations, both documented
//! in `DESIGN.md`:
//!
//! 1. **`H₁` strictness fix**: Eq. 5 sets the stage-1 target reward to
//!    `max F · Σm`, which with integer powers admits a non-strict corner
//!    (a unit-power miner alone on a max-reward coin is exactly
//!    indifferent) and can stall stage 1 forever, because `H₁` does not
//!    depend on the configuration. We add one unit: `max F · Σm + 1`,
//!    restoring a strict better response to the target coin for every
//!    miner outside it and making `s¹` the *unique* equilibrium of the
//!    stage-1 game.
//! 2. **Zero rewards**: Eq. 4 literally assigns `R(s)·M_c(s) = 0` to
//!    unoccupied coins. This is essential for Lemma 1 (keeping the
//!    organic reward of an empty coin would let small miners escape
//!    `T_i`), so designed rewards are allowed to be zero, and `R(s)` is
//!    taken over *occupied* coins (the paper's `max` is undefined on empty
//!    ones).

use goc_game::{CoinId, Configuration, Game, Ratio, Rewards};

use crate::error::DesignError;
use crate::stage::DesignProblem;

/// `R(s) = max{ RPU_c(s) | c occupied }` under the **original** rewards.
///
/// # Panics
///
/// Panics if every coin is unoccupied (impossible: systems have miners).
pub fn max_rpu(game: &Game, s: &Configuration) -> Ratio {
    let masses = s.masses(game.system());
    game.system()
        .coin_ids()
        .filter(|&c| !masses.is_empty_coin(c))
        .map(|c| {
            game.reward_of(c)
                .checked_div_int(masses.mass_of(c) as i128)
                .expect("mass fits i128")
        })
        .fold(None, |acc: Option<Ratio>, r| {
            Some(acc.map_or(r, |a| a.max(r)))
        })
        .expect("at least one coin is occupied")
}

/// Stage-1 designed rewards (Eq. 5, with the `+1` strictness fix): the
/// stage target `s_f.p_1` gets `max F · Σm + 1`; every other coin keeps
/// its organic reward.
pub fn h1(problem: &DesignProblem) -> Rewards {
    let game = problem.game();
    let target = problem.final_coin(1);
    let boosted = game
        .rewards()
        .max()
        .checked_mul_int(game.system().total_power() as i128)
        .and_then(|r| r.checked_add(Ratio::ONE))
        .expect("inputs bounded by 2^40 keep this in i128");
    let values = game
        .system()
        .coin_ids()
        .map(|c| {
            if c == target {
                boosted
            } else {
                game.reward_of(c)
            }
        })
        .collect();
    Rewards::from_ratios(values).expect("designed rewards are non-negative")
}

/// Stage-`i` designed rewards for `i ≥ 2` (Eq. 4): with
/// `R = R(s)` and anchor `a = a_i(s)`,
///
/// * `H_i(s)(s_f.p_i) = R · (M_{s_f.p_i}(s) + m_{p_a})`,
/// * `H_i(s)(c) = R · M_c(s)` for every other coin.
///
/// All occupied non-target coins then have RPU exactly `R`; the mover has
/// a unique strict better response to the target; the anchor (and every
/// stronger miner) is exactly indifferent or worse off moving.
///
/// # Errors
///
/// Returns [`DesignError::InvariantViolated`] if `s ∉ T_i` or `s = sⁱ`
/// (no mover).
pub fn hi(problem: &DesignProblem, i: usize, s: &Configuration) -> Result<Rewards, DesignError> {
    let game = problem.game();
    if !problem.in_t(i, s) {
        return Err(DesignError::InvariantViolated {
            stage: i,
            iteration: 0,
            what: format!("configuration {s} is outside T_{i}"),
        });
    }
    let anchor = problem
        .anchor_rank(i, s)
        .ok_or_else(|| DesignError::InvariantViolated {
            stage: i,
            iteration: 0,
            what: "H_i requested at s = s^i (no mover)".to_string(),
        })?;
    let target = problem.final_coin(i);
    let r = max_rpu(game, s);
    let masses = s.masses(game.system());
    let anchor_power = game.system().power_of(problem.ranked(anchor));
    let values = game
        .system()
        .coin_ids()
        .map(|c| {
            let mass = masses.mass_of(c) as i128;
            if c == target {
                r.checked_mul_int(mass + anchor_power as i128)
            } else {
                r.checked_mul_int(mass)
            }
            .expect("inputs bounded by 2^40 keep this in i128")
        })
        .collect();
    Ok(Rewards::from_ratios(values).expect("designed rewards are non-negative"))
}

/// The extra reward a manipulator pays for one posted schedule:
/// `Σ_c max(0, H(c) − F(c))`.
///
/// Reward *reductions* (designed < organic, possible for the stage target
/// under Eq. 4) cost nothing in this model — the manipulator cannot
/// reclaim organic rewards, only add to them; see `DESIGN.md`.
pub fn iteration_cost(original: &Rewards, designed: &Rewards) -> Ratio {
    assert_eq!(original.len(), designed.len(), "reward vectors must align");
    (0..original.len())
        .map(CoinId)
        .map(|c| {
            let extra = designed.of(c) - original.of(c);
            if extra.is_positive() {
                extra
            } else {
                Ratio::ZERO
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_game::{equilibrium, Extended};

    fn problem() -> DesignProblem {
        let game = Game::build(&[13, 11, 7, 5, 3, 2], &[17, 10]).unwrap();
        let (s0, sf) = equilibrium::two_equilibria(&game).unwrap();
        DesignProblem::new(game, s0, sf).unwrap()
    }

    #[test]
    fn max_rpu_ignores_empty_coins() {
        let game = Game::build(&[2, 1], &[100, 3]).unwrap();
        let s = Configuration::uniform(CoinId(1), game.system()).unwrap();
        // c0 is empty; R(s) must be F(c1)/3 = 1, not infinite.
        assert_eq!(max_rpu(&game, &s), Ratio::ONE);
    }

    #[test]
    fn h1_boosts_only_the_target() {
        let p = problem();
        let h = h1(&p);
        let target = p.final_coin(1);
        let game = p.game();
        for c in game.system().coin_ids() {
            if c == target {
                let expected = game
                    .rewards()
                    .max()
                    .checked_mul_int(game.system().total_power() as i128)
                    .unwrap()
                    + Ratio::ONE;
                assert_eq!(h.of(c), expected);
            } else {
                assert_eq!(h.of(c), game.reward_of(c));
            }
        }
    }

    #[test]
    fn h1_makes_target_strictly_dominant() {
        // Every miner outside the target must have a strict better
        // response to it, from any configuration — including the
        // unit-power corner that motivates the +1 fix.
        let game = Game::build(&[2, 1], &[5, 5]).unwrap();
        let sf = Configuration::new(vec![CoinId(0), CoinId(1)], game.system()).unwrap();
        let s0 = Configuration::new(vec![CoinId(1), CoinId(0)], game.system()).unwrap();
        let p = DesignProblem::new(game, s0, sf).unwrap();
        let h = h1(&p);
        let design_game = p.game().with_rewards(h).unwrap();
        let target = p.final_coin(1);
        for s in goc_game::ConfigurationIter::bounded(design_game.system(), 1 << 20).unwrap() {
            let masses = s.masses(design_game.system());
            for miner in design_game.system().miner_ids() {
                if s.coin_of(miner) != target {
                    assert!(
                        design_game.is_better_response(miner, target, &s, &masses),
                        "{miner} lacks a strict better response to {target} in {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn hi_evens_out_non_target_rpus() {
        let p = problem();
        let n = p.num_stages();
        for i in 2..=n {
            let s = p.stage_config(i - 1);
            if s == p.stage_config(i) {
                continue;
            }
            let h = hi(&p, i, &s).unwrap();
            let design_game = p.game().with_rewards(h).unwrap();
            let masses = s.masses(design_game.system());
            let r = max_rpu(p.game(), &s);
            let target = p.final_coin(i);
            for c in design_game.system().coin_ids() {
                if c == target || masses.is_empty_coin(c) {
                    continue;
                }
                assert_eq!(
                    design_game.rpu(c, &masses),
                    Extended::Finite(r),
                    "stage {i}: coin {c} RPU not evened out"
                );
            }
            // Target coin RPU strictly exceeds R when occupied.
            if !masses.is_empty_coin(target) {
                assert!(design_game.rpu(target, &masses) > Extended::Finite(r));
            }
        }
    }

    #[test]
    fn hi_gives_the_mover_a_unique_better_response() {
        let p = problem();
        let n = p.num_stages();
        for i in 2..=n {
            let s = p.stage_config(i - 1);
            if s == p.stage_config(i) {
                continue;
            }
            let h = hi(&p, i, &s).unwrap();
            let design_game = p.game().with_rewards(h).unwrap();
            let moves = design_game.improving_moves(&s);
            let mover = p.ranked(p.mover_rank(i, &s).unwrap());
            assert_eq!(moves.len(), 1, "stage {i}: expected a unique step");
            assert_eq!(moves[0].miner, mover);
            assert_eq!(moves[0].to, p.final_coin(i));
        }
    }

    #[test]
    fn hi_rejects_configs_outside_t() {
        let p = problem();
        // Move the strongest miner somewhere illegal for T_2.
        let mut bad = p.stage_config(1);
        let p1 = p.ranked(1);
        let other = if p.final_coin(1) == CoinId(0) {
            CoinId(1)
        } else {
            CoinId(0)
        };
        bad.apply_move(p1, other);
        if !p.in_t(2, &bad) {
            assert!(matches!(
                hi(&p, 2, &bad),
                Err(DesignError::InvariantViolated { .. })
            ));
        }
        // And at s = s^i there is no mover.
        let n = p.num_stages();
        assert!(matches!(
            hi(&p, n, &p.stage_config(n)),
            Err(DesignError::InvariantViolated { .. })
        ));
    }

    #[test]
    fn iteration_cost_counts_only_increases() {
        let f = Rewards::from_integers(&[10, 5]).unwrap();
        let h = Rewards::from_ratios(vec![Ratio::from_int(25), Ratio::from_int(3)]).unwrap();
        // +15 on c0; the 2-unit reduction on c1 costs nothing.
        assert_eq!(iteration_cost(&f, &h), Ratio::from_int(15));
        assert_eq!(iteration_cost(&f, &f), Ratio::ZERO);
    }
}
