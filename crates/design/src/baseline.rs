//! A naive single-shot baseline designer, for comparison with
//! Algorithm 2 (see the `ablation` experiment).
//!
//! Strategy: post **one** reward schedule that multiplies the rewards of
//! the coins used by the target configuration `s_f` (leaving the others
//! at their organic values), let better-response learning converge,
//! revert. Intuitively this herds miners toward the right coins — but
//! nothing pins *which* miners end up *where*, so learning may settle in
//! a different equilibrium of the boosted game, and after reverting the
//! system can drift anywhere. Algorithm 2's whole point is that its
//! staged schedules make the learning outcome unique.

use goc_game::{CoinId, Configuration, Ratio, Rewards};
use goc_learning::{run, LearningOptions, Scheduler};

use crate::error::DesignError;
use crate::rewards::iteration_cost;
use crate::stage::DesignProblem;

/// Outcome of a [`naive_design`] attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOutcome {
    /// Where learning settled after the boost + revert.
    pub final_config: Configuration,
    /// Whether that is exactly the requested target.
    pub reached_target: bool,
    /// Better-response steps taken (boost phase + revert phase).
    pub steps: usize,
    /// Cost of the single posted schedule.
    pub cost: f64,
}

/// Runs the single-shot baseline: boost the target support by
/// `boost_factor`, converge, revert to the original rewards, converge
/// again (the revert can destabilize the reached configuration).
///
/// # Errors
///
/// Propagates learning-engine errors; a `boost_factor` of zero or less
/// is reported as [`DesignError::Game`]-level invalid input by the
/// reward construction.
pub fn naive_design(
    problem: &DesignProblem,
    scheduler: &mut dyn Scheduler,
    boost_factor: u32,
    options: LearningOptions,
) -> Result<BaselineOutcome, DesignError> {
    let game = problem.game();
    let target_support: Vec<CoinId> = game
        .system()
        .coin_ids()
        .filter(|&c| problem.target().miners_on(c).next().is_some())
        .collect();
    let boosted: Vec<Ratio> = game
        .system()
        .coin_ids()
        .map(|c| {
            let f = game.reward_of(c);
            if target_support.contains(&c) {
                f.checked_mul_int(i128::from(boost_factor))
                    .expect("bounded inputs")
            } else {
                f
            }
        })
        .collect();
    let designed = Rewards::from_ratios(boosted).expect("non-negative by construction");
    let cost = iteration_cost(game.rewards(), &designed).to_f64();
    let boosted_game = game.with_rewards(designed)?;

    let boost_phase = run(&boosted_game, problem.initial(), scheduler, options)?;
    if !boost_phase.converged {
        return Err(DesignError::LearningDidNotConverge {
            stage: 1,
            iteration: 1,
        });
    }
    // Revert to organic rewards: the reached configuration need not be
    // stable there, so learning continues.
    let revert_phase = run(game, &boost_phase.final_config, scheduler, options)?;
    if !revert_phase.converged {
        return Err(DesignError::LearningDidNotConverge {
            stage: 1,
            iteration: 2,
        });
    }
    let reached_target = &revert_phase.final_config == problem.target();
    Ok(BaselineOutcome {
        final_config: revert_phase.final_config,
        reached_target,
        steps: boost_phase.steps + revert_phase.steps,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_game::{equilibrium, Game};
    use goc_learning::{RoundRobin, SchedulerKind};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn problem() -> DesignProblem {
        let game = Game::build(&[13, 11, 7, 5, 3, 2], &[17, 10]).unwrap();
        let (s0, sf) = equilibrium::two_equilibria(&game).unwrap();
        DesignProblem::new(game, s0, sf).unwrap()
    }

    #[test]
    fn baseline_ends_in_some_equilibrium() {
        let p = problem();
        let outcome =
            naive_design(&p, &mut RoundRobin::new(), 10, LearningOptions::default()).unwrap();
        assert!(p.game().is_stable(&outcome.final_config));
        assert!(outcome.cost > 0.0);
    }

    #[test]
    fn baseline_misses_targets_that_algorithm2_hits() {
        // Across random games and seeds, the naive baseline must fail at
        // least once where Algorithm 2 (tested elsewhere) always succeeds.
        // This is the soundness gap the ablation experiment quantifies.
        let spec = goc_game::gen::GameSpec {
            miners: 6,
            coins: 2,
            powers: goc_game::gen::PowerDist::DistinctUniform { lo: 1, hi: 500 },
            rewards: goc_game::gen::RewardDist::Uniform { lo: 100, hi: 900 },
        };
        let mut rng = SmallRng::seed_from_u64(8);
        let mut failures = 0;
        let mut trials = 0;
        while trials < 10 {
            let game = spec.sample(&mut rng).unwrap();
            let Ok((s0, sf)) = equilibrium::two_equilibria(&game) else {
                continue;
            };
            let p = DesignProblem::new(game, s0, sf).unwrap();
            let mut sched = SchedulerKind::UniformRandom.build(trials);
            let outcome = naive_design(&p, sched.as_mut(), 10, LearningOptions::default()).unwrap();
            failures += usize::from(!outcome.reached_target);
            trials += 1;
        }
        assert!(
            failures > 0,
            "the naive baseline unexpectedly hit the target in all {trials} trials"
        );
    }

    #[test]
    fn baseline_cost_scales_with_boost() {
        let p = problem();
        let small =
            naive_design(&p, &mut RoundRobin::new(), 2, LearningOptions::default()).unwrap();
        let large =
            naive_design(&p, &mut RoundRobin::new(), 20, LearningOptions::default()).unwrap();
        assert!(large.cost > small.cost);
    }
}
