//! Property tests for the wire layer: arbitrary protocol values must
//! round-trip bit-for-bit through serde JSON *and* through the framed
//! [`Connection`] over an in-memory stream, malformed/oversized garbage
//! must never wedge a connection, and [`RejectReason`] names must stay
//! snake_case-stable (they are the contract admission-control tests
//! assert on).

use std::io::{Cursor, Read, Write};

use goc_analysis::ensemble::EnsembleSpec;
use goc_learning::SchedulerKind;
use goc_proto::{
    Connection, ExperimentRequest, ProtoError, RejectReason, ReportPayload, Request,
    RequestEnvelope, Response, ResponseEnvelope, ServerStatus, PROTOCOL_VERSION,
};
use goc_telemetry::{with_label, MetricsSnapshot, Registry};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// An in-memory `Read + Write` double mirroring the connection unit
/// tests: reads from a script, logs writes.
struct Duplex {
    input: Cursor<Vec<u8>>,
    output: Vec<u8>,
}

impl Duplex {
    fn scripted(input: &[u8]) -> Self {
        Duplex {
            input: Cursor::new(input.to_vec()),
            output: Vec::new(),
        }
    }
}

impl Read for Duplex {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for Duplex {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.output.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Experiment names a remote caller might send — registry hits and
/// misses alike; the wire layer must not care.
const NAMES: [&str; 6] = ["fig1", "prop1", "ensemble", "serve", "no_such", "x"];

const SCHEDULERS: [SchedulerKind; 6] = [
    SchedulerKind::RoundRobin,
    SchedulerKind::UniformRandom,
    SchedulerKind::MaxGain,
    SchedulerKind::MinGain,
    SchedulerKind::LargestMinerFirst,
    SchedulerKind::SmallestMinerFirst,
];

const REASONS: [RejectReason; 12] = [
    RejectReason::VersionMismatch,
    RejectReason::SessionLimit,
    RejectReason::InFlightLimit,
    RejectReason::SessionBudgetExhausted,
    RejectReason::ReplicaCap,
    RejectReason::PopulationCap,
    RejectReason::SweepCap,
    RejectReason::UnknownExperiment,
    RejectReason::InvalidRequest,
    RejectReason::Draining,
    RejectReason::MalformedFrame,
    RejectReason::FrameTooLarge,
];

/// `Option<T>` strategy (the vendored proptest has no `option::of`).
fn opt<S: Strategy + 'static>(inner: S) -> BoxedStrategy<Option<S::Value>>
where
    S::Value: Clone + 'static,
{
    prop_oneof![Just(None), inner.prop_map(Some).boxed()].boxed()
}

fn arb_scheduler() -> impl Strategy<Value = SchedulerKind> {
    (0usize..SCHEDULERS.len()).prop_map(|i| SCHEDULERS[i])
}

fn arb_reason() -> impl Strategy<Value = RejectReason> {
    (0usize..REASONS.len()).prop_map(|i| REASONS[i])
}

fn arb_experiment_request() -> impl Strategy<Value = ExperimentRequest> {
    (
        (0usize..NAMES.len()).prop_map(|i| NAMES[i].to_string()),
        opt(0u64..1_000_000),
        opt(prop_oneof![Just(false), Just(true)]),
        opt(arb_scheduler()),
        opt(0u32..=100),
        opt(1usize..4096),
    )
        .prop_map(
            |(experiment, seed, quick, scheduler, turnover_pct, replicas)| ExperimentRequest {
                experiment,
                seed,
                quick,
                scheduler,
                turnover_pct,
                replicas,
            },
        )
}

fn arb_spec() -> impl Strategy<Value = EnsembleSpec> {
    (
        1usize..100_000,
        1usize..256,
        0u64..u64::MAX,
        opt(arb_scheduler()),
        opt(1u32..=100),
    )
        .prop_map(|(miners, replicas, seed, scheduler, churn)| {
            let mut spec = EnsembleSpec::new(miners, replicas, seed);
            if let Some(kind) = scheduler {
                spec = spec.with_scheduler(kind);
            }
            if let Some(pct) = churn {
                spec = spec.with_churn(pct);
            }
            spec
        })
}

/// Arbitrary registry states, built through the real instruments so the
/// snapshots carry genuine histogram bucket shapes (and labeled counter
/// names, the server's rejection spelling).
fn arb_metrics() -> impl Strategy<Value = MetricsSnapshot> {
    (
        0u64..10_000,
        -64i64..64,
        arb_reason(),
        proptest::collection::vec(1u32..1_000_000, 0..8),
    )
        .prop_map(|(served, inflight, reason, observations)| {
            let registry = Registry::new();
            registry.counter("goc_server_served_total").add(served);
            registry
                .counter(&with_label(
                    "goc_server_rejected_total",
                    "reason",
                    reason.name(),
                ))
                .inc();
            registry.gauge("goc_server_inflight").set(inflight);
            let hist = registry.histogram(&with_label("goc_server_request_secs", "kind", "status"));
            for micros in observations {
                hist.observe(f64::from(micros) * 1e-6);
            }
            registry.snapshot()
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Status),
        Just(Request::Metrics),
        Just(Request::Shutdown),
        arb_experiment_request()
            .prop_map(Request::RunExperiment)
            .boxed(),
        arb_spec()
            .prop_map(|spec| Request::RunEnsemble { spec })
            .boxed(),
        proptest::collection::vec(arb_experiment_request(), 0..5)
            .prop_map(|runs| Request::Sweep { runs })
            .boxed(),
    ]
}

fn arb_status() -> impl Strategy<Value = ServerStatus> {
    (
        0usize..64,
        0usize..64,
        0u64..10_000,
        0u64..10_000,
        prop_oneof![Just(false), Just(true)],
        ((1usize..64, 1usize..64), opt(arb_metrics())),
    )
        .prop_map(
            |(
                sessions,
                inflight,
                served,
                rejected,
                draining,
                ((max_sessions, max_inflight), metrics),
            )| {
                ServerStatus {
                    version: PROTOCOL_VERSION,
                    sessions,
                    inflight,
                    served,
                    rejected,
                    draining,
                    max_sessions,
                    max_inflight,
                    metrics,
                }
            },
        )
}

/// Detail strings exercise escaping-relevant characters; heavyweight
/// report payloads (`Experiment`/`Ensemble`/`Sweep`) are covered by the
/// end-to-end `serve` experiment, so the wire proptests stick to the
/// payloads whose values the protocol itself constructs.
fn arb_detail() -> impl Strategy<Value = String> {
    const DETAILS: [&str; 5] = [
        "",
        "limit 4 reached",
        "quoted \"detail\" with \\ backslash",
        "newline\nand\ttab",
        "unicode: ≥ 1 session — refusé",
    ];
    (0usize..DETAILS.len()).prop_map(|i| DETAILS[i].to_string())
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Accepted),
        (0usize..100, 0usize..100)
            .prop_map(|(done, total)| Response::Progress { done, total })
            .boxed(),
        arb_status()
            .prop_map(|s| Response::Report(ReportPayload::Status(s)))
            .boxed(),
        arb_metrics()
            .prop_map(|snapshot| {
                Response::Report(ReportPayload::Metrics {
                    text: snapshot.render_text(),
                    snapshot,
                })
            })
            .boxed(),
        Just(Response::Report(ReportPayload::ShutdownAck)),
        (arb_reason(), arb_detail())
            .prop_map(|(reason, detail)| Response::Rejected { reason, detail })
            .boxed(),
        arb_detail()
            .prop_map(|detail| Response::Error { detail })
            .boxed(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_envelopes_round_trip_through_json(id in 0u64..u64::MAX, request in arb_request()) {
        let envelope = RequestEnvelope::new(id, request);
        let json = serde_json::to_string(&envelope).expect("requests serialize");
        let back: RequestEnvelope = serde_json::from_str(&json).expect("requests parse back");
        prop_assert_eq!(&back, &envelope);
        prop_assert!(back.check_version().is_ok());
    }

    #[test]
    fn response_envelopes_round_trip_through_json(id in 0u64..u64::MAX, response in arb_response()) {
        let envelope = ResponseEnvelope::new(id, response);
        let json = serde_json::to_string(&envelope).expect("responses serialize");
        let back: ResponseEnvelope = serde_json::from_str(&json).expect("responses parse back");
        prop_assert_eq!(back, envelope);
    }

    #[test]
    fn framed_request_streams_round_trip(
        requests in proptest::collection::vec(arb_request(), 1..6),
    ) {
        // Write every envelope through one Connection, then read the
        // byte stream back through another: same frames, same order,
        // then a clean EOF.
        let mut writer = Connection::new(Duplex::scripted(b""));
        let envelopes: Vec<RequestEnvelope> = requests
            .into_iter()
            .enumerate()
            .map(|(i, request)| RequestEnvelope::new(i as u64, request))
            .collect();
        for envelope in &envelopes {
            writer.send_request(envelope).expect("frames fit the default cap");
        }
        let written = writer.into_inner().output;
        prop_assert_eq!(written.last(), Some(&b'\n'));

        let mut reader = Connection::new(Duplex::scripted(&written));
        for envelope in &envelopes {
            prop_assert_eq!(&reader.recv_request().expect("frame parses"), envelope);
        }
        prop_assert!(matches!(reader.recv_request().unwrap_err(), ProtoError::Closed));
    }

    #[test]
    fn framed_response_streams_round_trip(
        responses in proptest::collection::vec(arb_response(), 1..6),
        id in 0u64..1000,
    ) {
        let mut writer = Connection::new(Duplex::scripted(b""));
        let envelopes: Vec<ResponseEnvelope> = responses
            .into_iter()
            .map(|response| ResponseEnvelope::new(id, response))
            .collect();
        for envelope in &envelopes {
            writer.send_response(envelope).expect("frames fit the default cap");
        }
        let written = writer.into_inner().output;

        let mut reader = Connection::new(Duplex::scripted(&written));
        for envelope in &envelopes {
            prop_assert_eq!(&reader.recv_response().expect("frame parses"), envelope);
        }
        prop_assert!(matches!(reader.recv_response().unwrap_err(), ProtoError::Closed));
    }

    #[test]
    fn garbage_lines_never_wedge_the_connection(
        garbage_len in 0usize..200,
        request in arb_request(),
    ) {
        // A line of `!`s is never valid JSON; the reader must name the
        // fault, consume exactly that line, and parse the next frame.
        let envelope = RequestEnvelope::new(7, request);
        let mut bytes = vec![b'!'; garbage_len];
        bytes.push(b'\n');
        bytes.extend_from_slice(&serde_json::to_vec(&envelope).expect("serializes"));
        bytes.push(b'\n');

        let mut conn = Connection::new(Duplex::scripted(&bytes));
        let err = conn.recv_request().unwrap_err();
        prop_assert!(matches!(err, ProtoError::Malformed { .. }), "got {err}");
        prop_assert!(err.is_recoverable());
        prop_assert_eq!(conn.recv_request().expect("stream recovered"), envelope);
    }

    #[test]
    fn oversized_lines_never_wedge_the_connection(
        cap in 64usize..512,
        overshoot in 1usize..4096,
        request in arb_request(),
    ) {
        let envelope = RequestEnvelope::new(11, request);
        let envelope_bytes = serde_json::to_vec(&envelope).expect("serializes");
        prop_assume!(envelope_bytes.len() <= cap);

        let mut bytes = vec![b'z'; cap + overshoot];
        bytes.push(b'\n');
        bytes.extend_from_slice(&envelope_bytes);
        bytes.push(b'\n');

        let mut conn = Connection::with_max_frame(Duplex::scripted(&bytes), cap);
        let err = conn.recv_request().unwrap_err();
        prop_assert_eq!(err.clone(), ProtoError::FrameTooLarge { limit: cap });
        prop_assert!(err.is_recoverable());
        prop_assert_eq!(conn.recv_request().expect("stream recovered"), envelope);
    }

    #[test]
    fn reject_reason_names_stay_snake_case(reason in arb_reason()) {
        let name = reason.name();
        prop_assert!(!name.is_empty());
        prop_assert!(
            name.bytes().all(|b| b.is_ascii_lowercase() || b == b'_'),
            "{name} is not snake_case"
        );
        prop_assert_eq!(reason.to_string(), name);
        // The serde form round-trips too (it is the CamelCase variant
        // name, distinct from the snake_case display name).
        let json = serde_json::to_string(&reason).expect("reasons serialize");
        let back: RejectReason = serde_json::from_str(&json).expect("reasons parse back");
        prop_assert_eq!(back, reason);
    }
}

/// The 12 reason names are pairwise distinct — a collision would make
/// two admission faults indistinguishable on the wire.
#[test]
fn reject_reason_names_are_unique() {
    let mut names: Vec<&str> = REASONS.iter().map(|r| r.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), REASONS.len());
}
