//! [`Client`]: a blocking TCP client for the service protocol.
//!
//! One connection runs one request at a time: send a
//! [`RequestEnvelope`], then read streamed [`ResponseEnvelope`]s until
//! a terminal frame ([`Response::is_terminal`]) arrives. The collected
//! frames come back as a [`Reply`] with accessors for the common
//! questions — was it accepted, what was the report, why was it
//! rejected. The `goc request` verb and the `serve` experiment's load
//! generator both drive this type.

use std::net::{TcpStream, ToSocketAddrs};

use crate::connection::{Connection, ProtoError};
use crate::messages::{
    RejectReason, ReportPayload, Request, RequestEnvelope, Response, ResponseEnvelope,
};

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    conn: Connection<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects with the default frame cap.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Io`] when the TCP connect fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ProtoError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            conn: Connection::new(stream),
            next_id: 1,
        })
    }

    /// Sends one request and collects its response stream.
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`] from the framing layer; a server that
    /// streams a malformed or oversized frame surfaces here rather
    /// than wedging the client.
    pub fn request(&mut self, request: Request) -> Result<Reply, ProtoError> {
        let id = self.next_id;
        self.next_id += 1;
        self.conn.send_request(&RequestEnvelope::new(id, request))?;
        let mut frames = Vec::new();
        loop {
            let envelope = self.conn.recv_response()?;
            let terminal = envelope.response.is_terminal();
            frames.push(envelope);
            if terminal {
                return Ok(Reply { id, frames });
            }
        }
    }

    /// The peer address of the underlying stream, if available.
    pub fn peer_addr(&self) -> Option<std::net::SocketAddr> {
        self.conn.stream().peer_addr().ok()
    }
}

/// The collected response stream of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The correlation id the request carried.
    pub id: u64,
    /// Every frame received, in arrival order; the last is terminal.
    pub frames: Vec<ResponseEnvelope>,
}

impl Reply {
    /// The terminal frame (always present: [`Client::request`] reads
    /// until one arrives).
    pub fn terminal(&self) -> &Response {
        &self
            .frames
            .last()
            .expect("a reply holds at least its terminal frame")
            .response
    }

    /// Whether the server sent an `Accepted` frame.
    pub fn accepted(&self) -> bool {
        self.frames
            .iter()
            .any(|f| matches!(f.response, Response::Accepted))
    }

    /// The completed report payload, if the request succeeded.
    pub fn report(&self) -> Option<&ReportPayload> {
        match self.terminal() {
            Response::Report(payload) => Some(payload),
            _ => None,
        }
    }

    /// The named rejection, if the request was refused.
    pub fn rejection(&self) -> Option<(RejectReason, &str)> {
        match self.terminal() {
            Response::Rejected { reason, detail } => Some((*reason, detail.as_str())),
            _ => None,
        }
    }

    /// The execution-error detail, if the request failed mid-run.
    pub fn error(&self) -> Option<&str> {
        match self.terminal() {
            Response::Error { detail } => Some(detail.as_str()),
            _ => None,
        }
    }

    /// How many `Progress` frames the stream carried.
    pub fn progress_frames(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| matches!(f.response, Response::Progress { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::ServerStatus;

    fn reply(frames: Vec<Response>) -> Reply {
        Reply {
            id: 7,
            frames: frames
                .into_iter()
                .map(|r| ResponseEnvelope::new(7, r))
                .collect(),
        }
    }

    #[test]
    fn reply_accessors_classify_outcomes() {
        let ok = reply(vec![
            Response::Accepted,
            Response::Progress { done: 1, total: 2 },
            Response::Report(ReportPayload::Status(ServerStatus {
                version: 1,
                sessions: 1,
                inflight: 0,
                served: 0,
                rejected: 0,
                draining: false,
                max_sessions: 8,
                max_inflight: 4,
                metrics: None,
            })),
        ]);
        assert!(ok.accepted());
        assert_eq!(ok.progress_frames(), 1);
        assert!(ok.report().is_some());
        assert!(ok.rejection().is_none());
        assert!(ok.error().is_none());

        let refused = reply(vec![Response::Rejected {
            reason: RejectReason::SessionLimit,
            detail: "at 8 sessions".into(),
        }]);
        assert!(!refused.accepted());
        let (reason, detail) = refused.rejection().unwrap();
        assert_eq!(reason, RejectReason::SessionLimit);
        assert_eq!(detail, "at 8 sessions");

        let failed = reply(vec![
            Response::Accepted,
            Response::Error {
                detail: "replica 3 failed".into(),
            },
        ]);
        assert_eq!(failed.error(), Some("replica 3 failed"));
        assert!(failed.report().is_none());
    }
}
