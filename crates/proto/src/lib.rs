//! # goc-proto — the Game-of-Coins service wire protocol
//!
//! ROADMAP open item 1 ("Game-of-Coins as a service") asks for a
//! long-lived server multiplexing many concurrent experiment/ensemble
//! requests onto the workspace's single parallel substrate. This crate
//! is the wire layer both sides speak: **versioned, line-delimited
//! serde-JSON messages over TCP**, built on `std::net` only (no async
//! runtime — one lightweight session thread per client on the server
//! side).
//!
//! * [`messages`] — the request/response vocabulary:
//!   [`Request`]`::{RunExperiment, RunEnsemble, Sweep, Status, Metrics,
//!   Shutdown}` wrapped in a [`RequestEnvelope`] carrying the protocol
//!   version and a client-chosen correlation id, answered by a stream
//!   of [`Response`]`::{Accepted, Progress, Report, Rejected, Error}`
//!   frames in matching [`ResponseEnvelope`]s. Rejections are *named*
//!   ([`RejectReason`]) so admission-control tests can assert on the
//!   exact reason rather than on prose. Frames are stamped with the
//!   oldest version that understands them ([`Request::min_version`]),
//!   and servers accept the whole
//!   [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] window, so v1
//!   and v2 peers interoperate without malformed-frame failures.
//! * [`connection`] — [`Connection`]: the framing type. One frame is
//!   one JSON document terminated by `\n`; reads enforce a frame-size
//!   cap *while reading* (an oversized frame is discarded up to its
//!   newline and reported as [`ProtoError::FrameTooLarge`] with the
//!   stream left usable), and malformed JSON surfaces as
//!   [`ProtoError::Malformed`] — never a panic, never a wedged
//!   connection.
//! * [`client`] — [`Client`]: a blocking TCP client that sends one
//!   request and collects the streamed response frames until a
//!   terminal one arrives. The `goc request` CLI verb and the `serve`
//!   experiment's load generator are thin wrappers over it.
//!
//! ```
//! use goc_proto::{Request, RequestEnvelope, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
//!
//! let envelope = RequestEnvelope::new(7, Request::Status);
//! assert_eq!(envelope.version, MIN_PROTOCOL_VERSION); // v1 servers accept it
//! assert_eq!(RequestEnvelope::new(8, Request::Metrics).version, PROTOCOL_VERSION);
//! let json = serde_json::to_string(&envelope).unwrap();
//! let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
//! assert_eq!(envelope, back);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod connection;
pub mod messages;

pub use client::{Client, Reply};
pub use connection::{Connection, ProtoError, DEFAULT_MAX_FRAME_BYTES};
pub use messages::{
    ExperimentRequest, RejectReason, ReportPayload, Request, RequestEnvelope, Response,
    ResponseEnvelope, ServerStatus, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
