//! The request/response vocabulary of the service protocol.
//!
//! Messages are externally-tagged serde enums (the vendored derive's
//! default, matching real serde): a unit variant renders as a bare
//! string (`"Status"`), a data variant as a single-key object
//! (`{"RunEnsemble": {...}}`). Every frame on the wire is an envelope —
//! [`RequestEnvelope`] or [`ResponseEnvelope`] — carrying the protocol
//! version and the client-chosen correlation id, so a future v2 can
//! reject v1 frames by name instead of by parse failure.

use std::fmt;

use goc_analysis::ensemble::{EnsembleReport, EnsembleSpec};
use goc_analysis::RunReport;
use goc_telemetry::MetricsSnapshot;
use serde::{Deserialize, Serialize};

use crate::connection::ProtoError;

/// The newest protocol version this build speaks. v2 added the
/// telemetry surface: [`Request::Metrics`], the metrics report payload,
/// and the optional [`ServerStatus::metrics`] snapshot.
pub const PROTOCOL_VERSION: u32 = 2;

/// The oldest protocol version still accepted. Version gating is
/// per-request: a v1 frame is served the v1 shape of its reply (a
/// `Status` answer omits the metrics snapshot), never a malformed-frame
/// rejection.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// One experiment run request — the wire twin of the sweep-spec entry
/// (`goc-experiments::SweepRun`): a registry name plus the context
/// knobs a remote caller may set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRequest {
    /// Registry name (`goc list`).
    pub experiment: String,
    /// Seed offset (default 0).
    pub seed: Option<u64>,
    /// Quick mode (default false).
    pub quick: Option<bool>,
    /// Pin scheduler sweeps to one kind by serde variant name
    /// (e.g. `"MinGain"`).
    pub scheduler: Option<goc_learning::SchedulerKind>,
    /// Turnover target in percent for the `churn` experiment.
    pub turnover_pct: Option<u32>,
    /// Flagship replica count for the `ensemble` experiment.
    pub replicas: Option<usize>,
}

impl ExperimentRequest {
    /// A quick run of the named experiment at seed 0.
    pub fn quick(experiment: &str) -> Self {
        ExperimentRequest {
            experiment: experiment.to_string(),
            seed: Some(0),
            quick: Some(true),
            scheduler: None,
            turnover_pct: None,
            replicas: None,
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Run one registered experiment and stream back its report.
    RunExperiment(ExperimentRequest),
    /// Run a Monte-Carlo ensemble ([`EnsembleSpec`]) and stream back
    /// its report; the deterministic aggregate is bit-identical to a
    /// local run of the same spec.
    RunEnsemble {
        /// The declarative ensemble to execute.
        spec: EnsembleSpec,
    },
    /// Fan a list of experiment runs across the server's worker pool;
    /// reports come back in input order, with a `Progress` frame per
    /// completed chunk.
    Sweep {
        /// The runs, in output order.
        runs: Vec<ExperimentRequest>,
    },
    /// Ask for the server's load/limit counters (never queued — always
    /// answered, even while draining).
    Status,
    /// Ask for the server's telemetry registry as Prometheus-style text
    /// exposition (v2; free and always answered, like `Status`).
    Metrics,
    /// Ask the server to drain in-flight work, refuse new sessions,
    /// and exit its accept loop.
    Shutdown,
}

impl Request {
    /// Short display name of the request kind (logs and tables).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::RunExperiment(_) => "run_experiment",
            Request::RunEnsemble { .. } => "run_ensemble",
            Request::Sweep { .. } => "sweep",
            Request::Status => "status",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }

    /// The oldest protocol version that understands this request — what
    /// [`RequestEnvelope::new`] stamps on the frame, so a v2 client
    /// speaks plain v1 to a v1 server for everything but the requests
    /// that did not exist then.
    pub fn min_version(&self) -> u32 {
        match self {
            Request::Metrics => 2,
            _ => MIN_PROTOCOL_VERSION,
        }
    }
}

/// A versioned request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub version: u32,
    /// Client-chosen correlation id, echoed on every response frame.
    pub id: u64,
    /// The request itself.
    pub request: Request,
}

impl RequestEnvelope {
    /// Wraps a request at the oldest protocol version that understands
    /// it ([`Request::min_version`]) — v1 for the classic requests, so
    /// the frame stays acceptable to v1 servers; v2 only for requests
    /// v1 never had.
    pub fn new(id: u64, request: Request) -> Self {
        RequestEnvelope {
            version: request.min_version(),
            id,
            request,
        }
    }

    /// Checks the frame's version against the accepted window
    /// ([`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`]).
    ///
    /// # Errors
    ///
    /// [`ProtoError::Version`] naming both versions on mismatch.
    pub fn check_version(&self) -> Result<(), ProtoError> {
        if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&self.version) {
            Ok(())
        } else {
            Err(ProtoError::Version {
                got: self.version,
                want: PROTOCOL_VERSION,
            })
        }
    }
}

/// Why a request (or session) was refused. Every admission-control
/// path rejects with one of these names — tests assert on
/// [`RejectReason::name`], not on prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The frame's protocol version is not [`PROTOCOL_VERSION`].
    VersionMismatch,
    /// The server is at its concurrent-session cap.
    SessionLimit,
    /// The bounded in-flight queue is full.
    InFlightLimit,
    /// This session spent its per-session request budget.
    SessionBudgetExhausted,
    /// An ensemble request exceeds the server's replica cap.
    ReplicaCap,
    /// A request's population exceeds the server's miner cap.
    PopulationCap,
    /// A sweep names more runs than the server's sweep cap.
    SweepCap,
    /// The named experiment is not in the registry.
    UnknownExperiment,
    /// The request is structurally valid JSON but semantically
    /// degenerate (e.g. an empty sweep, an invalid ensemble spec).
    InvalidRequest,
    /// The server is draining for shutdown and refuses new work.
    Draining,
    /// The frame was not a valid protocol message.
    MalformedFrame,
    /// The frame exceeded the connection's size cap.
    FrameTooLarge,
}

impl RejectReason {
    /// The stable machine-readable name (snake_case).
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::VersionMismatch => "version_mismatch",
            RejectReason::SessionLimit => "session_limit",
            RejectReason::InFlightLimit => "in_flight_limit",
            RejectReason::SessionBudgetExhausted => "session_budget_exhausted",
            RejectReason::ReplicaCap => "replica_cap",
            RejectReason::PopulationCap => "population_cap",
            RejectReason::SweepCap => "sweep_cap",
            RejectReason::UnknownExperiment => "unknown_experiment",
            RejectReason::InvalidRequest => "invalid_request",
            RejectReason::Draining => "draining",
            RejectReason::MalformedFrame => "malformed_frame",
            RejectReason::FrameTooLarge => "frame_too_large",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The server's load/limit counters, answered to [`Request::Status`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStatus {
    /// Protocol version the server speaks.
    pub version: u32,
    /// Live client sessions.
    pub sessions: usize,
    /// Compute requests currently executing or queued.
    pub inflight: usize,
    /// Requests served to completion since boot.
    pub served: u64,
    /// Requests rejected by admission control since boot.
    pub rejected: u64,
    /// Whether the server is draining for shutdown.
    pub draining: bool,
    /// Concurrent-session cap.
    pub max_sessions: usize,
    /// Bounded in-flight queue depth.
    pub max_inflight: usize,
    /// Telemetry snapshot (v2; populated only when the requesting frame
    /// spoke ≥ v2). The vendored serde maps a missing key to `None`, so
    /// a v1 `Status` answer without this field still deserializes here,
    /// and a v1 client ignores the extra key — both directions stay
    /// well-formed.
    pub metrics: Option<MetricsSnapshot>,
}

/// The result payload of a completed request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReportPayload {
    /// A [`Request::RunExperiment`] result.
    Experiment(RunReport),
    /// A [`Request::RunEnsemble`] result (spec + deterministic
    /// aggregate + timing).
    Ensemble(EnsembleReport),
    /// A [`Request::Sweep`] result, in input order.
    Sweep(Vec<RunReport>),
    /// A [`Request::Status`] result.
    Status(ServerStatus),
    /// A [`Request::Metrics`] result (v2): the registry rendered as
    /// Prometheus-style text exposition, plus the structured snapshot
    /// for JSON consumers.
    Metrics {
        /// Prometheus-style text exposition of the server's registry.
        text: String,
        /// The same registry state in structured form.
        snapshot: MetricsSnapshot,
    },
    /// A [`Request::Shutdown`] acknowledgement; the server drains and
    /// exits after sending it.
    ShutdownAck,
}

impl ReportPayload {
    /// Short display name of the payload kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ReportPayload::Experiment(_) => "experiment",
            ReportPayload::Ensemble(_) => "ensemble",
            ReportPayload::Sweep(_) => "sweep",
            ReportPayload::Status(_) => "status",
            ReportPayload::Metrics { .. } => "metrics",
            ReportPayload::ShutdownAck => "shutdown_ack",
        }
    }
}

/// One streamed response frame. A request is answered by zero or one
/// `Accepted`, any number of `Progress`, and exactly one *terminal*
/// frame (`Report`, `Rejected`, or `Error`).
///
/// `Report` dwarfs the control variants, but a `Response` only ever
/// exists transiently — built, framed onto the wire, dropped — so the
/// footprint is per-frame, never per-collection, and boxing would tax
/// every construction and match site for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The request passed admission control and is queued/executing.
    Accepted,
    /// Work progress (sweeps report per completed chunk).
    Progress {
        /// Completed work units.
        done: usize,
        /// Total work units.
        total: usize,
    },
    /// The completed result (terminal).
    Report(ReportPayload),
    /// Refused by admission control, by name (terminal).
    Rejected {
        /// The named reason.
        reason: RejectReason,
        /// Human-readable detail (limits, counts).
        detail: String,
    },
    /// The request was admitted but failed while executing (terminal).
    Error {
        /// Stringified underlying error.
        detail: String,
    },
}

impl Response {
    /// Whether this frame ends the response stream for its request.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Response::Report(_) | Response::Rejected { .. } | Response::Error { .. }
        )
    }
}

/// A versioned response frame, echoing the request's correlation id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub version: u32,
    /// The correlation id of the request this frame answers (0 for
    /// rejections of frames that could not be parsed at all).
    pub id: u64,
    /// The response itself.
    pub response: Response,
}

impl ResponseEnvelope {
    /// Wraps a response at the current protocol version.
    pub fn new(id: u64, response: Response) -> Self {
        ResponseEnvelope {
            version: PROTOCOL_VERSION,
            id,
            response,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_envelopes_round_trip_through_json() {
        let requests = vec![
            Request::Status,
            Request::Shutdown,
            Request::RunExperiment(ExperimentRequest::quick("fig1")),
            Request::RunEnsemble {
                spec: EnsembleSpec::new(64, 4, 7),
            },
            Request::Sweep {
                runs: vec![
                    ExperimentRequest::quick("prop1"),
                    ExperimentRequest::quick("cross"),
                ],
            },
        ];
        for (i, request) in requests.into_iter().enumerate() {
            let envelope = RequestEnvelope::new(i as u64, request);
            let json = serde_json::to_string(&envelope).unwrap();
            let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
            assert_eq!(envelope, back);
            assert!(envelope.check_version().is_ok());
        }
    }

    #[test]
    fn version_mismatch_is_a_named_error() {
        let mut envelope = RequestEnvelope::new(1, Request::Status);
        envelope.version = 99;
        let err = envelope.check_version().unwrap_err();
        assert!(err.to_string().contains("99"));
        assert!(err.to_string().contains('2'));
        envelope.version = 0;
        assert!(envelope.check_version().is_err());
    }

    #[test]
    fn both_protocol_versions_are_accepted_and_stamped_by_need() {
        // Classic requests go out as v1 — acceptable to v1 servers.
        let classic = RequestEnvelope::new(1, Request::Status);
        assert_eq!(classic.version, 1);
        assert!(classic.check_version().is_ok());
        // The telemetry request only exists in v2.
        let metrics = RequestEnvelope::new(2, Request::Metrics);
        assert_eq!(metrics.version, 2);
        assert!(metrics.check_version().is_ok());
        assert_eq!(Request::Metrics.kind(), "metrics");
    }

    #[test]
    fn v1_status_payloads_still_deserialize() {
        // A v1 server's Status answer has no `metrics` key; the field
        // must come back `None`, not a parse failure.
        let v1_json = "{\"version\":1,\"sessions\":1,\"inflight\":0,\"served\":3,\
                       \"rejected\":0,\"draining\":false,\"max_sessions\":8,\
                       \"max_inflight\":4}";
        let status: ServerStatus = serde_json::from_str(v1_json).unwrap();
        assert_eq!(status.metrics, None);
        assert_eq!(status.served, 3);
        // And the v2 form round-trips, metrics included.
        let full = ServerStatus {
            version: PROTOCOL_VERSION,
            sessions: 1,
            inflight: 0,
            served: 3,
            rejected: 1,
            draining: false,
            max_sessions: 8,
            max_inflight: 4,
            metrics: Some(MetricsSnapshot::empty()),
        };
        let json = serde_json::to_string(&full).unwrap();
        let back: ServerStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(full, back);
    }

    #[test]
    fn metrics_payloads_round_trip() {
        let payload = ReportPayload::Metrics {
            text: "# TYPE goc_server_served_total counter\n".to_string(),
            snapshot: MetricsSnapshot::empty(),
        };
        assert_eq!(payload.kind(), "metrics");
        let json = serde_json::to_string(&payload).unwrap();
        let back: ReportPayload = serde_json::from_str(&json).unwrap();
        assert_eq!(payload, back);
    }

    #[test]
    fn reject_reasons_have_stable_names() {
        assert_eq!(RejectReason::SessionLimit.name(), "session_limit");
        assert_eq!(RejectReason::InFlightLimit.to_string(), "in_flight_limit");
        let json = serde_json::to_string(&RejectReason::ReplicaCap).unwrap();
        assert_eq!(json, "\"ReplicaCap\"");
    }

    #[test]
    fn terminal_frames_are_classified() {
        assert!(!Response::Accepted.is_terminal());
        assert!(!Response::Progress { done: 1, total: 2 }.is_terminal());
        assert!(Response::Report(ReportPayload::ShutdownAck).is_terminal());
        assert!(Response::Rejected {
            reason: RejectReason::Draining,
            detail: String::new(),
        }
        .is_terminal());
        assert!(Response::Error {
            detail: "boom".into(),
        }
        .is_terminal());
    }

    #[test]
    fn request_kinds_name_every_variant() {
        assert_eq!(Request::Status.kind(), "status");
        assert_eq!(Request::Shutdown.kind(), "shutdown");
        assert_eq!(
            Request::RunEnsemble {
                spec: EnsembleSpec::new(8, 2, 0)
            }
            .kind(),
            "run_ensemble"
        );
    }
}
