//! [`Connection`]: line-delimited JSON framing with size caps and
//! malformed-frame recovery.
//!
//! One frame is one JSON document terminated by `\n`. The reader
//! enforces [`Connection::max_frame_bytes`] *while* reading — an
//! attacker (or a buggy client) sending an unbounded line costs the
//! server at most one cap's worth of buffer, not its memory: the
//! partial frame is discarded, the stream is scanned forward to the
//! terminating newline, and the read returns
//! [`ProtoError::FrameTooLarge`] with the connection still usable for
//! the next frame. A syntactically broken frame likewise consumes
//! exactly one line and returns [`ProtoError::Malformed`]. Neither
//! path panics.

use std::fmt;
use std::io::{Read, Write};

use serde::{DeserializeOwned, Serialize};

use crate::messages::{RequestEnvelope, ResponseEnvelope};

/// Default per-frame size cap (bytes). Reports for large sweeps are a
/// few hundred KiB of JSON; 8 MiB leaves an order of magnitude of
/// headroom while still bounding a session's buffer.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Read chunk size (bytes).
const READ_CHUNK: usize = 8 * 1024;

/// Errors of the framing layer. Every variant is recoverable at the
/// session level except [`ProtoError::Closed`] and I/O failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtoError {
    /// The underlying stream failed.
    Io(String),
    /// A frame exceeded the size cap; it was discarded and the stream
    /// is positioned at the next frame.
    FrameTooLarge {
        /// The connection's cap, bytes.
        limit: usize,
    },
    /// A frame was not a valid protocol message; it was consumed and
    /// the stream is positioned at the next frame.
    Malformed {
        /// Parser diagnostic.
        detail: String,
    },
    /// The peer closed the stream (EOF).
    Closed,
    /// A read deadline expired with no complete frame (only surfaces
    /// when the caller set a stream timeout; buffered partial-frame
    /// bytes are kept, so the next read resumes where this one
    /// stopped). The server's session loop uses this to notice a
    /// drain while parked on an idle connection.
    TimedOut,
    /// A version field did not match [`crate::PROTOCOL_VERSION`].
    Version {
        /// The version on the wire.
        got: u32,
        /// The version this side speaks.
        want: u32,
    },
}

impl ProtoError {
    /// Whether the connection can keep framing after this error
    /// (`true` for per-frame faults, `false` for stream-level ones).
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            ProtoError::FrameTooLarge { .. }
                | ProtoError::Malformed { .. }
                | ProtoError::Version { .. }
                | ProtoError::TimedOut
        )
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(detail) => write!(f, "connection I/O error: {detail}"),
            ProtoError::FrameTooLarge { limit } => {
                write!(f, "frame exceeds the {limit}-byte cap (discarded)")
            }
            ProtoError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            ProtoError::Closed => write!(f, "connection closed by peer"),
            ProtoError::TimedOut => write!(f, "read timed out before a complete frame"),
            ProtoError::Version { got, want } => {
                write!(f, "protocol version mismatch: got v{got}, want v{want}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            // Both kinds mean "the read deadline expired" depending on
            // platform (WouldBlock on Unix, TimedOut on Windows).
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ProtoError::TimedOut,
            _ => ProtoError::Io(e.to_string()),
        }
    }
}

/// A framed, capped, line-delimited JSON connection over any
/// `Read + Write` stream (TCP in production, in-memory doubles in
/// tests).
#[derive(Debug)]
pub struct Connection<S> {
    stream: S,
    /// Bytes read from the stream but not yet consumed as frames.
    buf: Vec<u8>,
    max_frame_bytes: usize,
}

impl<S> Connection<S> {
    /// Wraps a stream with the [`DEFAULT_MAX_FRAME_BYTES`] cap.
    pub fn new(stream: S) -> Self {
        Connection::with_max_frame(stream, DEFAULT_MAX_FRAME_BYTES)
    }

    /// Wraps a stream with an explicit frame-size cap (≥ 1).
    pub fn with_max_frame(stream: S, max_frame_bytes: usize) -> Self {
        Connection {
            stream,
            buf: Vec::new(),
            max_frame_bytes: max_frame_bytes.max(1),
        }
    }

    /// The per-frame size cap, bytes.
    pub fn max_frame_bytes(&self) -> usize {
        self.max_frame_bytes
    }

    /// Borrows the underlying stream (e.g. to set TCP options).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Consumes the connection, yielding the underlying stream.
    pub fn into_inner(self) -> S {
        self.stream
    }
}

impl<S: Read> Connection<S> {
    /// Reads one raw frame (the bytes before the next `\n`, with a
    /// trailing `\r` stripped).
    ///
    /// # Errors
    ///
    /// * [`ProtoError::FrameTooLarge`] — the frame ran past the cap;
    ///   it was discarded through its newline and the stream is
    ///   usable.
    /// * [`ProtoError::Closed`] — EOF (including EOF mid-frame).
    /// * [`ProtoError::Io`] — the underlying read failed.
    fn read_frame(&mut self) -> Result<Vec<u8>, ProtoError> {
        let mut overflowed = false;
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                // Consume through the newline; keep the payload only if
                // the frame stayed within the cap the whole way.
                let mut frame: Vec<u8> = self.buf.drain(..=pos).collect();
                frame.pop();
                if frame.last() == Some(&b'\r') {
                    frame.pop();
                }
                if overflowed || frame.len() > self.max_frame_bytes {
                    return Err(ProtoError::FrameTooLarge {
                        limit: self.max_frame_bytes,
                    });
                }
                return Ok(frame);
            }
            if self.buf.len() > self.max_frame_bytes {
                // Bound the buffer: drop the partial frame now and keep
                // scanning for its terminating newline.
                self.buf.clear();
                overflowed = true;
            }
            let mut chunk = [0u8; READ_CHUNK];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ProtoError::Closed);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Reads and parses one frame as `T`.
    ///
    /// # Errors
    ///
    /// As the underlying frame read ([`ProtoError::Io`], [`ProtoError::Closed`],
    /// [`ProtoError::TimedOut`], [`ProtoError::FrameTooLarge`]), plus
    /// [`ProtoError::Malformed`] when
    /// the line is not valid `T` JSON (the line is consumed; the
    /// stream is usable).
    pub fn recv<T: DeserializeOwned>(&mut self) -> Result<T, ProtoError> {
        let frame = self.read_frame()?;
        serde_json::from_slice(&frame).map_err(|e| ProtoError::Malformed {
            detail: e.to_string(),
        })
    }

    /// Reads one request frame (server side).
    ///
    /// # Errors
    ///
    /// As [`Self::recv`].
    pub fn recv_request(&mut self) -> Result<RequestEnvelope, ProtoError> {
        self.recv()
    }

    /// Reads one response frame (client side).
    ///
    /// # Errors
    ///
    /// As [`Self::recv`].
    pub fn recv_response(&mut self) -> Result<ResponseEnvelope, ProtoError> {
        self.recv()
    }
}

impl<S: Write> Connection<S> {
    /// Writes one value as a single `\n`-terminated JSON frame and
    /// flushes.
    ///
    /// # Errors
    ///
    /// [`ProtoError::FrameTooLarge`] when the serialized frame exceeds
    /// the cap (nothing is written), or [`ProtoError::Io`] when the
    /// underlying write fails.
    pub fn send<T: Serialize>(&mut self, value: &T) -> Result<(), ProtoError> {
        let mut bytes = serde_json::to_vec(value).map_err(|e| ProtoError::Malformed {
            detail: e.to_string(),
        })?;
        if bytes.len() > self.max_frame_bytes {
            return Err(ProtoError::FrameTooLarge {
                limit: self.max_frame_bytes,
            });
        }
        bytes.push(b'\n');
        self.stream.write_all(&bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Writes one request frame (client side).
    ///
    /// # Errors
    ///
    /// As [`Self::send`].
    pub fn send_request(&mut self, envelope: &RequestEnvelope) -> Result<(), ProtoError> {
        self.send(envelope)
    }

    /// Writes one response frame (server side).
    ///
    /// # Errors
    ///
    /// As [`Self::send`].
    pub fn send_response(&mut self, envelope: &ResponseEnvelope) -> Result<(), ProtoError> {
        self.send(envelope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Request, Response};
    use std::io::Cursor;

    /// An in-memory `Read + Write` double: reads from a script, writes
    /// to a log.
    struct Duplex {
        input: Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Duplex {
        fn scripted(input: &[u8]) -> Self {
            Duplex {
                input: Cursor::new(input.to_vec()),
                output: Vec::new(),
            }
        }
    }

    impl Read for Duplex {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Duplex {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frames_round_trip() {
        let request = RequestEnvelope::new(42, Request::Status);
        let mut writer = Connection::new(Duplex::scripted(b""));
        writer.send_request(&request).unwrap();
        let written = writer.into_inner().output;
        assert_eq!(written.last(), Some(&b'\n'));

        let mut reader = Connection::new(Duplex::scripted(&written));
        let back = reader.recv_request().unwrap();
        assert_eq!(back, request);
        assert!(matches!(
            reader.recv_request().unwrap_err(),
            ProtoError::Closed
        ));
    }

    #[test]
    fn multiple_frames_in_one_read_are_split() {
        let a = RequestEnvelope::new(1, Request::Status);
        let b = RequestEnvelope::new(2, Request::Shutdown);
        let mut bytes = serde_json::to_vec(&a).unwrap();
        bytes.push(b'\n');
        bytes.extend_from_slice(&serde_json::to_vec(&b).unwrap());
        bytes.push(b'\n');
        let mut conn = Connection::new(Duplex::scripted(&bytes));
        assert_eq!(conn.recv_request().unwrap(), a);
        assert_eq!(conn.recv_request().unwrap(), b);
    }

    #[test]
    fn malformed_frames_are_consumed_and_named() {
        let good = RequestEnvelope::new(3, Request::Status);
        let mut bytes = b"{this is not json\n".to_vec();
        bytes.extend_from_slice(&serde_json::to_vec(&good).unwrap());
        bytes.push(b'\n');
        let mut conn = Connection::new(Duplex::scripted(&bytes));
        let err = conn.recv_request().unwrap_err();
        assert!(matches!(err, ProtoError::Malformed { .. }), "{err}");
        assert!(err.is_recoverable());
        // The stream recovered: the next frame parses.
        assert_eq!(conn.recv_request().unwrap(), good);
    }

    #[test]
    fn oversized_frames_are_discarded_and_the_stream_recovers() {
        let good = RequestEnvelope::new(4, Request::Status);
        let mut bytes = vec![b'x'; 4096];
        bytes.push(b'\n');
        bytes.extend_from_slice(&serde_json::to_vec(&good).unwrap());
        bytes.push(b'\n');
        let mut conn = Connection::with_max_frame(Duplex::scripted(&bytes), 256);
        let err = conn.recv_request().unwrap_err();
        assert_eq!(err, ProtoError::FrameTooLarge { limit: 256 });
        assert!(err.is_recoverable());
        assert_eq!(conn.recv_request().unwrap(), good);
    }

    #[test]
    fn oversized_sends_are_refused_before_writing() {
        let mut conn = Connection::with_max_frame(Duplex::scripted(b""), 8);
        let envelope = RequestEnvelope::new(5, Request::Status);
        let err = conn.send_request(&envelope).unwrap_err();
        assert!(matches!(err, ProtoError::FrameTooLarge { .. }));
        assert!(conn.into_inner().output.is_empty(), "nothing was written");
    }

    #[test]
    fn eof_mid_frame_is_closed() {
        let mut conn = Connection::new(Duplex::scripted(b"{\"version\":1"));
        assert!(matches!(
            conn.recv_request().unwrap_err(),
            ProtoError::Closed
        ));
    }

    #[test]
    fn responses_frame_like_requests() {
        let envelope = ResponseEnvelope::new(9, Response::Accepted);
        let mut writer = Connection::new(Duplex::scripted(b""));
        writer.send_response(&envelope).unwrap();
        let written = writer.into_inner().output;
        let mut reader = Connection::new(Duplex::scripted(&written));
        assert_eq!(reader.recv_response().unwrap(), envelope);
    }

    #[test]
    fn crlf_frames_parse() {
        let envelope = RequestEnvelope::new(6, Request::Status);
        let mut bytes = serde_json::to_vec(&envelope).unwrap();
        bytes.extend_from_slice(b"\r\n");
        let mut conn = Connection::new(Duplex::scripted(&bytes));
        assert_eq!(conn.recv_request().unwrap(), envelope);
    }
}
