//! # goc-bench — Criterion performance benchmarks
//!
//! No library code: the benchmark targets live in `benches/` —
//! `potential`, `dynamics`, `design`, `chain`, and `sim`. Run with
//! `cargo bench -p goc-bench` (or `cargo bench --workspace`).
