//! # goc-bench — Criterion performance benchmarks
//!
//! No library code: the benchmark targets live in `benches/` —
//! `potential`, `dynamics`, `design`, `chain`, `sim`, and `spec` (the
//! scenario-API hot paths: spec builds, JSON round trips, registry
//! dispatch). Run with `cargo bench -p goc-bench` (or
//! `cargo bench --workspace`).
