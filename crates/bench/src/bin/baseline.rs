//! `baseline` — records and checks the repo's perf baseline.
//!
//! **Record mode** (default) measures the headline throughput numbers of
//! the large-population engine and writes them as machine-readable JSON
//! (`BENCH_10.json`):
//!
//! * **dynamics steps/sec** — `goc_learning::run_incremental` converging
//!   a 100k-miner, 8-hashrate-class, 3-coin game from the all-on-c0
//!   start (best of three runs);
//! * **sim events/sec** — a 100k-rig population aggregated into 8
//!   behaviour cohorts over a two-chain market for 1000 simulated days
//!   (long enough that the timed window is ~100 ms, not timer noise);
//! * **per-scheduler steps/sec** — every `SchedulerKind` converging the
//!   same 100k-miner game through the incremental scheduler protocol
//!   (`run` over a `MoveSource`; best of two runs);
//! * **churn (steps+deltas)/sec** — `run_incremental_with_churn`
//!   absorbing the shared churn fixture (10% population turnover, one
//!   coin launch, one retirement) on the 100k-miner universe (best of
//!   two runs);
//! * **ensemble replicas/sec** — `goc_analysis::ensemble::run` driving
//!   an 8-replica Monte-Carlo ensemble over the 100k-miner fixture on
//!   the work-stealing executor at a **fixed 2 worker threads** (so the
//!   number is comparable between the recording box and CI runners
//!   regardless of their core counts; best of two runs);
//! * **server requests/sec** — a live `goc-server` on an ephemeral
//!   loopback port answering a stream of `RunEnsemble` requests from
//!   one blocking client (wire framing + admission control + dispatch
//!   onto the shared executor, end to end; best of two runs);
//! * **snapshot encode/decode/fork ops/sec** — the binary snapshot
//!   codec over the 100k-miner tracker: `Snapshot::of` + `encode`,
//!   `TryFrom<&[u8]>` (full frame + semantic revalidation), and
//!   `fork_at` (the population fork the ensemble engine performs per
//!   replica; best of two batches each);
//! * **telemetry steps/sec** — the dynamics workload again, but run
//!   through the `Dynamics` builder with a live `DynamicsTelemetry` on
//!   an enabled registry, gating the cost of per-step/per-delta
//!   relaxed-atomic instrumentation;
//! * **tracing steps/sec** — the dynamics workload once more, driven
//!   through `DynamicsTracing` on an *enabled* flight recorder: every
//!   step writes a timestamped record into the per-thread ring
//!   (including the overwrite path once the ring wraps), gating the
//!   recorder's cheap-when-on contract the same way `telemetry` gates
//!   the metrics layer.
//!
//! **Check mode** (`--check FILE [--tolerance T]`) is the CI perf gate:
//! it re-measures the *same* workloads at the miner counts recorded in
//! `FILE` and fails (exit 1) if any measured throughput drops below
//! `T × recorded` (default `T = 0.5`, i.e. a >50% regression). The
//! failure message names **which** metrics regressed, and a recorded
//! miner count the gate machine cannot allocate (or a degenerate zero)
//! is a named error up front — never a panic or a silent pass. A
//! baseline file that **lacks a layer this binary records** (e.g.
//! gating a pre-5 file without the `ensemble` section) produces a loud
//! warning naming the uncovered layer, so a new layer cannot dodge the
//! gate by pointing it at an old recording.
//!
//! ```text
//! cargo run --release -p goc-bench --bin baseline            # full, writes BENCH_10.json
//! cargo run --release -p goc-bench --bin baseline -- --quick # CI smoke (10k miners)
//! cargo run --release -p goc-bench --bin baseline -- --out custom.json
//! cargo run --release -p goc-bench --bin baseline -- --check BENCH_10.json --tolerance 0.5
//! ```
//!
//! Re-record after a perf-relevant change by re-running the full mode on
//! quiet hardware and committing the refreshed `BENCH_10.json`. Keep the
//! tolerance loose: the gate is meant to catch order-of-magnitude
//! regressions (an accidentally quadratic path), not CI-runner noise.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use goc_analysis::ensemble::{run as run_ensemble, EnsembleSpec};
use goc_game::{CoinId, Configuration, MassTracker, Snapshot};
use goc_learning::{
    run, run_incremental, run_incremental_with_churn, ChurnPlan, Dynamics, DynamicsTelemetry,
    DynamicsTracing, LearningOptions, SchedulerKind,
};
use goc_proto::{Client, ReportPayload, Request, Response};
use goc_server::{EnsembleOnlyBackend, Server, ServerConfig};
use goc_sim::fixtures::{scale_churn_scenario, scale_class_game, scale_cohort_scenario};
use goc_telemetry::trace::{TraceRecorder, DEFAULT_LANE_CAPACITY};
use goc_telemetry::Registry;
use serde::{Deserialize, Serialize};

/// Largest recorded miner count the gate will re-measure. Each miner
/// costs a few hundred bytes across the tracker's index structures, so
/// populations beyond this bound exceed what a CI-class machine can
/// allocate — the gate refuses with a named error instead of OOMing.
const MAX_GATE_MINERS: usize = 2_000_000;

/// Worker threads of the recorded ensemble workload. Fixed (not
/// "available cores") so the recorded replicas/sec is comparable
/// between the recording machine and the CI gate runner.
const ENSEMBLE_THREADS: usize = 2;

/// Replicas of the recorded ensemble workload.
const ENSEMBLE_REPLICAS: usize = 8;

/// Largest recorded ensemble replica count the gate will re-measure —
/// the same defense as [`MAX_GATE_MINERS`]: a corrupt or hand-edited
/// recording must become a named error, not an hours-long re-measure.
const MAX_GATE_REPLICAS: u64 = 1024;

/// Replicas each benchmarked server request asks for — small, so the
/// recorded number is dominated by the wire/admission/dispatch path,
/// not by replica compute.
const SERVER_REPLICAS: usize = 2;

/// Requests of the recorded server workload (full mode).
const SERVER_REQUESTS: usize = 32;

/// Population of the recorded server workload (full mode). Deliberately
/// modest: the ensemble layer already gates 100k-miner compute; this
/// layer gates the service round-trip.
const SERVER_MINERS: usize = 1000;

/// Largest recorded server request count the gate will re-measure.
const MAX_GATE_REQUESTS: u64 = 1024;

/// One measured layer of the baseline.
#[derive(Debug, Serialize, Deserialize)]
struct LayerBaseline {
    /// Population head-count.
    miners: usize,
    /// Work units completed (dynamics steps / sim events).
    work: u64,
    /// Best-of-N wall time in seconds.
    wall_secs: f64,
    /// `work / wall_secs`.
    per_sec: f64,
}

/// Per-scheduler throughput through the incremental protocol.
#[derive(Debug, Serialize, Deserialize)]
struct SchedulerBaseline {
    /// `SchedulerKind` display name.
    scheduler: String,
    /// The measured convergence, as a [`LayerBaseline`].
    layer: LayerBaseline,
}

/// Snapshot-codec throughput: one [`LayerBaseline`] per operation
/// (`work` = codec operations, so `per_sec` is ops/sec).
#[derive(Debug, Serialize, Deserialize)]
struct SnapshotBaseline {
    /// `Snapshot::of` + `Snapshot::encode` over the full tracker.
    encode: LayerBaseline,
    /// `Snapshot::try_from(&[u8])` — frame checks plus the full
    /// semantic revalidation (masses, groups, cursor).
    decode: LayerBaseline,
    /// `Snapshot::fork_at` — the per-replica population fork the
    /// ensemble engine performs instead of rebuilding from scratch.
    fork: LayerBaseline,
}

/// The `BENCH_10.json` schema (a superset of `BENCH_9.json`: the
/// `tracing` section is new and optional on read, so `--check` also
/// accepts the older files — with a loud warning for every layer the
/// file is missing).
#[derive(Debug, Serialize, Deserialize)]
struct Baseline {
    /// Baseline generation.
    baseline: u32,
    /// Whether the quick (CI smoke) population was used.
    quick: bool,
    /// How to regenerate this file.
    recorded_by: String,
    /// Incremental best-response dynamics (steps/sec).
    dynamics: LayerBaseline,
    /// Cohort discrete-event simulation (events/sec).
    sim: LayerBaseline,
    /// Incremental scheduler protocol, one entry per `SchedulerKind`
    /// (steps/sec; absent in pre-3 baselines).
    schedulers: Option<Vec<SchedulerBaseline>>,
    /// Churny incremental dynamics: 10% turnover + coin lifecycle
    /// ((steps+deltas)/sec; absent in pre-4 baselines).
    churn: Option<LayerBaseline>,
    /// Monte-Carlo ensemble throughput (replicas/sec at
    /// [`ENSEMBLE_THREADS`] workers; `work` = replicas; absent in
    /// pre-5 baselines).
    ensemble: Option<LayerBaseline>,
    /// Service-layer round-trip throughput over loopback TCP
    /// (requests/sec; `work` = requests; absent in pre-6 baselines).
    server: Option<LayerBaseline>,
    /// Binary snapshot codec throughput (encode/decode/fork ops/sec;
    /// absent in pre-7 baselines).
    snapshot: Option<SnapshotBaseline>,
    /// Instrumented dynamics: the `dynamics` workload run with a live
    /// `DynamicsTelemetry` on an enabled registry, so every step and
    /// churn delta ticks relaxed atomics (steps/sec; absent in pre-9
    /// baselines). Gating it alongside `dynamics` keeps telemetry
    /// overhead inside the same regression envelope as the bare engine.
    telemetry: Option<LayerBaseline>,
    /// Flight-recorded dynamics: the `dynamics` workload run with a
    /// live `DynamicsTracing` on an *enabled* recorder, so every step
    /// writes a timestamped ring record — including the overwrite path
    /// once the ring wraps (steps/sec; absent in pre-10 baselines).
    tracing: Option<LayerBaseline>,
}

fn dynamics_baseline(n: usize, repeats: usize) -> LayerBaseline {
    // The shared scale fixture (`goc_sim::fixtures`): the recorder must
    // measure exactly the workload the `scale`/`schedulers` experiments
    // and the large-population benches run.
    let game = scale_class_game(n);
    let start = Configuration::uniform(CoinId(0), game.system()).expect("valid start");
    let mut best = f64::INFINITY;
    let mut steps = 0usize;
    for _ in 0..repeats {
        let clock = Instant::now();
        let outcome =
            run_incremental(&game, &start, LearningOptions::default()).expect("converges");
        assert!(outcome.converged, "dynamics did not converge");
        best = best.min(clock.elapsed().as_secs_f64());
        steps = outcome.steps;
    }
    LayerBaseline {
        miners: n,
        work: steps as u64,
        wall_secs: best,
        per_sec: steps as f64 / best.max(1e-9),
    }
}

fn sim_baseline(n: usize, repeats: usize) -> LayerBaseline {
    // 1000 simulated days (vs BENCH_2's 10): cohorts compress a 100k-rig
    // population into ~3.5k events per 10 days, and a sub-millisecond
    // timed window would gate on scheduler noise, not throughput. The
    // longer horizon keeps the measured region around 100 ms.
    let spec = scale_cohort_scenario(n, 1000.0, 9);
    let mut best = f64::INFINITY;
    let mut events = 0u64;
    for _ in 0..repeats {
        let mut sim = spec.build().expect("cohort spec builds");
        let clock = Instant::now();
        let metrics = sim.run();
        best = best.min(clock.elapsed().as_secs_f64());
        events = metrics.total_events;
    }
    LayerBaseline {
        miners: n,
        work: events,
        wall_secs: best,
        per_sec: events as f64 / best.max(1e-9),
    }
}

fn scheduler_baseline(kind: SchedulerKind, n: usize, repeats: usize) -> SchedulerBaseline {
    let game = scale_class_game(n);
    let start = Configuration::uniform(CoinId(0), game.system()).expect("valid start");
    let mut best = f64::INFINITY;
    let mut steps = 0usize;
    for rep in 0..repeats {
        let mut sched = kind.build(5);
        let clock = Instant::now();
        let outcome = run(&game, &start, sched.as_mut(), LearningOptions::default())
            .expect("bundled schedulers are legal");
        assert!(outcome.converged, "{kind} did not converge at rep {rep}");
        best = best.min(clock.elapsed().as_secs_f64());
        steps = outcome.steps;
    }
    SchedulerBaseline {
        scheduler: kind.name().to_string(),
        layer: LayerBaseline {
            miners: n,
            work: steps as u64,
            wall_secs: best,
            per_sec: steps as f64 / best.max(1e-9),
        },
    }
}

/// The shared churn workload: the fixture scenario lowered to a game
/// universe plus a step-keyed delta plan (exactly what the `churn`
/// experiment and the churn benches drive; the stride policy lives on
/// `ChurnUniverse::step_deltas`).
fn churn_workload(n: usize) -> (goc_sim::ChurnUniverse, ChurnPlan) {
    let spec = scale_churn_scenario(n, 30.0, 9, 10);
    let universe = goc_sim::churn_universe(&spec, 1e-4).expect("fixture lowers to a universe");
    let plan = ChurnPlan::with_events(
        Some(universe.miner_active.clone()),
        Some(universe.coin_active.clone()),
        universe.step_deltas(n),
    );
    (universe, plan)
}

fn churn_baseline(n: usize, repeats: usize) -> LayerBaseline {
    let (universe, plan) = churn_workload(n);
    let mut best = f64::INFINITY;
    let mut work = 0usize;
    for _ in 0..repeats {
        let clock = Instant::now();
        let outcome = run_incremental_with_churn(
            &universe.game,
            &universe.start,
            LearningOptions::default(),
            &plan,
        )
        .expect("churn dynamics converge");
        assert!(outcome.converged, "churn dynamics did not converge");
        best = best.min(clock.elapsed().as_secs_f64());
        work = outcome.steps + outcome.churn_applied;
    }
    LayerBaseline {
        miners: n,
        work: work as u64,
        wall_secs: best,
        per_sec: work as f64 / best.max(1e-9),
    }
}

fn ensemble_baseline(n: usize, replicas: usize, repeats: usize) -> LayerBaseline {
    // The ensemble engine's own workload: `replicas` deterministic
    // Monte-Carlo replicas of `run_incremental` over the scale fixture,
    // random start each, on the work-stealing executor at a fixed
    // thread count (`work` = replicas, so `per_sec` is replicas/sec).
    let spec = EnsembleSpec::new(n, replicas, 9);
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let report = run_ensemble(&spec, ENSEMBLE_THREADS).expect("fixture ensembles run");
        assert_eq!(
            report.aggregate.converged, replicas,
            "ensemble replicas did not all converge"
        );
        best = best.min(report.timing.total_wall_secs);
    }
    LayerBaseline {
        miners: n,
        work: replicas as u64,
        wall_secs: best,
        per_sec: replicas as f64 / best.max(1e-9),
    }
}

/// Codec operations per timed batch — enough that the timed window is
/// milliseconds, not timer noise, at 100k miners.
const SNAPSHOT_OPS: usize = 8;

fn snapshot_baseline(n: usize, repeats: usize) -> SnapshotBaseline {
    let game = scale_class_game(n);
    let start = Configuration::uniform(CoinId(0), game.system()).expect("valid start");
    let tracker = MassTracker::new(&game, &start).expect("valid tracker");
    let bytes = Snapshot::of(&tracker).encode();

    let mut encode_best = f64::INFINITY;
    for _ in 0..repeats {
        let clock = Instant::now();
        for _ in 0..SNAPSHOT_OPS {
            let encoded = Snapshot::of(&tracker).encode();
            assert_eq!(encoded.len(), bytes.len(), "encoding is deterministic");
        }
        encode_best = encode_best.min(clock.elapsed().as_secs_f64());
    }

    let mut decode_best = f64::INFINITY;
    let mut decoded: Option<Snapshot> = None;
    for _ in 0..repeats {
        let clock = Instant::now();
        for _ in 0..SNAPSHOT_OPS {
            decoded = Some(Snapshot::try_from(bytes.as_slice()).expect("own encoding decodes"));
        }
        decode_best = decode_best.min(clock.elapsed().as_secs_f64());
    }
    let decoded = decoded.expect("at least one decode ran");

    // The population fork at a start *different* from the snapshot's
    // own (the ensemble forks at each replica's random start, which is
    // never the recorded one): full bulk group rebuild, no shortcuts.
    let alt = Configuration::uniform(CoinId(1), game.system()).expect("fixture has ≥ 2 coins");
    let mut fork_best = f64::INFINITY;
    for _ in 0..repeats {
        let clock = Instant::now();
        for _ in 0..SNAPSHOT_OPS {
            let fork = decoded.fork_at(&alt).expect("valid start");
            assert_eq!(fork.active_miner_count(), n, "forks carry the population");
        }
        fork_best = fork_best.min(clock.elapsed().as_secs_f64());
    }

    let layer = |wall_secs: f64| LayerBaseline {
        miners: n,
        work: SNAPSHOT_OPS as u64,
        wall_secs,
        per_sec: SNAPSHOT_OPS as f64 / wall_secs.max(1e-9),
    };
    SnapshotBaseline {
        encode: layer(encode_best),
        decode: layer(decode_best),
        fork: layer(fork_best),
    }
}

fn telemetry_baseline(n: usize, repeats: usize) -> LayerBaseline {
    // The telemetry hot-path contract, measured: the exact `dynamics`
    // workload, but driven through the `Dynamics` builder with a live
    // `DynamicsTelemetry` attached to an *enabled* registry — every
    // step and delta is a relaxed-atomic increment. The recorded
    // steps/sec is gated like any other layer, so instrumentation
    // cannot silently grow a lock or an allocation per event.
    let game = scale_class_game(n);
    let start = Configuration::uniform(CoinId(0), game.system()).expect("valid start");
    let registry = Registry::new();
    let mut best = f64::INFINITY;
    let mut steps = 0usize;
    for _ in 0..repeats {
        let mut telemetry = DynamicsTelemetry::register(&registry);
        let clock = Instant::now();
        let outcome = Dynamics::new(&game)
            .start(&start)
            .instrument(&mut telemetry)
            .run()
            .expect("instrumented dynamics converge");
        let wall = clock.elapsed().as_secs_f64();
        assert!(outcome.converged, "instrumented dynamics did not converge");
        telemetry.observe_run(&outcome, wall);
        best = best.min(wall);
        steps = outcome.steps;
    }
    // Deterministic dynamics: every repeat walks the same steps, and
    // the registry (shared across repeats by metric name) must have
    // counted all of them.
    assert_eq!(
        registry.snapshot().counter("goc_dynamics_steps_total"),
        Some((steps * repeats) as u64),
        "telemetry missed steps"
    );
    LayerBaseline {
        miners: n,
        work: steps as u64,
        wall_secs: best,
        per_sec: steps as f64 / best.max(1e-9),
    }
}

fn tracing_baseline(n: usize, repeats: usize) -> LayerBaseline {
    // The flight recorder's cheap-when-on contract, measured: the exact
    // `dynamics` workload driven through `DynamicsTracing` on an
    // *enabled* recorder at the default lane capacity — every step
    // writes a timestamped record into the per-thread ring, and once
    // the ring wraps every further write also bumps the dropped
    // counter, so the recorded steps/sec covers the overwrite path the
    // steady state lives in.
    let game = scale_class_game(n);
    let start = Configuration::uniform(CoinId(0), game.system()).expect("valid start");
    let recorder = TraceRecorder::new(DEFAULT_LANE_CAPACITY);
    let mut best = f64::INFINITY;
    let mut steps = 0usize;
    for _ in 0..repeats {
        let mut tracing = DynamicsTracing::new(&recorder);
        let clock = Instant::now();
        let outcome = Dynamics::new(&game)
            .start(&start)
            .instrument(&mut tracing)
            .run()
            .expect("traced dynamics converge");
        let wall = clock.elapsed().as_secs_f64();
        assert!(outcome.converged, "traced dynamics did not converge");
        tracing.observe_run(&outcome);
        best = best.min(wall);
        steps = outcome.steps;
    }
    // Ring accounting is exact even under overwrite: every step record
    // plus the one per-run reprobe instant was either retained or
    // counted as dropped.
    let snapshot = recorder.snapshot();
    assert_eq!(
        snapshot.events.len() as u64 + snapshot.dropped,
        ((steps + 1) * repeats) as u64,
        "the recorder lost records"
    );
    LayerBaseline {
        miners: n,
        work: steps as u64,
        wall_secs: best,
        per_sec: steps as f64 / best.max(1e-9),
    }
}

fn server_baseline(n: usize, requests: usize, repeats: usize) -> LayerBaseline {
    // End to end over real loopback TCP: framing, admission control,
    // and the dispatch of each `RunEnsemble` onto the shared executor.
    // One blocking client, so the number is a round-trip latency
    // reciprocal, not a concurrency measure (the `serve` experiment
    // covers concurrency; this gates the per-request path).
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let config = ServerConfig {
            threads: ENSEMBLE_THREADS,
            session_budget: requests as u64 + 1,
            ..ServerConfig::default()
        };
        let server =
            Server::bind(config, Box::new(EnsembleOnlyBackend)).expect("server binds on loopback");
        let addr = server.local_addr().expect("bound servers have an address");
        let handle = std::thread::spawn(move || server.run().expect("server drains cleanly"));
        let mut client = Client::connect(addr).expect("client connects");
        let clock = Instant::now();
        for i in 0..requests {
            let spec = EnsembleSpec::new(n, SERVER_REPLICAS, 9 + i as u64);
            let reply = client
                .request(Request::RunEnsemble { spec })
                .expect("request round-trips");
            assert!(
                matches!(
                    reply.terminal(),
                    Response::Report(ReportPayload::Ensemble(_))
                ),
                "request was not served: {:?}",
                reply.terminal()
            );
        }
        best = best.min(clock.elapsed().as_secs_f64());
        drop(client);
        let mut closer = Client::connect(addr).expect("shutdown client connects");
        let reply = closer
            .request(Request::Shutdown)
            .expect("shutdown round-trips");
        assert!(
            matches!(
                reply.terminal(),
                Response::Report(ReportPayload::ShutdownAck)
            ),
            "server did not acknowledge shutdown"
        );
        handle.join().expect("server thread exits");
    }
    LayerBaseline {
        miners: n,
        work: requests as u64,
        wall_secs: best,
        per_sec: requests as f64 / best.max(1e-9),
    }
}

fn record(quick: bool, out: &Path) -> ExitCode {
    let n = if quick { 10_000 } else { 100_000 };
    let server_requests = if quick {
        SERVER_REQUESTS / 2
    } else {
        SERVER_REQUESTS
    };
    let baseline = Baseline {
        baseline: 10,
        quick,
        recorded_by: "cargo run --release -p goc-bench --bin baseline".into(),
        dynamics: dynamics_baseline(n, 3),
        sim: sim_baseline(n, 3),
        schedulers: Some(
            SchedulerKind::ALL
                .into_iter()
                .map(|kind| scheduler_baseline(kind, n, 2))
                .collect(),
        ),
        churn: Some(churn_baseline(n, 2)),
        ensemble: Some(ensemble_baseline(n, ENSEMBLE_REPLICAS, 2)),
        server: Some(server_baseline(SERVER_MINERS, server_requests, 2)),
        snapshot: Some(snapshot_baseline(n, 2)),
        telemetry: Some(telemetry_baseline(n, 2)),
        tracing: Some(tracing_baseline(n, 2)),
    };
    println!(
        "dynamics: {} miners, {} steps in {:.3} s -> {:.0} steps/sec",
        baseline.dynamics.miners,
        baseline.dynamics.work,
        baseline.dynamics.wall_secs,
        baseline.dynamics.per_sec
    );
    println!(
        "sim:      {} miners, {} events in {:.3} s -> {:.0} events/sec",
        baseline.sim.miners, baseline.sim.work, baseline.sim.wall_secs, baseline.sim.per_sec
    );
    for entry in baseline.schedulers.as_deref().unwrap_or(&[]) {
        println!(
            "sched:    {:<22} {} steps in {:.3} s -> {:.0} steps/sec",
            entry.scheduler, entry.layer.work, entry.layer.wall_secs, entry.layer.per_sec
        );
    }
    if let Some(churn) = &baseline.churn {
        println!(
            "churn:    {} miners, {} steps+deltas in {:.3} s -> {:.0} /sec",
            churn.miners, churn.work, churn.wall_secs, churn.per_sec
        );
    }
    if let Some(ensemble) = &baseline.ensemble {
        println!(
            "ensemble: {} miners, {} replicas in {:.3} s -> {:.2} replicas/sec \
             ({ENSEMBLE_THREADS} threads)",
            ensemble.miners, ensemble.work, ensemble.wall_secs, ensemble.per_sec
        );
    }
    if let Some(server) = &baseline.server {
        println!(
            "server:   {} miners/request, {} requests in {:.3} s -> {:.1} requests/sec",
            server.miners, server.work, server.wall_secs, server.per_sec
        );
    }
    if let Some(snapshot) = &baseline.snapshot {
        for (label, layer) in [
            ("encode", &snapshot.encode),
            ("decode", &snapshot.decode),
            ("fork", &snapshot.fork),
        ] {
            println!(
                "snapshot: {:<6} {} miners, {} ops in {:.3} s -> {:.1} ops/sec",
                label, layer.miners, layer.work, layer.wall_secs, layer.per_sec
            );
        }
    }
    if let Some(telemetry) = &baseline.telemetry {
        println!(
            "telemetry: {} miners, {} steps in {:.3} s -> {:.0} steps/sec instrumented \
             ({:.0}% of bare dynamics)",
            telemetry.miners,
            telemetry.work,
            telemetry.wall_secs,
            telemetry.per_sec,
            100.0 * telemetry.per_sec / baseline.dynamics.per_sec.max(1e-9)
        );
    }
    if let Some(tracing) = &baseline.tracing {
        println!(
            "tracing:  {} miners, {} steps in {:.3} s -> {:.0} steps/sec flight-recorded \
             ({:.0}% of bare dynamics)",
            tracing.miners,
            tracing.work,
            tracing.wall_secs,
            tracing.per_sec,
            100.0 * tracing.per_sec / baseline.dynamics.per_sec.max(1e-9)
        );
    }
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    match std::fs::write(out, json + "\n") {
        Ok(()) => {
            println!("[written {}]", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

/// Validates that a recorded layer is something this machine can
/// honestly re-measure: a zero or absurd miner count means the file is
/// corrupt or was recorded on hardware this gate cannot emulate — a
/// named error, never a panic mid-allocation or a silent pass.
fn checkable(label: &str, recorded: &LayerBaseline) -> Result<(), String> {
    if recorded.miners == 0 {
        return Err(format!(
            "baseline metric `{label}` records a zero miner count — the file is corrupt"
        ));
    }
    if recorded.miners > MAX_GATE_MINERS {
        return Err(format!(
            "baseline metric `{label}` records {} miners, beyond the {MAX_GATE_MINERS} this \
             machine can allocate for the gate — re-record the baseline on gate-class hardware",
            recorded.miners
        ));
    }
    Ok(())
}

/// One gate comparison; pushes the label onto `regressed` on failure.
fn gate(
    label: &str,
    measured: &LayerBaseline,
    recorded: &LayerBaseline,
    tolerance: f64,
    regressed: &mut Vec<String>,
) {
    let floor = recorded.per_sec * tolerance;
    let ok = measured.per_sec >= floor;
    println!(
        "{} {label:<28} measured {:>12.0}/s vs recorded {:>12.0}/s (floor {:>12.0}/s)",
        if ok { "[PASS]" } else { "[FAIL]" },
        measured.per_sec,
        recorded.per_sec,
        floor
    );
    if !ok {
        regressed.push(label.to_string());
    }
}

fn check(file: &Path, tolerance: f64) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
    };
    let recorded: Baseline = match serde_json::from_str(&text) {
        Ok(recorded) => recorded,
        Err(e) => {
            eprintln!(
                "error: {} does not parse as a baseline: {e}",
                file.display()
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "perf gate: re-measuring {} (baseline {}) at tolerance {tolerance}",
        file.display(),
        recorded.baseline
    );
    // A missing layer means the gate is NOT covering a workload this
    // binary records — warn loudly instead of silently passing, so a
    // newly added layer cannot dodge the gate by pointing it at an
    // older BENCH_*.json.
    let missing: Vec<&str> = [
        ("schedulers", recorded.schedulers.is_none()),
        ("churn", recorded.churn.is_none()),
        ("ensemble", recorded.ensemble.is_none()),
        ("server", recorded.server.is_none()),
        ("snapshot", recorded.snapshot.is_none()),
        ("telemetry", recorded.telemetry.is_none()),
        ("tracing", recorded.tracing.is_none()),
    ]
    .into_iter()
    .filter_map(|(layer, absent)| absent.then_some(layer))
    .collect();
    if !missing.is_empty() {
        eprintln!(
            "warning: {} lacks the {} layer(s) this binary records — those workloads are \
             UNGATED; re-record with `cargo run --release -p goc-bench --bin baseline`",
            file.display(),
            missing.join(", ")
        );
    }
    // Refuse unallocatable or corrupt recordings up front, by name.
    let mut layers: Vec<(&str, &LayerBaseline)> =
        vec![("dynamics", &recorded.dynamics), ("sim", &recorded.sim)];
    for entry in recorded.schedulers.as_deref().unwrap_or(&[]) {
        layers.push(("scheduler", &entry.layer));
    }
    if let Some(churn) = &recorded.churn {
        layers.push(("churn", churn));
    }
    if let Some(ensemble) = &recorded.ensemble {
        layers.push(("ensemble", ensemble));
    }
    if let Some(server) = &recorded.server {
        layers.push(("server", server));
    }
    if let Some(snapshot) = &recorded.snapshot {
        layers.push(("snapshot/encode", &snapshot.encode));
        layers.push(("snapshot/decode", &snapshot.decode));
        layers.push(("snapshot/fork", &snapshot.fork));
    }
    if let Some(telemetry) = &recorded.telemetry {
        layers.push(("telemetry", telemetry));
    }
    if let Some(tracing) = &recorded.tracing {
        layers.push(("tracing", tracing));
    }
    for (label, layer) in &layers {
        if let Err(e) = checkable(label, layer) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut regressed: Vec<String> = Vec::new();
    let mut ok = true;
    // Re-measure at the *recorded* miner counts so the comparison is
    // apples-to-apples, with fewer repeats than a recording run.
    gate(
        "dynamics",
        &dynamics_baseline(recorded.dynamics.miners, 2),
        &recorded.dynamics,
        tolerance,
        &mut regressed,
    );
    gate(
        "sim",
        &sim_baseline(recorded.sim.miners, 2),
        &recorded.sim,
        tolerance,
        &mut regressed,
    );
    for entry in recorded.schedulers.as_deref().unwrap_or(&[]) {
        let Some(kind) = SchedulerKind::ALL
            .into_iter()
            .find(|k| k.name() == entry.scheduler)
        else {
            eprintln!("error: unknown recorded scheduler `{}`", entry.scheduler);
            ok = false;
            continue;
        };
        gate(
            &format!("scheduler/{}", entry.scheduler),
            &scheduler_baseline(kind, entry.layer.miners, 2).layer,
            &entry.layer,
            tolerance,
            &mut regressed,
        );
    }
    if let Some(churn) = &recorded.churn {
        gate(
            "churn",
            &churn_baseline(churn.miners, 2),
            churn,
            tolerance,
            &mut regressed,
        );
    }
    if let Some(ensemble) = &recorded.ensemble {
        if ensemble.work == 0 || ensemble.work > MAX_GATE_REPLICAS {
            eprintln!(
                "error: baseline metric `ensemble` records {} replicas, outside the gate's \
                 1..={MAX_GATE_REPLICAS} envelope — the file is corrupt or was recorded for a \
                 workload this gate will not re-measure",
                ensemble.work
            );
            ok = false;
        } else {
            gate(
                "ensemble",
                &ensemble_baseline(ensemble.miners, ensemble.work as usize, 2),
                ensemble,
                tolerance,
                &mut regressed,
            );
        }
    }
    if let Some(server) = &recorded.server {
        if server.work == 0 || server.work > MAX_GATE_REQUESTS {
            eprintln!(
                "error: baseline metric `server` records {} requests, outside the gate's \
                 1..={MAX_GATE_REQUESTS} envelope — the file is corrupt or was recorded for a \
                 workload this gate will not re-measure",
                server.work
            );
            ok = false;
        } else {
            gate(
                "server",
                &server_baseline(server.miners, server.work as usize, 2),
                server,
                tolerance,
                &mut regressed,
            );
        }
    }
    if let Some(snapshot) = &recorded.snapshot {
        // All three codec ops are re-measured at the recorded miner
        // count in one pass (they share the tracker build).
        let measured = snapshot_baseline(snapshot.encode.miners, 2);
        for (label, measured, recorded) in [
            ("snapshot/encode", &measured.encode, &snapshot.encode),
            ("snapshot/decode", &measured.decode, &snapshot.decode),
            ("snapshot/fork", &measured.fork, &snapshot.fork),
        ] {
            gate(label, measured, recorded, tolerance, &mut regressed);
        }
    }
    if let Some(telemetry) = &recorded.telemetry {
        gate(
            "telemetry",
            &telemetry_baseline(telemetry.miners, 2),
            telemetry,
            tolerance,
            &mut regressed,
        );
    }
    if let Some(tracing) = &recorded.tracing {
        gate(
            "tracing",
            &tracing_baseline(tracing.miners, 2),
            tracing,
            tolerance,
            &mut regressed,
        );
    }
    if ok && regressed.is_empty() {
        println!("perf gate passed");
        ExitCode::SUCCESS
    } else {
        if !regressed.is_empty() {
            eprintln!(
                "error: throughput regressed below tolerance × recorded baseline for: {}",
                regressed.join(", ")
            );
        }
        ExitCode::FAILURE
    }
}

fn default_out() -> PathBuf {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if repo_root.is_dir() {
        repo_root.join("BENCH_10.json")
    } else {
        PathBuf::from("BENCH_10.json")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = default_out();
    let mut check_file: Option<PathBuf> = None;
    let mut tolerance = 0.5f64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match it.next() {
                Some(path) => check_file = Some(PathBuf::from(path)),
                None => {
                    eprintln!("error: --check needs a baseline file");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(t)) if t > 0.0 && t <= 1.0 => tolerance = t,
                _ => {
                    eprintln!("error: --tolerance needs a value in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "error: unknown flag `{other}` (supported: --quick, --out FILE, \
                     --check FILE, --tolerance T)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    match check_file {
        Some(file) => check(&file, tolerance),
        None => record(quick, &out),
    }
}
