//! `baseline` — records the repo's perf baseline to `BENCH_2.json`.
//!
//! Measures the two headline throughput numbers of the large-population
//! engine and writes them as machine-readable JSON:
//!
//! * **dynamics steps/sec** — `goc_learning::run_incremental` converging
//!   a 100k-miner, 8-hashrate-class, 3-coin game from the all-on-c0
//!   start (best of three runs);
//! * **sim events/sec** — a 100k-rig population aggregated into 8
//!   behaviour cohorts over a two-chain market for 10 simulated days.
//!
//! ```text
//! cargo run --release -p goc-bench --bin baseline            # full, writes BENCH_2.json
//! cargo run --release -p goc-bench --bin baseline -- --quick # CI smoke (10k miners)
//! cargo run --release -p goc-bench --bin baseline -- --out custom.json
//! ```
//!
//! Re-record after a perf-relevant change by re-running the full mode on
//! quiet hardware and committing the refreshed `BENCH_2.json`; the CI
//! smoke job only checks that the recorder still runs and that the
//! committed file parses.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use goc_game::{CoinId, Configuration};
use goc_learning::{run_incremental, LearningOptions};
use goc_sim::fixtures::{scale_class_game, scale_cohort_scenario};
use serde::{Deserialize, Serialize};

/// One measured layer of the baseline.
#[derive(Debug, Serialize, Deserialize)]
struct LayerBaseline {
    /// Population head-count.
    miners: usize,
    /// Work units completed (dynamics steps / sim events).
    work: u64,
    /// Best-of-three wall time in seconds.
    wall_secs: f64,
    /// `work / wall_secs`.
    per_sec: f64,
}

/// The `BENCH_2.json` schema.
#[derive(Debug, Serialize, Deserialize)]
struct Baseline {
    /// Baseline generation (this file is the repo's second, and first
    /// recorded, perf baseline).
    baseline: u32,
    /// Whether the quick (CI smoke) population was used.
    quick: bool,
    /// How to regenerate this file.
    recorded_by: String,
    /// Incremental best-response dynamics (steps/sec).
    dynamics: LayerBaseline,
    /// Cohort discrete-event simulation (events/sec).
    sim: LayerBaseline,
}

fn dynamics_baseline(n: usize) -> LayerBaseline {
    // The shared scale fixture (`goc_sim::fixtures`): the recorder must
    // measure exactly the workload the `scale` experiment and the
    // large-population benches run.
    let game = scale_class_game(n);
    let start = Configuration::uniform(CoinId(0), game.system()).expect("valid start");
    let mut best = f64::INFINITY;
    let mut steps = 0usize;
    for _ in 0..3 {
        let clock = Instant::now();
        let outcome =
            run_incremental(&game, &start, LearningOptions::default()).expect("converges");
        assert!(outcome.converged, "dynamics did not converge");
        best = best.min(clock.elapsed().as_secs_f64());
        steps = outcome.steps;
    }
    LayerBaseline {
        miners: n,
        work: steps as u64,
        wall_secs: best,
        per_sec: steps as f64 / best.max(1e-9),
    }
}

fn sim_baseline(n: usize) -> LayerBaseline {
    let spec = scale_cohort_scenario(n, 10.0, 9);
    let mut best = f64::INFINITY;
    let mut events = 0u64;
    for _ in 0..3 {
        let mut sim = spec.build().expect("cohort spec builds");
        let clock = Instant::now();
        let metrics = sim.run();
        best = best.min(clock.elapsed().as_secs_f64());
        events = metrics.total_events;
    }
    LayerBaseline {
        miners: n,
        work: events,
        wall_secs: best,
        per_sec: events as f64 / best.max(1e-9),
    }
}

fn default_out() -> PathBuf {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if repo_root.is_dir() {
        repo_root.join("BENCH_2.json")
    } else {
        PathBuf::from("BENCH_2.json")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = default_out();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown flag `{other}` (supported: --quick, --out FILE)");
                return ExitCode::FAILURE;
            }
        }
    }
    let n = if quick { 10_000 } else { 100_000 };
    let baseline = Baseline {
        baseline: 2,
        quick,
        recorded_by: "cargo run --release -p goc-bench --bin baseline".into(),
        dynamics: dynamics_baseline(n),
        sim: sim_baseline(n),
    };
    println!(
        "dynamics: {} miners, {} steps in {:.3} s -> {:.0} steps/sec",
        baseline.dynamics.miners,
        baseline.dynamics.work,
        baseline.dynamics.wall_secs,
        baseline.dynamics.per_sec
    );
    println!(
        "sim:      {} miners, {} events in {:.3} s -> {:.0} events/sec",
        baseline.sim.miners, baseline.sim.work, baseline.sim.wall_secs, baseline.sim.per_sec
    );
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    match std::fs::write(&out, json + "\n") {
        Ok(()) => {
            println!("[written {}]", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}
