//! Criterion benches for better-response learning: single-step
//! primitives and full convergence under benign and adversarial
//! schedulers (the engine behind the Theorem 1 / speed experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_game::gen::{GameSpec, PowerDist, RewardDist};
use goc_game::{CoinId, Configuration, Game, MassTracker, MoveSource};
use goc_learning::{run, run_incremental, LearningOptions, SchedulerKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn setup(n: usize, k: usize) -> (Game, Configuration) {
    let spec = GameSpec {
        miners: n,
        coins: k,
        powers: PowerDist::Uniform { lo: 1, hi: 100_000 },
        rewards: RewardDist::Uniform { lo: 1, hi: 100_000 },
    };
    let mut rng = SmallRng::seed_from_u64(11);
    let game = spec.sample(&mut rng).expect("valid spec");
    let start = goc_game::gen::random_config(&mut rng, game.system());
    (game, start)
}

fn bench_improving_moves(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics/improving_moves");
    for &(n, k) in &[(16usize, 4usize), (128, 8), (1024, 16)] {
        let (game, s) = setup(n, k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(),
            |b, ()| {
                b.iter(|| game.improving_moves(&s));
            },
        );
    }
    group.finish();
}

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics/converge");
    group.sample_size(20);
    for &(n, k) in &[(16usize, 4usize), (64, 8), (256, 8)] {
        for kind in [SchedulerKind::RoundRobin, SchedulerKind::MinGain] {
            if kind == SchedulerKind::MinGain && n > 64 {
                // Adversarially slow by design: a single n=256 run takes
                // tens of seconds (see the `speed` experiment); measuring
                // it here would dominate the whole bench suite.
                continue;
            }
            let (game, start) = setup(n, k);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("n{n}_k{k}_{kind}")),
                &(),
                |b, ()| {
                    b.iter(|| {
                        let mut sched = kind.build(5);
                        run(&game, &start, sched.as_mut(), LearningOptions::default())
                            .expect("legal scheduler")
                    });
                },
            );
        }
    }
    group.finish();
}

/// The shared scale-fixture game (`goc_sim::fixtures`): `n` miners from
/// 8 hashrate classes over 3 coins — the same workload the `scale`
/// experiment and the `BENCH_2.json` recorder measure.
fn class_game(n: usize) -> (Game, Configuration) {
    let game = goc_sim::fixtures::scale_class_game(n);
    let start = Configuration::uniform(CoinId(0), game.system()).expect("valid start");
    (game, start)
}

fn bench_incremental_converge(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics/incremental_converge");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let (game, start) = class_game(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k3")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let outcome = run_incremental(&game, &start, LearningOptions::default())
                        .expect("incremental dynamics");
                    assert!(outcome.converged);
                    outcome.steps
                });
            },
        );
    }
    group.finish();
}

fn bench_tracker_step(c: &mut Criterion) {
    // The primitive behind every step: apply + undo + an O(coins) query,
    // at a population size where the naive rescan would dominate.
    let mut group = c.benchmark_group("dynamics/tracker_apply_undo");
    let (game, start) = class_game(100_000);
    let mut tracker = MassTracker::new(&game, &start).expect("valid tracker");
    let p = goc_game::MinerId(0);
    group.bench_with_input(BenchmarkId::from_parameter("n100000_k3"), &(), |b, ()| {
        b.iter(|| {
            tracker.apply(p, CoinId(1));
            let rpu = tracker.rpu_list();
            tracker.undo();
            rpu
        });
    });
    group.finish();
}

fn bench_apply_undo(c: &mut Criterion) {
    // Pure group-index round trip: one apply + undo, no query in the
    // loop. Isolates the arena slab splice (remove from one class's
    // slab, insert into another, and back) from the O(coins) payoff
    // scans the other benches include — the number that moves when the
    // member-storage layout changes.
    let mut group = c.benchmark_group("dynamics/apply_undo");
    let (game, start) = class_game(100_000);
    let mut tracker = MassTracker::new(&game, &start).expect("valid tracker");
    let p = goc_game::MinerId(0);
    group.bench_with_input(BenchmarkId::from_parameter("n100000_k3"), &(), |b, ()| {
        b.iter(|| {
            let mv = tracker.apply(p, CoinId(1));
            tracker.undo();
            mv
        });
    });
    group.finish();
}

fn bench_scheduler_pick(c: &mut Criterion) {
    // One incremental pick + apply + undo per iteration, on a 100k-miner
    // source whose group-decision cache is warm — the per-step primitive
    // of the incremental scheduler protocol, per SchedulerKind.
    let mut group = c.benchmark_group("dynamics/scheduler_pick");
    let (game, start) = class_game(100_000);
    for kind in SchedulerKind::ALL {
        let mut src = MoveSource::new(&game, &start).expect("valid source");
        let mut sched = kind.build(5);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n100000_k3_{kind}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let mv = sched
                        .pick_incremental(&mut src)
                        .expect("uniform start is unstable");
                    src.apply(mv.miner, mv.to);
                    src.undo().expect("apply was recorded");
                    mv
                });
            },
        );
    }
    group.finish();
}

/// The shared churn workload (`goc_sim::fixtures::scale_churn_scenario`
/// lowered through `goc_sim::churn_universe`): the fixture game plus a
/// 10%-turnover delta stream with one coin launch and one retirement.
fn churn_workload(n: usize) -> (goc_sim::ChurnUniverse, goc_learning::ChurnPlan) {
    let spec = goc_sim::fixtures::scale_churn_scenario(n, 30.0, 9, 10);
    let universe = goc_sim::churn_universe(&spec, 1e-4).expect("fixture lowers to a universe");
    let plan = goc_learning::ChurnPlan::with_events(
        Some(universe.miner_active.clone()),
        Some(universe.coin_active.clone()),
        universe.step_deltas(n),
    );
    (universe, plan)
}

fn bench_churn_converge(c: &mut Criterion) {
    // Full convergence under 10% population turnover + coin lifecycle —
    // the workload BENCH_4.json records and the CI perf gate checks.
    let mut group = c.benchmark_group("dynamics/churn_converge");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let (universe, plan) = churn_workload(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k3")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let outcome = goc_learning::run_incremental_with_churn(
                        &universe.game,
                        &universe.start,
                        LearningOptions::default(),
                        &plan,
                    )
                    .expect("churn dynamics");
                    assert!(outcome.converged);
                    outcome.steps + outcome.churn_applied
                });
            },
        );
    }
    group.finish();
}

fn bench_churn_delta(c: &mut Criterion) {
    // The churn primitive: one remove + insert round-trip against a
    // 100k-miner tracker (group-index splice + mass patch-up), with the
    // decision-cache repair included.
    let mut group = c.benchmark_group("dynamics/churn_delta_apply_undo");
    let (game, start) = class_game(100_000);
    let mut src = MoveSource::new(&game, &start).expect("valid source");
    let p = goc_game::MinerId(0);
    group.bench_with_input(BenchmarkId::from_parameter("n100000_k3"), &(), |b, ()| {
        b.iter(|| {
            src.apply_delta(goc_game::Delta::RemoveMiner { miner: p })
                .expect("p is active");
            src.apply_delta(goc_game::Delta::InsertMiner {
                miner: p,
                coin: None,
            })
            .expect("p is dormant");
            src.undo_delta().expect("insert recorded");
            src.undo_delta().expect("remove recorded")
        });
    });
    group.finish();
}

fn bench_scheduler_converge(c: &mut Criterion) {
    // Full convergence per SchedulerKind through the incremental path —
    // the workload BENCH_3.json records and the CI perf gate checks.
    let mut group = c.benchmark_group("dynamics/scheduler_converge");
    group.sample_size(10);
    let (game, start) = class_game(10_000);
    for kind in SchedulerKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n10000_k3_{kind}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let mut sched = kind.build(5);
                    let outcome = run(&game, &start, sched.as_mut(), LearningOptions::default())
                        .expect("bundled schedulers are legal");
                    assert!(outcome.converged);
                    outcome.steps
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_improving_moves,
    bench_convergence,
    bench_incremental_converge,
    bench_tracker_step,
    bench_apply_undo,
    bench_scheduler_pick,
    bench_churn_converge,
    bench_churn_delta,
    bench_scheduler_converge
);
criterion_main!(benches);
