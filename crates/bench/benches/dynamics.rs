//! Criterion benches for better-response learning: single-step
//! primitives and full convergence under benign and adversarial
//! schedulers (the engine behind the Theorem 1 / speed experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_game::gen::{GameSpec, PowerDist, RewardDist};
use goc_game::{Configuration, Game};
use goc_learning::{run, LearningOptions, SchedulerKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn setup(n: usize, k: usize) -> (Game, Configuration) {
    let spec = GameSpec {
        miners: n,
        coins: k,
        powers: PowerDist::Uniform { lo: 1, hi: 100_000 },
        rewards: RewardDist::Uniform { lo: 1, hi: 100_000 },
    };
    let mut rng = SmallRng::seed_from_u64(11);
    let game = spec.sample(&mut rng).expect("valid spec");
    let start = goc_game::gen::random_config(&mut rng, game.system());
    (game, start)
}

fn bench_improving_moves(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics/improving_moves");
    for &(n, k) in &[(16usize, 4usize), (128, 8), (1024, 16)] {
        let (game, s) = setup(n, k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(),
            |b, ()| {
                b.iter(|| game.improving_moves(&s));
            },
        );
    }
    group.finish();
}

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics/converge");
    group.sample_size(20);
    for &(n, k) in &[(16usize, 4usize), (64, 8), (256, 8)] {
        for kind in [SchedulerKind::RoundRobin, SchedulerKind::MinGain] {
            if kind == SchedulerKind::MinGain && n > 64 {
                // Adversarially slow by design: a single n=256 run takes
                // tens of seconds (see the `speed` experiment); measuring
                // it here would dominate the whole bench suite.
                continue;
            }
            let (game, start) = setup(n, k);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("n{n}_k{k}_{kind}")),
                &(),
                |b, ()| {
                    b.iter(|| {
                        let mut sched = kind.build(5);
                        run(&game, &start, sched.as_mut(), LearningOptions::default())
                            .expect("legal scheduler")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_improving_moves, bench_convergence);
criterion_main!(benches);
