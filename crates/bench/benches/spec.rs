//! Criterion benches for the scenario-API hot paths: spec construction,
//! spec→simulation builds, JSON round trips, and registry dispatch —
//! the per-run overhead `goc sweep` pays before any simulation work, so
//! later PRs can track regressions here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_experiments::{find, registry};
use goc_sim::ScenarioSpec;

fn bench_spec_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec/build");
    group.sample_size(20);
    for spec in ScenarioSpec::presets() {
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.name.clone()),
            &spec,
            |b, spec| {
                b.iter(|| spec.build().expect("preset builds"));
            },
        );
    }
    group.finish();
}

fn bench_spec_json_round_trip(c: &mut Criterion) {
    let spec = ScenarioSpec::btc_bch();
    c.bench_function("spec/json_round_trip", |b| {
        b.iter(|| {
            let json = serde_json::to_string(&spec).expect("serializes");
            let back: ScenarioSpec = serde_json::from_str(&json).expect("parses");
            back
        });
    });
}

fn bench_registry_dispatch(c: &mut Criterion) {
    c.bench_function("registry/build", |b| {
        b.iter(registry);
    });
    c.bench_function("registry/find", |b| {
        b.iter(|| find("poa").expect("registered"));
    });
}

criterion_group!(
    benches,
    bench_spec_build,
    bench_spec_json_round_trip,
    bench_registry_dispatch
);
criterion_main!(benches);
