//! Criterion benches for the discrete-event simulator: the Figure 1
//! scenario at several population sizes (simulated days per wall
//! second is the relevant throughput number).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_sim::scenario::{btc_bch, BtcBchParams};

fn bench_btc_bch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/btc_bch_10_days");
    group.sample_size(10);
    for &n in &[20usize, 100, 400] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}_miners")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let mut sim = btc_bch(BtcBchParams {
                        num_miners: n,
                        horizon_days: 10.0,
                        shock_day: 4.0,
                        revert_day: 7.0,
                        ..BtcBchParams::default()
                    });
                    sim.run().len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_btc_bch);
criterion_main!(benches);
