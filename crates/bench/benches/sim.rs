//! Criterion benches for the discrete-event simulator: the Figure 1
//! scenario at several population sizes (simulated days per wall
//! second is the relevant throughput number), plus cohort-aggregated
//! populations where event volume tracks behaviours instead of
//! head-count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_sim::fixtures::scale_cohort_scenario;
use goc_sim::scenario::{btc_bch, BtcBchParams};
use goc_sim::spec::ScenarioSpec;

fn bench_btc_bch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/btc_bch_10_days");
    group.sample_size(10);
    for &n in &[20usize, 100, 400] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}_miners")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let mut sim = btc_bch(BtcBchParams {
                        num_miners: n,
                        horizon_days: 10.0,
                        shock_day: 4.0,
                        revert_day: 7.0,
                        ..BtcBchParams::default()
                    });
                    sim.run().len()
                });
            },
        );
    }
    group.finish();
}

/// The shared scale-fixture scenario (`goc_sim::fixtures`): `n` rigs in
/// 8 behaviour cohorts over a two-chain market — the same workload the
/// `scale` experiment and the `BENCH_2.json` recorder measure.
fn cohort_spec(n: usize) -> ScenarioSpec {
    scale_cohort_scenario(n, 10.0, 9)
}

fn bench_cohorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/cohorts_10_days");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let spec = cohort_spec(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}_miners")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let mut sim = spec.build().expect("cohort spec builds");
                    sim.run().total_events
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_btc_bch, bench_cohorts);
criterion_main!(benches);
