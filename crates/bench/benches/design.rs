//! Criterion benches for Algorithm 2: full reward-design runs (with and
//! without Ψ-invariant verification) across system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_design::{design, DesignOptions, DesignProblem};
use goc_game::equilibrium;
use goc_game::gen::{GameSpec, PowerDist, RewardDist};
use goc_learning::RoundRobin;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn problem_of(n: usize) -> DesignProblem {
    let spec = GameSpec {
        miners: n,
        coins: 3,
        powers: PowerDist::DistinctUniform { lo: 1, hi: 100_000 },
        rewards: RewardDist::Uniform {
            lo: 100,
            hi: 100_000,
        },
    };
    let mut rng = SmallRng::seed_from_u64(n as u64);
    loop {
        let game = spec.sample(&mut rng).expect("valid spec");
        if let Ok((s0, sf)) = equilibrium::two_equilibria(&game) {
            return DesignProblem::new(game, s0, sf).expect("stable endpoints");
        }
    }
}

fn bench_design(c: &mut Criterion) {
    let mut group = c.benchmark_group("design/algorithm2");
    group.sample_size(10);
    for &n in &[4usize, 8, 12, 16] {
        let problem = problem_of(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    design(&problem, &mut RoundRobin::new(), DesignOptions::default())
                        .expect("design reaches the target")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_verified")),
            &(),
            |b, ()| {
                b.iter(|| {
                    design(
                        &problem,
                        &mut RoundRobin::new(),
                        DesignOptions {
                            verify_invariants: true,
                            ..DesignOptions::default()
                        },
                    )
                    .expect("design reaches the target")
                });
            },
        );
    }
    group.finish();
}

fn bench_designed_rewards(c: &mut Criterion) {
    let problem = problem_of(12);
    let start = problem.stage_config(1);
    c.bench_function("design/h_i_schedule", |b| {
        b.iter(|| goc_design::hi(&problem, 2, &start).expect("valid stage state"));
    });
}

criterion_group!(benches, bench_design, bench_designed_rewards);
criterion_main!(benches);
