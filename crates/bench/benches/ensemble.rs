//! Criterion benches for the Monte-Carlo ensemble engine: the
//! work-stealing executor's dispatch overhead, the streaming
//! aggregators, and end-to-end replica throughput on a mid-size
//! population (the 100k-miner recorded number lives in `BENCH_5.json`
//! via the `baseline` bin).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_analysis::ensemble::aggregate::{
    EquilibriumKey, FingerprintIndex, QuantileSketch, Welford,
};
use goc_analysis::ensemble::executor::{replica_seed, run_indexed};
use goc_analysis::ensemble::{run, EnsembleSpec};

fn bench_executor_dispatch(c: &mut Criterion) {
    // Pure dispatch cost: thousands of near-empty tasks.
    let mut group = c.benchmark_group("ensemble/executor_dispatch");
    group.sample_size(20);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}t")),
            &threads,
            |b, &threads| {
                b.iter(|| run_indexed(4096, threads, |i| replica_seed(7, i)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_aggregators(c: &mut Criterion) {
    c.bench_function("ensemble/welford_sketch_fold_10k", |b| {
        b.iter(|| {
            let mut w = Welford::new();
            let mut q = QuantileSketch::new();
            for i in 0..10_000u32 {
                let x = f64::from(i % 977) + 1.0;
                w.push(x);
                q.push(x);
            }
            (w.summary(), q.quantile(0.9))
        });
    });
    c.bench_function("ensemble/fingerprint_record_1k", |b| {
        b.iter(|| {
            let mut index = FingerprintIndex::new();
            for i in 0..1_000u128 {
                index.record(
                    EquilibriumKey {
                        masses: vec![i % 17, 100 - i % 17, 3],
                        live: vec![true, true, true],
                    },
                    0.1,
                    100.0,
                );
            }
            index.census(12)
        });
    });
}

fn bench_replica_throughput(c: &mut Criterion) {
    // End-to-end: 8 replicas over a 10k-miner fixture game (the
    // recorded BENCH_5 number uses 100k; this keeps the quick CI bench
    // in the hundreds of milliseconds).
    let spec = EnsembleSpec::new(10_000, 8, 9);
    let mut group = c.benchmark_group("ensemble/replicas_10k_miners");
    group.sample_size(10);
    for threads in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}t")),
            &threads,
            |b, &threads| {
                b.iter(|| run(&spec, threads).expect("fixture ensembles run"));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_executor_dispatch,
    bench_aggregators,
    bench_replica_throughput
);
criterion_main!(benches);
