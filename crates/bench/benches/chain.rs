//! Criterion benches for the proof-of-work substrate: block appends with
//! each difficulty rule, and mining-race sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_chain::{mining, Blockchain, ChainParams, DifficultyRule, FeeParams, SubsidySchedule};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn params(rule: DifficultyRule) -> ChainParams {
    ChainParams {
        name: "BENCH".to_string(),
        target_spacing: 600.0,
        initial_difficulty: 1e6,
        subsidy: SubsidySchedule::new(12_500_000, 210_000),
        difficulty_rule: rule,
        fees: FeeParams {
            fee_rate: 10.0,
            max_fees_per_block: 1_000_000,
        },
    }
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain/append_1000_blocks");
    group.sample_size(20);
    let rules = [
        ("fixed", DifficultyRule::Fixed),
        (
            "epoch2016",
            DifficultyRule::Epoch {
                interval: 2016,
                max_factor: 4.0,
            },
        ),
        (
            "ma144",
            DifficultyRule::MovingAverage {
                window: 144,
                max_step: 2.0,
            },
        ),
    ];
    for (name, rule) in rules {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                let mut chain = Blockchain::new(params(rule));
                for i in 0..1000u64 {
                    chain.append_block(600.0 * (i + 1) as f64, (i % 7) as usize);
                }
                chain.height()
            });
        });
    }
    group.finish();
}

fn bench_mining_race(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let hashrates: Vec<(usize, f64)> = (0..200).map(|i| (i, 1000.0 / (i + 1) as f64)).collect();
    c.bench_function("chain/sample_block_interval", |b| {
        b.iter(|| mining::sample_block_interval(&mut rng, 5e4, 3e7));
    });
    c.bench_function("chain/sample_winner_200", |b| {
        b.iter(|| mining::sample_winner(&mut rng, &hashrates));
    });
}

criterion_group!(benches, bench_append, bench_mining_race);
criterion_main!(benches);
