//! Criterion benches for the ordinal potential machinery (Theorem 1):
//! RPU-list construction, potential comparison, and the exhaustive
//! potential table on small games.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_game::gen::{GameSpec, PowerDist, RewardDist};
use goc_game::{potential, Game};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn game_of(n: usize, k: usize) -> Game {
    let spec = GameSpec {
        miners: n,
        coins: k,
        powers: PowerDist::Uniform { lo: 1, hi: 100_000 },
        rewards: RewardDist::Uniform { lo: 1, hi: 100_000 },
    };
    spec.sample(&mut SmallRng::seed_from_u64(1))
        .expect("valid spec")
}

fn bench_rpu_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("potential/rpu_list");
    for &(n, k) in &[(16usize, 4usize), (64, 8), (256, 16), (1024, 32)] {
        let game = game_of(n, k);
        let mut rng = SmallRng::seed_from_u64(2);
        let s = goc_game::gen::random_config(&mut rng, game.system());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(),
            |b, ()| {
                b.iter(|| potential::rpu_list(&game, &s));
            },
        );
    }
    group.finish();
}

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("potential/compare");
    for &(n, k) in &[(64usize, 8usize), (1024, 32)] {
        let game = game_of(n, k);
        let mut rng = SmallRng::seed_from_u64(3);
        let a = goc_game::gen::random_config(&mut rng, game.system());
        let b_cfg = goc_game::gen::random_config(&mut rng, game.system());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(),
            |b, ()| {
                b.iter(|| potential::compare(&game, &a, &b_cfg));
            },
        );
    }
    group.finish();
}

fn bench_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("potential/table");
    group.sample_size(10);
    for &(n, k) in &[(8usize, 2usize), (10, 2), (8, 3)] {
        let game = game_of(n, k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(),
            |b, ()| {
                b.iter(|| potential::PotentialTable::new(&game, 1 << 20).expect("small game"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rpu_list, bench_compare, bench_table);
criterion_main!(benches);
