//! Criterion benches for the service layer: protocol frame
//! encode/decode cost and end-to-end request round-trips against a
//! live loopback server (the recorded requests/sec number lives in
//! `BENCH_6.json` via the `baseline` bin).

use std::net::SocketAddr;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_analysis::ensemble::EnsembleSpec;
use goc_proto::{Client, ReportPayload, Request, RequestEnvelope, Response};
use goc_server::{EnsembleOnlyBackend, Server, ServerConfig};

fn bench_frame_codec(c: &mut Criterion) {
    // Pure serde cost of the hot frame on the wire: a RunEnsemble
    // request envelope there, a Status report envelope back.
    let envelope = RequestEnvelope::new(
        7,
        Request::RunEnsemble {
            spec: EnsembleSpec::new(100_000, 64, 9),
        },
    );
    let json = serde_json::to_string(&envelope).expect("envelopes serialize");
    c.bench_function("server/encode_run_ensemble_envelope", |b| {
        b.iter(|| serde_json::to_string(&envelope).expect("envelopes serialize"));
    });
    c.bench_function("server/decode_run_ensemble_envelope", |b| {
        b.iter(|| serde_json::from_str::<RequestEnvelope>(&json).expect("envelopes parse"));
    });
}

/// Boots a drain-on-drop server for the round-trip benches.
fn boot() -> (SocketAddr, std::thread::JoinHandle<()>) {
    let config = ServerConfig {
        threads: 2,
        session_budget: u64::MAX,
        ..ServerConfig::default()
    };
    let server = Server::bind(config, Box::new(EnsembleOnlyBackend)).expect("server binds");
    let addr = server.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || {
        server.run().expect("server drains cleanly");
    });
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let mut closer = Client::connect(addr).expect("shutdown client connects");
    let reply = closer
        .request(Request::Shutdown)
        .expect("shutdown round-trips");
    assert!(matches!(
        reply.terminal(),
        Response::Report(ReportPayload::ShutdownAck)
    ));
    handle.join().expect("server thread exits");
}

fn bench_round_trips(c: &mut Criterion) {
    let (addr, handle) = boot();
    let mut client = Client::connect(addr).expect("client connects");

    // The floor: a Status round-trip is framing + session dispatch with
    // no compute behind it.
    let mut group = c.benchmark_group("server/round_trip");
    group.sample_size(20);
    group.bench_function("status", |b| {
        b.iter(|| {
            let reply = client.request(Request::Status).expect("status answered");
            assert!(matches!(
                reply.terminal(),
                Response::Report(ReportPayload::Status(_))
            ));
        });
    });
    // Real work behind the wire: admission + executor dispatch + a
    // small ensemble, per population.
    for miners in [100usize, 1000] {
        group.bench_with_input(
            BenchmarkId::new("run_ensemble", format!("{miners}m")),
            &miners,
            |b, &miners| {
                b.iter(|| {
                    let reply = client
                        .request(Request::RunEnsemble {
                            spec: EnsembleSpec::new(miners, 2, 9),
                        })
                        .expect("ensemble answered");
                    assert!(matches!(
                        reply.terminal(),
                        Response::Report(ReportPayload::Ensemble(_))
                    ));
                });
            },
        );
    }
    group.finish();
    drop(client);
    shutdown(addr, handle);
}

criterion_group!(benches, bench_frame_codec, bench_round_trips);
criterion_main!(benches);
