//! Concurrency properties of the flight recorder, and the Chrome-trace
//! export schema.
//!
//! The recorder's contract under contention: writer threads (one
//! [`TraceLane`] each) never produce a torn record — a snapshot raced
//! against live writers only ever sees whole `(kind, phase, nanos,
//! correlation)` tuples — every lane's retained window respects its
//! capacity, the `dropped` counter accounts for every overwritten
//! record exactly, and a disabled recorder emits nothing no matter how
//! many threads hammer it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use goc_telemetry::trace::{TraceEventKind, TracePhase, TraceRecorder, TraceSnapshot};
use proptest::prelude::*;

/// Encodes writer `t`'s `i`-th record so any mix-up is detectable: the
/// correlation names the writer and sequence, and the kind/phase are a
/// pure function of it — a torn word/correlation pairing decodes to a
/// mismatched tuple.
fn expected_kind(correlation: u64) -> TraceEventKind {
    TraceEventKind::ALL[(correlation % TraceEventKind::ALL.len() as u64) as usize]
}

fn write_plan(t: u64, i: u64, per_thread: u64) -> u64 {
    t * per_thread + i
}

fn assert_untorn(snap: &TraceSnapshot) {
    for event in &snap.events {
        assert_eq!(
            event.kind,
            expected_kind(event.correlation),
            "kind must match the correlation it was written with"
        );
        assert_eq!(event.phase, TracePhase::Instant);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn contending_writers_never_tear_and_drops_account_exactly(
        threads in 1u64..6,
        per_thread in 1u64..3000,
        capacity in 1usize..512,
    ) {
        let recorder = TraceRecorder::new(capacity);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let recorder = recorder.clone();
                std::thread::spawn(move || {
                    let lane = recorder.lane();
                    for i in 0..per_thread {
                        let corr = write_plan(t, i, per_thread);
                        lane.instant(expected_kind(corr), corr);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer threads do not panic");
        }
        let snap = recorder.snapshot();
        assert_untorn(&snap);
        // Quiescent accounting is exact: every written record was
        // either retained or counted as dropped.
        let written = threads * per_thread;
        prop_assert_eq!(snap.events.len() as u64 + snap.dropped, written);
        // Each lane's retained window respects its capacity...
        for lane in 0..threads as usize {
            let kept = snap.events.iter().filter(|e| e.lane == lane).count();
            prop_assert!(kept <= capacity, "lane {lane} kept {kept} > {capacity}");
        }
        // ...and each writer's retained records are its *newest*, in
        // write order (per-lane timestamps are monotone).
        for t in 0..threads {
            let range = (t * per_thread)..((t + 1) * per_thread);
            let mut correlations: Vec<u64> = snap
                .events
                .iter()
                .filter(|e| range.contains(&e.correlation))
                .map(|e| e.correlation)
                .collect();
            let newest = range.end - correlations.len() as u64;
            correlations.sort_unstable();
            prop_assert_eq!(correlations, (newest..range.end).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn snapshots_raced_against_writers_see_only_whole_records(
        threads in 1u64..4,
        per_thread in 200u64..2000,
    ) {
        // Tiny rings force constant overwrite while the main thread
        // drains mid-flight: no snapshot may ever contain a torn tuple.
        let recorder = TraceRecorder::new(8);
        let done = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let recorder = recorder.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let lane = recorder.lane();
                    for i in 0..per_thread {
                        let corr = write_plan(t, i, per_thread);
                        lane.instant(expected_kind(corr), corr);
                    }
                    done.store(true, Ordering::Release);
                })
            })
            .collect();
        while !done.load(Ordering::Acquire) {
            assert_untorn(&recorder.snapshot());
        }
        for h in handles {
            h.join().expect("writer threads do not panic");
        }
        let snap = recorder.snapshot();
        assert_untorn(&snap);
        prop_assert_eq!(snap.events.len() as u64 + snap.dropped, threads * per_thread);
    }

    #[test]
    fn disabled_recorders_emit_nothing_under_contention(
        threads in 1u64..6,
        per_thread in 1u64..2000,
    ) {
        for recorder in [TraceRecorder::disabled(), TraceRecorder::standby(64)] {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let recorder = recorder.clone();
                    std::thread::spawn(move || {
                        let lane = recorder.lane();
                        for i in 0..per_thread {
                            lane.instant(expected_kind(t + i), t + i);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("writer threads do not panic");
            }
            let snap = recorder.snapshot();
            prop_assert!(!snap.enabled);
            prop_assert!(snap.events.is_empty());
            prop_assert_eq!(snap.dropped, 0);
        }
    }
}

/// The Chrome Trace Event Format dump must parse as JSON and carry
/// every retained record back out: name ↔ kind, ph ↔ phase, tid ↔
/// lane, ts ↔ nanos (µs at 3 decimals), args.correlation ↔
/// correlation, and the dropped count in otherData.
#[test]
fn chrome_export_round_trips_every_event() {
    let recorder = TraceRecorder::new(4);
    let lane = recorder.lane();
    lane.instant(TraceEventKind::StepPick, 7); // overwritten below; dropped = 1
    {
        let _serve = lane.span(TraceEventKind::RequestServe, 42);
        lane.instant(TraceEventKind::RequestAdmit, 42);
    }
    lane.instant(TraceEventKind::DeltaApply, u64::MAX);
    let snap = recorder.snapshot();
    assert_eq!(snap.events.len(), 4);
    assert_eq!(snap.dropped, 1);

    let json = snap.to_chrome_json();
    let value = serde_json::parse_value(&json).expect("chrome dump parses as JSON");
    assert_eq!(
        value.get("displayTimeUnit"),
        Some(&serde_json::Value::String("ms".into()))
    );
    assert_eq!(
        value.get("otherData").and_then(|o| o.get("dropped")),
        Some(&serde_json::Value::Int(1))
    );
    let serde_json::Value::Array(events) = value.get("traceEvents").expect("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    assert_eq!(events.len(), snap.events.len());
    for (json_event, event) in events.iter().zip(&snap.events) {
        assert_eq!(
            json_event.get("name"),
            Some(&serde_json::Value::String(event.kind.name().into()))
        );
        assert_eq!(
            json_event.get("ph"),
            Some(&serde_json::Value::String(event.phase.chrome_ph().into()))
        );
        assert_eq!(
            json_event.get("cat"),
            Some(&serde_json::Value::String("goc".into()))
        );
        assert_eq!(json_event.get("pid"), Some(&serde_json::Value::Int(1)));
        assert_eq!(
            json_event.get("tid"),
            Some(&serde_json::Value::Int(event.lane as i128))
        );
        let Some(&serde_json::Value::Float(ts)) = json_event.get("ts") else {
            panic!("ts must be a float");
        };
        assert!(
            (ts - event.nanos as f64 / 1e3).abs() <= 1e-3,
            "ts is microseconds at 3 decimals"
        );
        assert_eq!(
            json_event.get("args").and_then(|a| a.get("correlation")),
            Some(&serde_json::Value::Int(event.correlation as i128))
        );
        // Instants carry the scope field; span boundaries must not.
        let scope = json_event.get("s");
        if event.phase == TracePhase::Instant {
            assert_eq!(scope, Some(&serde_json::Value::String("t".into())));
        } else {
            assert_eq!(scope, None);
        }
    }
    // Begin precedes end for the serve span, and the instant nests
    // between them — the timeline reconstructs from the dump order.
    let phases: Vec<&str> = events
        .iter()
        .filter(|e| {
            e.get("args").and_then(|a| a.get("correlation")) == Some(&serde_json::Value::Int(42))
        })
        .map(|e| match e.get("ph") {
            Some(serde_json::Value::String(ph)) => ph.as_str(),
            _ => panic!("ph must be a string"),
        })
        .collect();
    assert_eq!(phases, vec!["B", "i", "E"]);
}

/// An empty snapshot still renders a valid, loadable document.
#[test]
fn chrome_export_of_an_empty_recorder_is_valid_json() {
    let json = TraceRecorder::disabled().snapshot().to_chrome_json();
    let value = serde_json::parse_value(&json).expect("empty dump parses");
    assert_eq!(
        value.get("traceEvents"),
        Some(&serde_json::Value::Array(Vec::new()))
    );
}
