//! Concurrency properties of the lock-free instruments: N threads ×
//! M increments must never lose an event, and a histogram snapshot
//! taken *after* the writers join must be internally consistent
//! (bucket counts sum to the observation count, min/max bracket the
//! sum). Snapshots raced against live writers must still uphold the
//! bucket-sum invariant — the registry promises consistent reads, not
//! quiescent ones.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use goc_telemetry::{Counter, LatencyHistogram, Registry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn counters_never_lose_increments(threads in 1usize..8, per_thread in 1u64..2000) {
        let counter = Counter::detached();
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer threads do not panic");
        }
        prop_assert_eq!(counter.get(), threads as u64 * per_thread);
    }

    #[test]
    fn histograms_count_every_observation_across_threads(
        threads in 1usize..8,
        per_thread in 1u64..1000,
        scale_exp in -5i32..2,
    ) {
        let hist = LatencyHistogram::detached();
        let scale = 10f64.powi(scale_exp);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = hist.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        // Deterministic spread across several buckets.
                        let spread = (1 + (t as u64 * per_thread + i) % 97) as f64;
                        h.observe(scale * spread / 97.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer threads do not panic");
        }
        let snap = hist.snapshot("race_secs");
        prop_assert_eq!(snap.count, threads as u64 * per_thread);
        prop_assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), snap.count);
        prop_assert!(snap.skipped == 0);
        prop_assert!(snap.min_secs <= snap.max_secs);
        // The mean lies between min and max (sum consistency).
        let mean = snap.sum_secs / snap.count as f64;
        prop_assert!(mean >= snap.min_secs * 0.999 && mean <= snap.max_secs * 1.001);
    }

    #[test]
    fn snapshots_raced_against_writers_stay_consistent(observations in 100u64..5000) {
        // One writer hammers a registry-held histogram and counter
        // while the main thread snapshots mid-flight: every snapshot
        // must satisfy sum(buckets) == count, and the final one must
        // see every event.
        let registry = Registry::new();
        let hist = registry.histogram("live_secs");
        let counter = registry.counter("live_total");
        let done = Arc::new(AtomicBool::new(false));
        let writer = {
            let done = done.clone();
            std::thread::spawn(move || {
                for i in 0..observations {
                    hist.observe(1e-4 * (1 + i % 13) as f64);
                    counter.inc();
                }
                done.store(true, Ordering::Release);
            })
        };
        while !done.load(Ordering::Acquire) {
            let snap = registry.snapshot();
            if let Some(h) = snap.histogram("live_secs") {
                prop_assert_eq!(
                    h.buckets.iter().map(|b| b.count).sum::<u64>(),
                    h.count,
                    "mid-flight snapshot must be internally consistent"
                );
            }
        }
        writer.join().expect("writer thread does not panic");
        let snap = registry.snapshot();
        prop_assert_eq!(snap.counter("live_total"), Some(observations));
        prop_assert_eq!(snap.histogram("live_secs").unwrap().count, observations);
    }
}
