//! Shared geometric-bucket quantile estimation.
//!
//! Two subsystems estimate quantiles from fixed geometric buckets: the
//! [`LatencyHistogram`](crate::LatencyHistogram) (64 buckets over
//! `[1e-6, 1e3]` seconds) and `goc_analysis`'s `QuantileSketch` (1024
//! buckets over `[1, 1e12]`). They grew the same bucket math
//! independently; this module is the one copy both now call, so the
//! bucketing scheme can only ever drift in one place.
//!
//! The scheme: `n` log-uniform buckets over `[lo, hi]`. Bucket `i`
//! covers `[lo·r^(i/n), lo·r^((i+1)/n))` with `r = hi/lo`, so every
//! bucket spans the same ratio `r^(1/n)` — the *relative* error of any
//! in-bucket estimate is bounded by that ratio regardless of scale.
//! Quantiles are nearest-rank ([`nearest_rank`]): rank `⌈q·total⌉`
//! clamped to `[1, total]`, the same convention both callers always
//! used.

/// The geometric bucket index of `x` over `[lo, hi]` with `n` buckets.
/// Values outside the range clamp to the edge buckets; `n` must be ≥ 1
/// and `0 < lo < hi` (both callers use compile-time constants).
#[inline]
pub fn bucket_of(x: f64, lo: f64, hi: f64, n: usize) -> usize {
    let clamped = x.clamp(lo, hi);
    let t = (clamped / lo).log10() / (hi / lo).log10();
    ((t * n as f64) as usize).min(n - 1)
}

/// The lower edge of bucket `i`.
#[inline]
pub fn bucket_lower(i: usize, lo: f64, hi: f64, n: usize) -> f64 {
    lo * (hi / lo).powf(i as f64 / n as f64)
}

/// The upper edge of bucket `i`.
#[inline]
pub fn bucket_upper(i: usize, lo: f64, hi: f64, n: usize) -> f64 {
    lo * (hi / lo).powf((i + 1) as f64 / n as f64)
}

/// The geometric midpoint of bucket `i` — the canonical in-bucket
/// estimate (relative error ≤ half the bucket ratio either way).
#[inline]
pub fn bucket_mid(i: usize, lo: f64, hi: f64, n: usize) -> f64 {
    (bucket_lower(i, lo, hi, n) * bucket_upper(i, lo, hi, n)).sqrt()
}

/// The ratio spanned by one bucket, `(hi/lo)^(1/n)` — the documented
/// relative-error bound of any estimate built on this scheme.
#[inline]
pub fn bucket_ratio(lo: f64, hi: f64, n: usize) -> f64 {
    (hi / lo).powf(1.0 / n as f64)
}

/// The 1-based nearest rank of quantile `q` over `total` samples:
/// `⌈q·total⌉` clamped to `[1, total]`. Callers handle `total == 0`
/// and the exact-min/max extremes (`q ≤ 0`, `q ≥ 1`) before ranking.
#[inline]
pub fn nearest_rank(q: f64, total: u64) -> u64 {
    ((q * total as f64).ceil() as u64).clamp(1, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LO: f64 = 1e-6;
    const HI: f64 = 1e3;
    const N: usize = 64;

    #[test]
    fn bucket_of_is_monotone_and_clamps() {
        let mut last = 0usize;
        for v in [0.0, 1e-9, LO, 1e-4, 1e-2, 1.0, 100.0, HI, 1e7] {
            let b = bucket_of(v, LO, HI, N);
            assert!(b >= last, "bucket_of must be monotone at {v}");
            assert!(b < N);
            last = b;
        }
        assert_eq!(bucket_of(0.0, LO, HI, N), 0);
        assert_eq!(bucket_of(HI * 10.0, LO, HI, N), N - 1);
    }

    #[test]
    fn edges_tile_the_range_and_contain_their_values() {
        assert!((bucket_lower(0, LO, HI, N) - LO).abs() < 1e-12);
        assert!((bucket_upper(N - 1, LO, HI, N) - HI).abs() / HI < 1e-12);
        for i in 0..N - 1 {
            assert!(
                (bucket_upper(i, LO, HI, N) - bucket_lower(i + 1, LO, HI, N)).abs()
                    / bucket_upper(i, LO, HI, N)
                    < 1e-12,
                "buckets must tile"
            );
        }
        // A value maps into a bucket whose edges bracket it.
        for v in [2e-6, 3.4e-4, 0.5, 999.0] {
            let i = bucket_of(v, LO, HI, N);
            assert!(bucket_lower(i, LO, HI, N) <= v * (1.0 + 1e-12));
            assert!(v <= bucket_upper(i, LO, HI, N) * (1.0 + 1e-12));
        }
    }

    #[test]
    fn mid_is_between_edges_and_ratio_bounds_error() {
        let ratio = bucket_ratio(LO, HI, N);
        assert!(ratio > 1.0);
        for i in [0, 7, 31, N - 1] {
            let (lo, mid, hi) = (
                bucket_lower(i, LO, HI, N),
                bucket_mid(i, LO, HI, N),
                bucket_upper(i, LO, HI, N),
            );
            assert!(lo < mid && mid < hi);
            assert!((hi / lo - ratio).abs() / ratio < 1e-12);
            // Geometric mid: worst-case relative error is √ratio.
            assert!(hi / mid <= ratio.sqrt() * (1.0 + 1e-12));
        }
    }

    #[test]
    fn nearest_rank_matches_the_shared_convention() {
        assert_eq!(nearest_rank(0.5, 100), 50);
        assert_eq!(nearest_rank(0.999, 10), 10);
        assert_eq!(nearest_rank(1e-9, 10), 1);
        assert_eq!(nearest_rank(0.5, 1), 1);
    }
}
