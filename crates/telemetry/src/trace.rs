//! Flight-recorder tracing: typed span/event records in fixed-capacity
//! per-thread ring buffers.
//!
//! Metrics ([`Registry`](crate::Registry)) answer *how much*; this
//! module answers *what happened, in what order, and where the time
//! went* inside one dynamics run, replica, or wire request. The design
//! contract mirrors the metrics layer's cheap-when-off rule that
//! `BENCH_9` pinned:
//!
//! * **One relaxed load when disabled.** Every
//!   [`TraceLane::instant`]/[`begin`](TraceLane::begin)/[`end`](TraceLane::end)
//!   starts with a single `Relaxed` load of the enabled flag and
//!   returns immediately when it is clear — no timestamp, no stores,
//!   no branch beyond that one. Recording stays compiled into the hot
//!   paths, exactly like the counters.
//! * **Per-writer ring buffers.** A [`TraceLane`] is a single-writer
//!   handle onto its own fixed-capacity ring (create one per thread;
//!   the type is deliberately `!Sync`). Writes never lock: the lane
//!   head is a plain monotone cursor, and each slot is published
//!   through a per-slot sequence number (odd = mid-write), so a
//!   concurrent [`TraceRecorder::snapshot`] can only ever *skip* a
//!   record being overwritten — never observe a torn one.
//! * **Overwrite-oldest, with the loss on the record.** A full ring
//!   drops the oldest record and ticks the recorder's exact
//!   [`dropped`](TraceRecorder::dropped) counter; the flight recorder
//!   keeps the most recent window, like its aviation namesake.
//! * **Monotonic timestamps.** Every record carries nanoseconds since
//!   the recorder's creation [`Instant`] — wall-clock adjustments can
//!   never reorder a timeline.
//!
//! Events are typed by the closed [`TraceEventKind`] enum — the engine
//! (step pick / delta apply / cache re-probe), the ensemble layer
//! (replica start/finish, snapshot encode/decode/fork), and the server
//! (request admit/serve/reject) — and each carries a caller-chosen
//! 64-bit correlation value. The server threads the wire envelope's
//! correlation id through every span it emits, so a per-request
//! timeline (admission → compute → reply) reconstructs exactly from
//! the drained records.
//!
//! Export is Chrome Trace Event Format JSON
//! ([`TraceSnapshot::to_chrome_json`]): open the dump of
//! `goc run <exp> --trace FILE` / `goc serve --trace FILE` (or a GET
//! of the server's `/trace` endpoint) in `chrome://tracing` or
//! Perfetto.
//!
//! ```
//! use goc_telemetry::trace::{TraceEventKind, TraceRecorder};
//!
//! let recorder = TraceRecorder::new(1024);
//! let lane = recorder.lane();
//! {
//!     let _span = lane.span(TraceEventKind::RequestServe, 42);
//!     lane.instant(TraceEventKind::RequestAdmit, 42);
//! } // span end records on drop
//! let snap = recorder.snapshot();
//! assert_eq!(snap.events.len(), 3);
//! assert_eq!(snap.dropped, 0);
//! assert!(snap.to_chrome_json().contains("\"request_admit\""));
//! ```

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity of one lane, in records. At 32 bytes per slot
/// this is 128 KiB per writer — a few milliseconds of full-rate engine
/// stepping, or thousands of request spans.
pub const DEFAULT_LANE_CAPACITY: usize = 4096;

/// The closed vocabulary of trace events. Keeping it an enum (not
/// strings) keeps a record at four words and the hot path free of
/// allocation; the snake_case [`name`](TraceEventKind::name) is the
/// Chrome-trace event name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventKind {
    /// The learning engine applied one better-response move.
    StepPick,
    /// The learning engine applied one churn delta.
    DeltaApply,
    /// Decision-cache re-probes of a run (correlation = the count).
    CacheReprobe,
    /// An ensemble replica began (correlation = replica index).
    ReplicaStart,
    /// An ensemble replica finished (correlation = replica index).
    ReplicaFinish,
    /// Binary snapshot encode of the shared ensemble universe.
    SnapshotEncode,
    /// Binary snapshot decode (with full revalidation).
    SnapshotDecode,
    /// Per-replica population fork off the decoded snapshot.
    SnapshotFork,
    /// The server admitted a request (correlation = envelope id).
    RequestAdmit,
    /// The server computed + replied to a request (span; correlation =
    /// envelope id).
    RequestServe,
    /// The server rejected a request (correlation = envelope id).
    RequestReject,
}

impl TraceEventKind {
    /// Every kind, in wire-code order (`kind as u64` indexes this).
    pub const ALL: [TraceEventKind; 11] = [
        TraceEventKind::StepPick,
        TraceEventKind::DeltaApply,
        TraceEventKind::CacheReprobe,
        TraceEventKind::ReplicaStart,
        TraceEventKind::ReplicaFinish,
        TraceEventKind::SnapshotEncode,
        TraceEventKind::SnapshotDecode,
        TraceEventKind::SnapshotFork,
        TraceEventKind::RequestAdmit,
        TraceEventKind::RequestServe,
        TraceEventKind::RequestReject,
    ];

    /// The snake_case event name (the Chrome-trace `name` field).
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::StepPick => "step_pick",
            TraceEventKind::DeltaApply => "delta_apply",
            TraceEventKind::CacheReprobe => "cache_reprobe",
            TraceEventKind::ReplicaStart => "replica_start",
            TraceEventKind::ReplicaFinish => "replica_finish",
            TraceEventKind::SnapshotEncode => "snapshot_encode",
            TraceEventKind::SnapshotDecode => "snapshot_decode",
            TraceEventKind::SnapshotFork => "snapshot_fork",
            TraceEventKind::RequestAdmit => "request_admit",
            TraceEventKind::RequestServe => "request_serve",
            TraceEventKind::RequestReject => "request_reject",
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        usize::try_from(code)
            .ok()
            .and_then(|i| Self::ALL.get(i).copied())
    }
}

/// The phase of a record: a span boundary or a point event (Chrome
/// phases `B` / `E` / `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracePhase {
    /// Span begin (`ph: "B"`).
    Begin,
    /// Span end (`ph: "E"`).
    End,
    /// Point event (`ph: "i"`).
    Instant,
}

impl TracePhase {
    /// The Chrome-trace `ph` string.
    pub fn chrome_ph(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(TracePhase::Begin),
            1 => Some(TracePhase::End),
            2 => Some(TracePhase::Instant),
            _ => None,
        }
    }
}

/// One drained record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceEventKind,
    /// Span boundary or point event.
    pub phase: TracePhase,
    /// Monotonic nanoseconds since the recorder was created.
    pub nanos: u64,
    /// The lane (writer ring) that recorded it — the Chrome `tid`.
    pub lane: usize,
    /// Caller-chosen correlation value (wire envelope id, replica
    /// index, re-probe count — see [`TraceEventKind`]).
    pub correlation: u64,
}

/// One ring slot. `seq` is a per-slot publication counter: the single
/// writer makes it odd, stores the fields, makes it even — a reader
/// that sees an even, unchanged `seq` around its field loads has read
/// a whole record, and skips otherwise. (Lanes are single-writer by
/// construction — [`TraceLane`] is `!Sync` and never cloned — so two
/// writers can never interleave on one slot.)
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    word: AtomicU64,
    nanos: AtomicU64,
    corr: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            word: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
            corr: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct LaneCore {
    /// Monotone claim cursor; `head % capacity` is the next slot.
    /// Plain load/store suffices: each lane has exactly one writer.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

#[derive(Debug)]
struct RecorderInner {
    enabled: AtomicBool,
    capacity: usize,
    epoch: Instant,
    dropped: AtomicU64,
    /// Every lane ever created, by index (never shrinks; snapshot
    /// walks it). The free list recycles indices whose handle dropped,
    /// so long-lived processes reuse rings instead of growing.
    lanes: Mutex<Vec<Arc<LaneCore>>>,
    free: Mutex<Vec<usize>>,
}

/// The flight recorder: hands out single-writer [`TraceLane`]s and
/// drains them into a [`TraceSnapshot`]. Clones share the recorder.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    inner: Arc<RecorderInner>,
}

impl TraceRecorder {
    fn build(capacity: usize, enabled: bool) -> Self {
        TraceRecorder {
            inner: Arc::new(RecorderInner {
                enabled: AtomicBool::new(enabled),
                capacity,
                epoch: Instant::now(),
                dropped: AtomicU64::new(0),
                lanes: Mutex::new(Vec::new()),
                free: Mutex::new(Vec::new()),
            }),
        }
    }

    /// An enabled recorder whose lanes hold `capacity` records each
    /// (`capacity` is clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        TraceRecorder::build(capacity.max(1), true)
    }

    /// A recorder built at full capacity but not yet collecting — flip
    /// it on later with [`enable`](TraceRecorder::enable). This is what
    /// [`global`] hands out: lanes cost one relaxed load per event
    /// until (unless) something enables the recorder.
    pub fn standby(capacity: usize) -> Self {
        TraceRecorder::build(capacity.max(1), false)
    }

    /// A permanently-dark recorder: zero-capacity lanes, so it records
    /// nothing even if enabled. The tracing analogue of
    /// [`Registry::disabled`](crate::Registry::disabled).
    pub fn disabled() -> Self {
        TraceRecorder::build(0, false)
    }

    /// Starts collecting. Lanes handed out before the flip record from
    /// now on; nothing retroactive happens.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Whether the recorder is collecting.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity of each lane, in records.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Exact count of records lost to ring overwrite so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the recorder was created — the timestamp any
    /// record written *now* would carry.
    pub fn now_nanos(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a lane: a single-writer ring handle. Create one per
    /// writer thread; dropping it returns the ring to a free list for
    /// the next writer (its records stay drainable meanwhile).
    pub fn lane(&self) -> TraceLane {
        let recycled = self.inner.free.lock().expect("trace free list").pop();
        let (index, core) = match recycled {
            Some(index) => {
                let lanes = self.inner.lanes.lock().expect("trace lane table");
                (index, Arc::clone(&lanes[index]))
            }
            None => {
                let core = Arc::new(LaneCore {
                    head: AtomicU64::new(0),
                    slots: (0..self.inner.capacity).map(|_| Slot::new()).collect(),
                });
                let mut lanes = self.inner.lanes.lock().expect("trace lane table");
                lanes.push(Arc::clone(&core));
                (lanes.len() - 1, core)
            }
        };
        TraceLane {
            inner: Arc::clone(&self.inner),
            core,
            index,
            _single_writer: PhantomData,
        }
    }

    /// Drains a consistent snapshot of every lane's current window,
    /// sorted by timestamp. Records mid-overwrite are skipped (never
    /// torn); recording continues undisturbed.
    pub fn snapshot(&self) -> TraceSnapshot {
        let lanes: Vec<Arc<LaneCore>> = self.inner.lanes.lock().expect("trace lane table").clone();
        let mut events = Vec::new();
        for (lane, core) in lanes.iter().enumerate() {
            let cap = core.slots.len() as u64;
            if cap == 0 {
                continue;
            }
            let head = core.head.load(Ordering::Acquire);
            let window = head.min(cap);
            for logical in (head - window)..head {
                let slot = &core.slots[(logical % cap) as usize];
                let seq = slot.seq.load(Ordering::Acquire);
                if seq % 2 != 0 {
                    continue; // mid-write
                }
                let word = slot.word.load(Ordering::Acquire);
                let nanos = slot.nanos.load(Ordering::Acquire);
                let correlation = slot.corr.load(Ordering::Acquire);
                if slot.seq.load(Ordering::Acquire) != seq {
                    continue; // overwritten while reading
                }
                let (Some(kind), Some(phase)) = (
                    TraceEventKind::from_code(word >> 8),
                    TracePhase::from_code(word & 0xff),
                ) else {
                    continue;
                };
                events.push(TraceEvent {
                    kind,
                    phase,
                    nanos,
                    lane,
                    correlation,
                });
            }
        }
        events.sort_by_key(|e| (e.nanos, e.lane));
        TraceSnapshot {
            enabled: self.is_enabled(),
            dropped: self.dropped(),
            events,
        }
    }
}

/// The process-wide default recorder, created on standby at
/// [`DEFAULT_LANE_CAPACITY`]. Layers that have no natural place to
/// thread a recorder handle through (the ensemble engine under an
/// arbitrary experiment) record here; `goc run --trace` / `goc serve
/// --trace` enable it and dump it. Until something enables it, every
/// event is the one-relaxed-load no-op.
pub fn global() -> &'static TraceRecorder {
    static GLOBAL: OnceLock<TraceRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| TraceRecorder::standby(DEFAULT_LANE_CAPACITY))
}

/// A single-writer handle onto one ring of a [`TraceRecorder`].
///
/// Deliberately `!Sync` (and not `Clone`): exactly one thread writes a
/// lane, which is what makes the lock-free slot publication sound.
/// Send it *to* a thread, don't share it between threads — open one
/// lane per writer instead.
#[derive(Debug)]
pub struct TraceLane {
    inner: Arc<RecorderInner>,
    core: Arc<LaneCore>,
    index: usize,
    _single_writer: PhantomData<Cell<u8>>,
}

impl TraceLane {
    /// This lane's index (the Chrome-trace `tid` its records carry).
    pub fn id(&self) -> usize {
        self.index
    }

    /// Records a point event.
    #[inline]
    pub fn instant(&self, kind: TraceEventKind, correlation: u64) {
        self.record(kind, TracePhase::Instant, correlation);
    }

    /// Records a span begin. Prefer [`span`](TraceLane::span) unless
    /// the begin and end live in different scopes.
    #[inline]
    pub fn begin(&self, kind: TraceEventKind, correlation: u64) {
        self.record(kind, TracePhase::Begin, correlation);
    }

    /// Records a span end.
    #[inline]
    pub fn end(&self, kind: TraceEventKind, correlation: u64) {
        self.record(kind, TracePhase::End, correlation);
    }

    /// Records a span begin now and the matching end when the guard
    /// drops.
    #[must_use = "the span ends when the guard drops"]
    pub fn span(&self, kind: TraceEventKind, correlation: u64) -> TraceSpan<'_> {
        self.begin(kind, correlation);
        TraceSpan {
            lane: self,
            kind,
            correlation,
        }
    }

    #[inline]
    fn record(&self, kind: TraceEventKind, phase: TracePhase, correlation: u64) {
        // The whole cost when disabled: this one relaxed load.
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let cap = self.core.slots.len() as u64;
        if cap == 0 {
            return; // a TraceRecorder::disabled() lane, enabled anyway
        }
        let nanos = self.inner.epoch.elapsed().as_nanos() as u64;
        let head = self.core.head.load(Ordering::Relaxed);
        if head >= cap {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let slot = &self.core.slots[(head % cap) as usize];
        slot.seq.fetch_add(1, Ordering::Release); // odd: mid-write
        slot.word
            .store((kind as u64) << 8 | phase as u64, Ordering::Relaxed);
        slot.nanos.store(nanos, Ordering::Relaxed);
        slot.corr.store(correlation, Ordering::Relaxed);
        slot.seq.fetch_add(1, Ordering::Release); // even: published
        self.core.head.store(head + 1, Ordering::Release);
    }
}

impl Drop for TraceLane {
    fn drop(&mut self) {
        // Recycle the ring for the next writer; records stay readable.
        self.inner
            .free
            .lock()
            .expect("trace free list")
            .push(self.index);
    }
}

/// RAII span guard from [`TraceLane::span`]: records the matching
/// [`TracePhase::End`] on drop.
#[derive(Debug)]
pub struct TraceSpan<'a> {
    lane: &'a TraceLane,
    kind: TraceEventKind,
    correlation: u64,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        self.lane.end(self.kind, self.correlation);
    }
}

/// A drained recorder: the event window plus the loss accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Whether the recorder was collecting at drain time.
    pub enabled: bool,
    /// Exact count of records lost to ring overwrite.
    pub dropped: u64,
    /// The retained records, ascending by timestamp.
    pub events: Vec<TraceEvent>,
}

impl TraceSnapshot {
    /// All events carrying `correlation`, in timestamp order — the
    /// per-request timeline the server's correlation-id threading
    /// exists for.
    pub fn timeline(&self, correlation: u64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.correlation == correlation)
            .collect()
    }

    /// Renders Chrome Trace Event Format JSON (the `traceEvents` array
    /// form): open in `chrome://tracing` or Perfetto. Timestamps are
    /// microseconds (`ts`), lanes are `tid`s, and every event carries
    /// its correlation value in `args`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":");
        out.push_str(&self.dropped.to_string());
        out.push_str("},\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Every name/ph below is a static identifier — nothing to
            // escape.
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"goc\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3}{}{}",
                e.kind.name(),
                e.phase.chrome_ph(),
                e.lane,
                e.nanos as f64 / 1e3,
                if e.phase == TracePhase::Instant {
                    ",\"s\":\"t\""
                } else {
                    ""
                },
                format_args!(",\"args\":{{\"correlation\":{}}}}}", e.correlation),
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_record_in_order() {
        let recorder = TraceRecorder::new(16);
        let lane = recorder.lane();
        {
            let _serve = lane.span(TraceEventKind::RequestServe, 7);
            lane.instant(TraceEventKind::RequestAdmit, 7);
        }
        let snap = recorder.snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.dropped, 0);
        let kinds: Vec<(TraceEventKind, TracePhase)> =
            snap.events.iter().map(|e| (e.kind, e.phase)).collect();
        assert_eq!(
            kinds,
            vec![
                (TraceEventKind::RequestServe, TracePhase::Begin),
                (TraceEventKind::RequestAdmit, TracePhase::Instant),
                (TraceEventKind::RequestServe, TracePhase::End),
            ]
        );
        let nanos: Vec<u64> = snap.events.iter().map(|e| e.nanos).collect();
        assert!(nanos.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(snap.timeline(7).len(), 3);
        assert!(snap.timeline(8).is_empty());
    }

    #[test]
    fn overwrite_keeps_the_newest_window_and_counts_drops_exactly() {
        let recorder = TraceRecorder::new(8);
        let lane = recorder.lane();
        for i in 0..20u64 {
            lane.instant(TraceEventKind::StepPick, i);
        }
        let snap = recorder.snapshot();
        assert_eq!(snap.events.len(), 8);
        assert_eq!(snap.dropped, 12);
        let correlations: Vec<u64> = snap.events.iter().map(|e| e.correlation).collect();
        assert_eq!(correlations, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn disabled_and_standby_recorders_emit_nothing() {
        for recorder in [TraceRecorder::disabled(), TraceRecorder::standby(8)] {
            let lane = recorder.lane();
            lane.instant(TraceEventKind::StepPick, 1);
            let _span = lane.span(TraceEventKind::RequestServe, 2);
            let snap = recorder.snapshot();
            assert!(!snap.enabled);
            assert!(snap.events.is_empty());
            assert_eq!(snap.dropped, 0);
        }
    }

    #[test]
    fn standby_recorders_collect_after_enable() {
        let recorder = TraceRecorder::standby(8);
        let lane = recorder.lane();
        lane.instant(TraceEventKind::StepPick, 1); // dark
        recorder.enable();
        lane.instant(TraceEventKind::StepPick, 2);
        let snap = recorder.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].correlation, 2);
    }

    #[test]
    fn dropped_lanes_are_recycled_and_their_records_survive() {
        let recorder = TraceRecorder::new(8);
        let first = recorder.lane();
        let first_id = first.id();
        first.instant(TraceEventKind::ReplicaStart, 0);
        drop(first);
        let second = recorder.lane();
        assert_eq!(second.id(), first_id, "freed lanes are reused");
        second.instant(TraceEventKind::ReplicaFinish, 0);
        let snap = recorder.snapshot();
        assert_eq!(snap.events.len(), 2);
    }

    #[test]
    fn kind_codes_round_trip() {
        for (i, kind) in TraceEventKind::ALL.into_iter().enumerate() {
            assert_eq!(kind as u64, i as u64);
            assert_eq!(TraceEventKind::from_code(i as u64), Some(kind));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(TraceEventKind::from_code(99), None);
        for code in 0..3 {
            let phase = TracePhase::from_code(code).expect("valid phase");
            assert_eq!(phase as u64, code);
        }
        assert_eq!(TracePhase::from_code(3), None);
    }

    #[test]
    fn global_recorder_is_shared_and_starts_dark() {
        let a = global();
        let b = global();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        assert_eq!(a.capacity(), DEFAULT_LANE_CAPACITY);
    }
}
