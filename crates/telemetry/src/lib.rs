//! # goc-telemetry — workspace-wide observability primitives
//!
//! The engine runs as a long-lived service (ROADMAP, "Game-of-Coins as
//! a service"), and a service needs in-flight visibility, not just the
//! final report: request rates, rejection counts by reason, latency
//! distributions, step rates. This crate is the one instrumentation
//! substrate every layer shares:
//!
//! * [`Counter`] / [`Gauge`] — lock-free relaxed atomics. An increment
//!   is exactly one `fetch_add(1, Relaxed)`: no lock, no allocation,
//!   no branch on the hot path, whether or not a registry is watching.
//! * [`LatencyHistogram`] — a fixed-bucket histogram over the same
//!   geometric bucketing scheme `ensemble::aggregate::QuantileSketch`
//!   proved out for the Monte-Carlo layer ([`HIST_BUCKETS`] buckets,
//!   log-uniform over `[`[`HIST_LO`]`, `[`HIST_HI`]`]` seconds), with
//!   non-finite observations skipped and counted, never folded in.
//! * [`Registry`] — names the instruments and snapshots them on read.
//!   Registration is the only locking path (a `Mutex` around the name
//!   table, taken once per *instrument*, never per event). A
//!   [`Registry::disabled`] registry hands out detached instruments:
//!   call sites increment the same plain atomics and the registry
//!   keeps no names, so disabled instrumentation costs one relaxed
//!   atomic op per event and nothing on read.
//! * [`MetricsSnapshot`] — the snapshot-on-read form: a plain serde
//!   value for the wire (`Request::Metrics` / `Status`), with a
//!   Prometheus-style text exposition ([`MetricsSnapshot::render_text`])
//!   for scrapers and humans.
//!
//! ```
//! use goc_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let served = registry.counter("goc_server_served_total");
//! served.inc();
//! let wall = registry.histogram("goc_request_secs");
//! wall.observe(0.012);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("goc_server_served_total"), Some(1));
//! assert!(snap.render_text().contains("goc_server_served_total 1"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod quantile;
pub mod trace;

pub use trace::{TraceEvent, TraceEventKind, TraceLane, TracePhase, TraceRecorder, TraceSnapshot};

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Buckets of a [`LatencyHistogram`]. 64 log-uniform buckets over nine
/// decades resolve ~1.38× per bucket — enough to tell a 1 ms request
/// from a 2 ms one, at 512 bytes of counters per histogram.
pub const HIST_BUCKETS: usize = 64;

/// Lower edge of the histogram range, in seconds (1 µs — below the
/// resolution of anything the workspace times).
pub const HIST_LO: f64 = 1e-6;

/// Upper edge of the histogram range, in seconds (1000 s — beyond any
/// sane request or convergence wall time; larger values clamp here).
pub const HIST_HI: f64 = 1e3;

/// The geometric bucket index of `x` seconds — the shared
/// [`quantile`] scheme over the latency range (the same math
/// `QuantileSketch` uses over its count range).
fn bucket_of(x: f64) -> usize {
    quantile::bucket_of(x, HIST_LO, HIST_HI, HIST_BUCKETS)
}

/// The upper edge of bucket `i`, in seconds.
fn bucket_upper(i: usize) -> f64 {
    quantile::bucket_upper(i, HIST_LO, HIST_HI, HIST_BUCKETS)
}

// ---------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------

/// A monotonically increasing event count. Clones share the cell, so a
/// handle can live on a hot path while the registry snapshots the same
/// value.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A detached counter (what a disabled registry hands out).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one. One relaxed atomic op; never locks or allocates.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (in-flight requests, open sessions).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A detached gauge (what a disabled registry hands out).
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.cell.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Per-bucket observation counts (not cumulative; the text
    /// exposition accumulates on read).
    counts: Vec<AtomicU64>,
    /// Total finite observations (always the sum of `counts`).
    total: AtomicU64,
    /// Non-finite or negative observations, skipped by the buckets.
    skipped: AtomicU64,
    /// Sum of finite observations, in nanoseconds.
    sum_nanos: AtomicU64,
    /// Smallest finite observation, in nanoseconds (`u64::MAX` = none).
    min_nanos: AtomicU64,
    /// Largest finite observation, in nanoseconds.
    max_nanos: AtomicU64,
}

/// A fixed-bucket latency histogram over [`HIST_BUCKETS`] geometric
/// buckets spanning `[HIST_LO, HIST_HI]` seconds.
///
/// An observation is a handful of relaxed atomic ops (bucket, total,
/// sum, min/max) — no lock, no allocation. Snapshots are taken bucket
/// by bucket with relaxed loads; a snapshot raced against writers is a
/// *consistent underestimate* (its bucket sum still equals its total
/// by construction of [`LatencyHistogram::snapshot`]).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    core: Arc<HistogramCore>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        let counts = (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        LatencyHistogram {
            core: Arc::new(HistogramCore {
                counts,
                total: AtomicU64::new(0),
                skipped: AtomicU64::new(0),
                sum_nanos: AtomicU64::new(0),
                min_nanos: AtomicU64::new(u64::MAX),
                max_nanos: AtomicU64::new(0),
            }),
        }
    }
}

impl LatencyHistogram {
    /// A detached histogram (what a disabled registry hands out).
    pub fn detached() -> Self {
        LatencyHistogram::default()
    }

    /// Records one observation of `secs`. Non-finite or negative
    /// values are skipped and counted (`QuantileSketch`'s rule: a NaN
    /// must never poison a distribution silently).
    #[inline]
    pub fn observe(&self, secs: f64) {
        if !secs.is_finite() || secs < 0.0 {
            self.core.skipped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let nanos = (secs * 1e9).min(u64::MAX as f64) as u64;
        self.core.counts[bucket_of(secs)].fetch_add(1, Ordering::Relaxed);
        self.core.total.fetch_add(1, Ordering::Relaxed);
        self.core.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.core.min_nanos.fetch_min(nanos, Ordering::Relaxed);
        self.core.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records a [`Duration`] observation.
    #[inline]
    pub fn observe_duration(&self, elapsed: Duration) {
        self.observe(elapsed.as_secs_f64());
    }

    /// Total finite observations recorded so far.
    pub fn count(&self) -> u64 {
        self.core.total.load(Ordering::Relaxed)
    }

    /// Snapshots the histogram. The bucket counts are read first and
    /// the reported `count` is their sum, so the invariant
    /// `sum(buckets) == count` holds even when writers race the read.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, cell) in self.core.counts.iter().enumerate() {
            let c = cell.load(Ordering::Relaxed);
            if c > 0 {
                count += c;
                buckets.push(BucketCount {
                    upper_secs: bucket_upper(i),
                    count: c,
                });
            }
        }
        let min_nanos = self.core.min_nanos.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            skipped: self.core.skipped.load(Ordering::Relaxed),
            sum_secs: self.core.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            min_secs: if min_nanos == u64::MAX {
                0.0
            } else {
                min_nanos as f64 / 1e9
            },
            max_secs: self.core.max_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            buckets,
        }
    }
}

// ---------------------------------------------------------------------
// Snapshots (the wire / exposition form)
// ---------------------------------------------------------------------

/// One counter at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered name (may carry `{label="value"}` suffixes).
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// One non-empty histogram bucket at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Upper edge of the bucket, in seconds.
    pub upper_secs: f64,
    /// Observations that landed in this bucket (not cumulative).
    pub count: u64,
}

/// One histogram at snapshot time. `sum(buckets[].count) == count` by
/// construction ([`LatencyHistogram::snapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Finite observations.
    pub count: u64,
    /// Non-finite / negative observations skipped by the buckets.
    pub skipped: u64,
    /// Sum of finite observations, seconds.
    pub sum_secs: f64,
    /// Smallest finite observation, seconds (0 when `count == 0`).
    pub min_secs: f64,
    /// Largest finite observation, seconds.
    pub max_secs: f64,
    /// The non-empty buckets, ascending by `upper_secs`.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile estimate, `q` in `[0, 1]`: exact min/max
    /// at the extremes, the bucket upper edge in between (the same
    /// contract as `QuantileSketch::quantile`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min_secs;
        }
        if q >= 1.0 {
            return self.max_secs;
        }
        let rank = quantile::nearest_rank(q, self.count);
        let mut seen = 0u64;
        for bucket in &self.buckets {
            seen += bucket.count;
            if seen >= rank {
                return bucket.upper_secs.min(self.max_secs).max(self.min_secs);
            }
        }
        self.max_secs
    }
}

/// The snapshot-on-read form of a whole [`Registry`]: plain data, so it
/// crosses the wire as JSON and renders as a text exposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Whether the registry was collecting (a disabled registry
    /// snapshots empty, with this flag false).
    pub enabled: bool,
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Escapes a label value per the Prometheus exposition-format spec:
/// backslash, double quote, and line feed become `\\`, `\"`, and `\n`.
/// Any other byte passes through untouched.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Splices a `label="value"` pair into a metric name, inside the
/// existing `{...}` group when the name already carries one — how
/// callers spell labeled registrations, e.g.
/// `registry.counter(&with_label("goc_server_rejected_total", "reason", "draining"))`.
/// The value is escaped ([`escape_label_value`]) so a quote, backslash,
/// or newline can never break the exposition.
pub fn with_label(name: &str, label: &str, value: &str) -> String {
    let value = escape_label_value(value);
    match name.strip_suffix('}') {
        Some(open) => format!("{open},{label}=\"{value}\"}}"),
        None => format!("{name}{{{label}=\"{value}\"}}"),
    }
}

/// The metric family name: everything before the `{` of a labeled name.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Appends a family suffix (`_bucket`, `_sum`, `_count`) to a metric
/// name, keeping any label group after it per Prometheus convention:
/// `secs{kind="x"}` + `_sum` → `secs_sum{kind="x"}`.
fn with_suffix(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(idx) => format!("{}{}{}", &name[..idx], suffix, &name[idx..]),
        None => format!("{name}{suffix}"),
    }
}

impl MetricsSnapshot {
    /// An empty snapshot (what a disabled registry reports).
    pub fn empty() -> Self {
        MetricsSnapshot {
            enabled: false,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Looks up a counter value by exact registered name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Sums every counter whose family (the name with any `{label}`
    /// group stripped) is `family` — the total across all labeled
    /// variants.
    pub fn counter_family_total(&self, family: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| base_name(&c.name) == family)
            .map(|c| c.value)
            .sum()
    }

    /// Looks up a gauge value by exact registered name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by exact registered name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the Prometheus-style text exposition: one `# TYPE` line
    /// per metric family, `name value` samples, and the conventional
    /// cumulative `_bucket{le=...}` / `_sum` / `_count` triple per
    /// histogram. Deterministic: families appear in name order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for c in &self.counters {
            let family = base_name(&c.name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} counter\n"));
                last_family = family.to_string();
            }
            out.push_str(&format!("{} {}\n", c.name, c.value));
        }
        for g in &self.gauges {
            let family = base_name(&g.name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} gauge\n"));
                last_family = family.to_string();
            }
            out.push_str(&format!("{} {}\n", g.name, g.value));
        }
        for h in &self.histograms {
            let family = base_name(&h.name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} histogram\n"));
                last_family = family.to_string();
            }
            let bucket_name = with_suffix(&h.name, "_bucket");
            let mut cumulative = 0u64;
            for bucket in &h.buckets {
                cumulative += bucket.count;
                let le = format!("{:.6}", bucket.upper_secs);
                out.push_str(&format!(
                    "{} {}\n",
                    with_label(&bucket_name, "le", &le),
                    cumulative
                ));
            }
            out.push_str(&format!(
                "{} {}\n",
                with_label(&bucket_name, "le", "+Inf"),
                h.count
            ));
            out.push_str(&format!(
                "{} {:.9}\n",
                with_suffix(&h.name, "_sum"),
                h.sum_secs
            ));
            out.push_str(&format!("{} {}\n", with_suffix(&h.name, "_count"), h.count));
        }
        out
    }

    /// The JSON form of the snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshots are plain data")
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct Slots {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, LatencyHistogram)>,
}

#[derive(Debug)]
struct RegistryInner {
    enabled: bool,
    slots: Mutex<Slots>,
}

/// Names instruments and snapshots them on read.
///
/// Clones share the underlying table, so one registry can be handed to
/// every layer of a process. Registering the same name twice returns a
/// handle to the *same* instrument — repeated runs accumulate instead
/// of shadowing. The `Mutex` guards registration and snapshot only;
/// increments on handed-out instruments never touch it.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An enabled, collecting registry.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                enabled: true,
                slots: Mutex::new(Slots::default()),
            }),
        }
    }

    /// A disabled registry: hands out detached instruments (plain
    /// relaxed atomics, unnamed and unretained) and snapshots empty.
    pub fn disabled() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                enabled: false,
                slots: Mutex::new(Slots::default()),
            }),
        }
    }

    /// Whether this registry is collecting.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Registers (or re-opens) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.inner.enabled {
            return Counter::detached();
        }
        let mut slots = self.inner.slots.lock().expect("registry lock");
        if let Some((_, c)) = slots.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        slots.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Registers (or re-opens) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.inner.enabled {
            return Gauge::detached();
        }
        let mut slots = self.inner.slots.lock().expect("registry lock");
        if let Some((_, g)) = slots.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        slots.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Registers (or re-opens) the histogram `name`.
    pub fn histogram(&self, name: &str) -> LatencyHistogram {
        if !self.inner.enabled {
            return LatencyHistogram::detached();
        }
        let mut slots = self.inner.slots.lock().expect("registry lock");
        if let Some((_, h)) = slots.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = LatencyHistogram::default();
        slots.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Snapshots every registered instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        if !self.inner.enabled {
            return MetricsSnapshot::empty();
        }
        let slots = self.inner.slots.lock().expect("registry lock");
        let mut counters: Vec<CounterSnapshot> = slots
            .counters
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSnapshot> = slots
            .gauges
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = slots
            .histograms
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            enabled: true,
            counters,
            gauges,
            histograms,
        }
    }

    /// Renders the current state as a Prometheus-style text exposition.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let registry = Registry::new();
        let c = registry.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = registry.gauge("g");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c_total"), Some(5));
        assert_eq!(snap.gauge("g"), Some(-7));
    }

    #[test]
    fn registering_a_name_twice_shares_the_instrument() {
        let registry = Registry::new();
        registry.counter("shared").inc();
        registry.counter("shared").inc();
        assert_eq!(registry.snapshot().counter("shared"), Some(2));
        assert_eq!(registry.snapshot().counters.len(), 1);
        registry.histogram("h").observe(0.5);
        registry.histogram("h").observe(0.5);
        assert_eq!(registry.snapshot().histogram("h").unwrap().count, 2);
    }

    #[test]
    fn disabled_registries_stay_silent_but_instruments_work() {
        let registry = Registry::disabled();
        let c = registry.counter("never_seen");
        c.inc();
        assert_eq!(c.get(), 1, "detached instruments still count");
        let h = registry.histogram("never_seen_secs");
        h.observe(1.0);
        assert_eq!(h.count(), 1);
        let snap = registry.snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.render_text().is_empty());
    }

    #[test]
    fn bucket_scheme_is_monotone_and_total_preserving() {
        let h = LatencyHistogram::default();
        let values = [0.0, 1e-9, 1e-6, 3.4e-4, 0.02, 1.0, 55.0, 999.0, 1e7];
        for v in values {
            h.observe(v);
        }
        let snap = h.snapshot("t");
        assert_eq!(snap.count, values.len() as u64);
        assert_eq!(
            snap.buckets.iter().map(|b| b.count).sum::<u64>(),
            snap.count
        );
        // Bucket uppers ascend; bucket_of is monotone in its input.
        for pair in snap.buckets.windows(2) {
            assert!(pair[0].upper_secs < pair[1].upper_secs);
        }
        let mut last = 0;
        for v in [1e-6, 1e-4, 1e-2, 1.0, 100.0] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket_of must be monotone");
            last = b;
        }
        assert_eq!(bucket_of(HIST_HI * 10.0), HIST_BUCKETS - 1);
        assert_eq!(bucket_of(0.0), 0);
    }

    #[test]
    fn non_finite_observations_are_skipped_and_counted() {
        let h = LatencyHistogram::default();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(-1.0);
        h.observe(0.5);
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 1);
        assert_eq!(snap.skipped, 4);
        assert!((snap.sum_secs - 0.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let h = LatencyHistogram::default();
        for i in 1..=100 {
            h.observe(i as f64 / 1000.0); // 1ms ..= 100ms
        }
        let snap = h.snapshot("t");
        assert!((snap.quantile(0.0) - 0.001).abs() < 1e-9);
        assert!((snap.quantile(1.0) - 0.1).abs() < 1e-9);
        let p50 = snap.quantile(0.5);
        assert!(
            (0.04..=0.08).contains(&p50),
            "p50 {p50} should approximate 50ms within a bucket"
        );
        let p99 = snap.quantile(0.99);
        assert!(p99 >= p50 && p99 <= snap.max_secs);
    }

    #[test]
    fn text_exposition_follows_prometheus_conventions() {
        let registry = Registry::new();
        registry.counter("goc_served_total").add(3);
        registry
            .counter("goc_rejected_total{reason=\"draining\"}")
            .inc();
        registry
            .counter("goc_rejected_total{reason=\"session_limit\"}")
            .add(2);
        registry.gauge("goc_inflight").set(1);
        let h = registry.histogram("goc_request_secs");
        h.observe(0.001);
        h.observe(0.002);
        let text = registry.render_text();
        assert!(text.contains("# TYPE goc_served_total counter\n"));
        assert!(text.contains("goc_served_total 3\n"));
        // One TYPE line per family, not per labeled variant.
        assert_eq!(text.matches("# TYPE goc_rejected_total counter").count(), 1);
        assert!(text.contains("goc_rejected_total{reason=\"draining\"} 1\n"));
        assert!(text.contains("# TYPE goc_inflight gauge\n"));
        assert!(text.contains("goc_inflight 1\n"));
        assert!(text.contains("# TYPE goc_request_secs histogram\n"));
        assert!(text.contains("goc_request_secs_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("goc_request_secs_count 2\n"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn labels_splice_into_existing_groups() {
        assert_eq!(with_label("m", "le", "1"), "m{le=\"1\"}");
        assert_eq!(
            with_label("m{kind=\"status\"}", "le", "1"),
            "m{kind=\"status\",le=\"1\"}"
        );
        assert_eq!(base_name("m{kind=\"status\"}"), "m");
        assert_eq!(base_name("m"), "m");
    }

    #[test]
    fn label_values_escape_per_exposition_spec() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
        // with_label applies the escaping, so a hostile value cannot
        // terminate the quoted string or the sample line.
        let name = with_label("m", "path", "C:\\tmp\n\"x\"");
        assert_eq!(name, "m{path=\"C:\\\\tmp\\n\\\"x\\\"\"}");
        assert!(!name.contains('\n'));
        let registry = Registry::new();
        registry.counter(&name).inc();
        let text = registry.render_text();
        assert_eq!(text.lines().count(), 2, "one TYPE line + one sample");
        assert!(text.contains("m{path=\"C:\\\\tmp\\n\\\"x\\\"\"} 1\n"));
    }

    #[test]
    fn snapshots_round_trip_through_json() {
        let registry = Registry::new();
        registry.counter("a_total").add(7);
        registry.gauge("b").set(-2);
        registry.histogram("c_secs").observe(0.25);
        let snap = registry.snapshot();
        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        assert_eq!(back, snap);
        assert_eq!(back.counter_family_total("a_total"), 7);
    }
}
