//! Structured experiment run reports.
//!
//! Every registered experiment (see `goc-experiments`) returns a
//! [`RunReport`]: an ordered list of notes, tables, and charts, plus
//! pass/fail [`Check`]s replacing ad-hoc `assert!`s and named CSV
//! [`Artifact`]s. A report renders either as the traditional ASCII
//! output ([`RunReport::render_ascii`]) or as machine-readable JSON
//! ([`RunReport::to_json`]), which is what `goc run <exp> --json` emits
//! and `goc sweep` aggregates.
//!
//! ```
//! use goc_analysis::report::RunReport;
//!
//! let mut report = RunReport::new("demo", "a demonstration report");
//! report.param("miners", "200");
//! report.note("everything nominal");
//! report.check("sanity", 1 + 1 == 2, "arithmetic still works");
//! assert!(report.passed());
//! assert!(report.render_ascii().contains("demo"));
//! assert!(report.to_json().contains("\"checks\""));
//! ```

use serde::{Deserialize, Serialize};

use crate::chart::{ascii_chart, Series};
use crate::table::Table;

/// An owned, serializable named series (the report-side mirror of the
/// borrowing [`Series`] used for rendering).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesData {
    /// Legend label.
    pub name: String,
    /// Y values (same length as the owning chart's x-axis).
    pub values: Vec<f64>,
    /// Plot symbol used in ASCII rendering.
    pub symbol: char,
}

/// An owned, serializable chart: one x-axis shared by several series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChartData {
    /// Chart caption.
    pub title: String,
    /// Shared x-axis values.
    pub xs: Vec<f64>,
    /// The plotted series.
    pub series: Vec<SeriesData>,
}

impl ChartData {
    /// Creates a chart; every series must match the x-axis length.
    ///
    /// # Panics
    ///
    /// Panics if a series length differs from `xs.len()`.
    pub fn new<S: Into<String>>(title: S, xs: Vec<f64>, series: Vec<SeriesData>) -> Self {
        for s in &series {
            assert_eq!(
                s.values.len(),
                xs.len(),
                "series '{}' length mismatch",
                s.name
            );
        }
        ChartData {
            title: title.into(),
            xs,
            series,
        }
    }

    /// Renders via [`ascii_chart`] at the standard report size.
    pub fn render_ascii(&self) -> String {
        let series: Vec<Series<'_>> = self
            .series
            .iter()
            .map(|s| Series {
                name: &s.name,
                values: &s.values,
                symbol: s.symbol,
            })
            .collect();
        format!("{}\n{}", self.title, ascii_chart(&self.xs, &series, 72, 12))
    }
}

/// An owned, serializable table (headers plus string rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableData {
    /// Table caption (may be empty).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row matches the header width.
    pub rows: Vec<Vec<String>>,
}

impl TableData {
    /// Captures an analysis [`Table`] with a caption.
    pub fn from_table<S: Into<String>>(title: S, table: &Table) -> Self {
        TableData {
            title: title.into(),
            headers: table.headers().to_vec(),
            rows: table.rows().to_vec(),
        }
    }

    /// Rebuilds a renderable [`Table`].
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(self.headers.clone());
        for row in &self.rows {
            t.row(row.clone());
        }
        t
    }

    /// Renders the caption (if any) plus the aligned ASCII table.
    pub fn render_ascii(&self) -> String {
        let body = self.to_table().render();
        if self.title.is_empty() {
            body
        } else {
            format!("{}\n{}", self.title, body)
        }
    }
}

/// One verified claim: an assertion turned into data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Check {
    /// Short identifier of the claim.
    pub name: String,
    /// Whether the claim held on this run.
    pub passed: bool,
    /// Human-readable evidence (measured values, context).
    pub detail: String,
}

/// A named CSV payload the experiment would traditionally write to
/// `results/`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Artifact {
    /// File name (e.g. `fig1.csv`).
    pub name: String,
    /// File contents.
    pub contents: String,
}

/// An ordered report content block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReportItem {
    /// Free-form prose.
    Note(String),
    /// A captioned table.
    Table(TableData),
    /// A captioned chart.
    Chart(ChartData),
}

/// The structured result of one experiment run.
///
/// Built incrementally by experiment code, then rendered once at the
/// edge (binary, CLI, or sweep aggregation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Registry name of the experiment (e.g. `fig1`).
    pub experiment: String,
    /// One-line human title.
    pub title: String,
    /// Run parameters, as displayed key/value pairs.
    pub params: Vec<(String, String)>,
    /// Ordered content blocks.
    pub items: Vec<ReportItem>,
    /// Pass/fail claims verified during the run.
    pub checks: Vec<Check>,
    /// CSV artifacts produced by the run.
    pub artifacts: Vec<Artifact>,
}

impl RunReport {
    /// Creates an empty report.
    pub fn new<S: Into<String>, T: Into<String>>(experiment: S, title: T) -> Self {
        RunReport {
            experiment: experiment.into(),
            title: title.into(),
            params: Vec::new(),
            items: Vec::new(),
            checks: Vec::new(),
            artifacts: Vec::new(),
        }
    }

    /// Records a run parameter.
    pub fn param<K: Into<String>, V: Into<String>>(&mut self, key: K, value: V) -> &mut Self {
        self.params.push((key.into(), value.into()));
        self
    }

    /// Appends a prose note.
    pub fn note<S: Into<String>>(&mut self, text: S) -> &mut Self {
        self.items.push(ReportItem::Note(text.into()));
        self
    }

    /// Appends a captioned table.
    pub fn table<S: Into<String>>(&mut self, title: S, table: &Table) -> &mut Self {
        self.items
            .push(ReportItem::Table(TableData::from_table(title, table)));
        self
    }

    /// Appends a chart.
    pub fn chart(&mut self, chart: ChartData) -> &mut Self {
        self.items.push(ReportItem::Chart(chart));
        self
    }

    /// Records a checked claim.
    pub fn check<N: Into<String>, D: Into<String>>(
        &mut self,
        name: N,
        passed: bool,
        detail: D,
    ) -> &mut Self {
        self.checks.push(Check {
            name: name.into(),
            passed,
            detail: detail.into(),
        });
        self
    }

    /// Records a CSV artifact.
    pub fn artifact<N: Into<String>, C: Into<String>>(
        &mut self,
        name: N,
        contents: C,
    ) -> &mut Self {
        self.artifacts.push(Artifact {
            name: name.into(),
            contents: contents.into(),
        });
        self
    }

    /// Whether every check passed (vacuously true with no checks).
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// `passed/total` check counts.
    pub fn check_counts(&self) -> (usize, usize) {
        (
            self.checks.iter().filter(|c| c.passed).count(),
            self.checks.len(),
        )
    }

    /// One-line summary (used by `goc list` style overviews and sweep
    /// progress).
    pub fn summary_line(&self) -> String {
        let (ok, total) = self.check_counts();
        format!(
            "{:<12} {} — checks {ok}/{total}{}",
            self.experiment,
            if self.passed() { "PASS" } else { "FAIL" },
            if self.artifacts.is_empty() {
                String::new()
            } else {
                format!(", {} artifact(s)", self.artifacts.len())
            }
        )
    }

    /// Renders the traditional terminal output: banner, parameters,
    /// content blocks in order, then the check summary.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let line = format!("{} — {}", self.experiment, self.title);
        out.push_str(&"=".repeat(line.len() + 4));
        out.push('\n');
        out.push_str(&format!("| {line} |\n"));
        out.push_str(&"=".repeat(line.len() + 4));
        out.push_str("\n\n");
        if !self.params.is_empty() {
            let kv: Vec<String> = self
                .params
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&format!("parameters: {}\n\n", kv.join(", ")));
        }
        for item in &self.items {
            match item {
                ReportItem::Note(text) => out.push_str(&format!("{text}\n\n")),
                ReportItem::Table(t) => out.push_str(&format!("{}\n", t.render_ascii())),
                ReportItem::Chart(c) => out.push_str(&format!("{}\n", c.render_ascii())),
            }
        }
        if !self.checks.is_empty() {
            out.push_str("checks:\n");
            for c in &self.checks {
                out.push_str(&format!(
                    "  [{}] {} — {}\n",
                    if c.passed { "PASS" } else { "FAIL" },
                    c.name,
                    c.detail
                ));
            }
            let (ok, total) = self.check_counts();
            out.push_str(&format!("{ok}/{total} checks passed\n"));
        }
        out
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports always serialize")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error message on malformed input.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut report = RunReport::new("fig1", "BTC to BCH migration");
        report.param("miners", "200").param("days", "100");
        report.note("market calibrated to Nov 2017");
        let mut t = Table::new(vec!["coin", "share"]);
        t.row(vec!["BTC".into(), "0.89".into()]);
        t.row(vec!["BCH".into(), "0.11".into()]);
        report.table("hashrate shares", &t);
        report.chart(ChartData::new(
            "BCH share",
            vec![0.0, 1.0, 2.0],
            vec![SeriesData {
                name: "share".into(),
                values: vec![0.1, 0.3, 0.2],
                symbol: '#',
            }],
        ));
        report.check("inflow", true, "peak 0.30 > pre 0.10");
        report.check("outflow", true, "end 0.20 < peak 0.30");
        report.artifact("fig1.csv", "time,share\n0,0.1\n");
        report
    }

    #[test]
    fn ascii_rendering_includes_everything() {
        let r = sample_report();
        let text = r.render_ascii();
        assert!(text.contains("fig1 — BTC to BCH migration"));
        assert!(text.contains("miners=200"));
        assert!(text.contains("hashrate shares"));
        assert!(text.contains("BCH"));
        assert!(text.contains("[PASS] inflow"));
        assert!(text.contains("2/2 checks passed"));
    }

    #[test]
    fn json_round_trip_preserves_report() {
        let r = sample_report();
        let json = r.to_json();
        let back = RunReport::from_json(&json).expect("valid JSON");
        assert_eq!(r, back);
    }

    #[test]
    fn failed_checks_flip_passed() {
        let mut r = sample_report();
        assert!(r.passed());
        r.check("broken", false, "1 > 2 does not hold");
        assert!(!r.passed());
        assert_eq!(r.check_counts(), (2, 3));
        assert!(r.summary_line().contains("FAIL"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn chart_length_mismatch_panics() {
        ChartData::new(
            "bad",
            vec![0.0, 1.0],
            vec![SeriesData {
                name: "s".into(),
                values: vec![1.0],
                symbol: '*',
            }],
        );
    }

    #[test]
    fn table_round_trips_through_data() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let data = TableData::from_table("cap", &t);
        assert_eq!(data.to_table().render(), t.render());
    }
}
