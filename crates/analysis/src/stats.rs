//! Summary statistics for experiment outputs.

use serde::{Deserialize, Serialize};

use crate::ensemble::aggregate::QuantileSketch;

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 5th percentile.
    pub p05: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample; returns an all-zero summary for empty input.
    ///
    /// # Examples
    ///
    /// ```
    /// use goc_analysis::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
    /// assert_eq!(s.n, 4);
    /// assert_eq!(s.mean, 2.5);
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 4.0);
    /// ```
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                p05: 0.0,
                median: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            p05: percentile(&sorted, 0.05),
            median: percentile(&sorted, 0.5),
            p95: percentile(&sorted, 0.95),
            max: sorted[n - 1],
        }
    }

    /// Summarizes integer observations.
    pub fn of_usize(values: &[usize]) -> Self {
        let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&as_f64)
    }
}

/// Linear-interpolation percentile of a sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

/// A fixed-width histogram over `[lo, hi]`, for step-count and share
/// distributions in experiment reports.
///
/// # Examples
///
/// ```
/// use goc_analysis::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for v in [1.0, 2.0, 2.5, 9.0, 42.0] {
///     h.add(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bin_counts()[0], 1); // 1.0
/// assert_eq!(h.bin_counts()[1], 2); // 2.0, 2.5
/// assert_eq!(h.bin_counts()[4], 2); // 9.0 and the clamped 42.0
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over
    /// `[lo, hi]`; out-of-range samples clamp to the edge buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-degenerate");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        let n = self.bins.len();
        let t = ((value - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((t * n as f64) as usize).min(n - 1);
        self.bins[idx] += 1;
    }

    /// Per-bin counts, lowest bucket first.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Renders a compact one-line-per-bin bar chart.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let step = (self.hi - self.lo) / self.bins.len() as f64;
        let mut out = String::new();
        for (i, &count) in self.bins.iter().enumerate() {
            let bar = "#".repeat((count as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!(
                "[{:>10.3}, {:>10.3}) {:>8} |{}\n",
                self.lo + step * i as f64,
                self.lo + step * (i + 1) as f64,
                count,
                bar
            ));
        }
        out
    }
}

/// Gini coefficient of a non-negative sample (payoff inequality metric
/// for the attack experiment). Zero for empty or all-zero input.
pub fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, v)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * v)
        .sum();
    weighted / (n as f64 * total)
}

/// Streaming request-latency percentiles over the ensemble engine's
/// bounded-memory [`QuantileSketch`].
///
/// The sketch's geometric buckets span `[1, 1e12]`, so seconds-scale
/// latencies (often well below 1.0) would all clamp into the bottom
/// bucket; observations are therefore recorded in **microseconds**
/// internally and converted back to seconds in the summary. The
/// `serve` experiment's load generator and the server bench feed this
/// with per-request wall times.
///
/// # Examples
///
/// ```
/// use goc_analysis::stats::LatencyStats;
///
/// let mut lat = LatencyStats::new();
/// for us in [200, 250, 300, 90_000] {
///     lat.record_secs(us as f64 / 1e6);
/// }
/// let summary = lat.summary();
/// assert_eq!(summary.n, 4);
/// assert!(summary.p50_secs < summary.p99_secs);
/// assert!((summary.max_secs - 0.09).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencyStats {
    sketch: QuantileSketch,
}

/// Latency percentiles in seconds (field names follow the repo's
/// `secs` timing convention, so golden comparisons strip them when
/// they appear as report params).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Observations recorded.
    pub n: u64,
    /// Median, seconds.
    pub p50_secs: f64,
    /// 90th percentile, seconds.
    pub p90_secs: f64,
    /// 99th percentile, seconds.
    pub p99_secs: f64,
    /// Maximum (tracked exactly), seconds.
    pub max_secs: f64,
}

impl LatencyStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        LatencyStats {
            sketch: QuantileSketch::new(),
        }
    }

    /// Records one request latency in seconds (negative values clamp
    /// to zero).
    pub fn record_secs(&mut self, secs: f64) {
        self.sketch.push(secs.max(0.0) * 1e6);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.sketch.count()
    }

    /// The `q`-quantile in seconds (0 when empty).
    pub fn quantile_secs(&self, q: f64) -> f64 {
        self.sketch.quantile(q) / 1e6
    }

    /// The percentile summary (all-zero when empty).
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            n: self.sketch.count(),
            p50_secs: self.quantile_secs(0.5),
            p90_secs: self.quantile_secs(0.9),
            p99_secs: self.quantile_secs(0.99),
            max_secs: self.quantile_secs(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&sorted, 0.0), 10.0);
        assert_eq!(percentile(&sorted, 1.0), 40.0);
        assert_eq!(percentile(&sorted, 0.5), 25.0);
    }

    #[test]
    fn usize_bridge() {
        let s = Summary::of_usize(&[1, 2, 3]);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn histogram_binning_and_clamping() {
        let mut h = Histogram::new(0.0, 100.0, 4);
        for v in [-5.0, 0.0, 24.9, 25.0, 99.9, 100.0, 1e9] {
            h.add(v);
        }
        assert_eq!(h.bin_counts(), &[3, 1, 0, 3]);
        assert_eq!(h.count(), 7);
        let rendered = h.render(20);
        assert_eq!(rendered.lines().count(), 4);
        assert!(rendered.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn histogram_rejects_empty_range() {
        Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert!(gini(&[5.0, 5.0, 5.0]).abs() < 1e-12); // perfect equality
        let concentrated = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!((concentrated - 0.75).abs() < 1e-12);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn latency_stats_report_percentiles_in_seconds() {
        let mut lat = LatencyStats::new();
        assert_eq!(lat.summary().n, 0);
        assert_eq!(lat.quantile_secs(0.99), 0.0);
        // 1000 requests from 100 µs to 100 ms, log-spread.
        for i in 0..1000 {
            lat.record_secs(1e-4 * 10f64.powf(3.0 * i as f64 / 999.0));
        }
        let s = lat.summary();
        assert_eq!(s.n, 1000);
        assert!(s.p50_secs < s.p90_secs && s.p90_secs < s.p99_secs);
        assert!((s.max_secs - 0.1).abs() / 0.1 < 0.01, "max {}", s.max_secs);
        // Sub-microsecond and negative observations clamp, not panic.
        lat.record_secs(-1.0);
        lat.record_secs(1e-9);
        assert_eq!(lat.count(), 1002);
    }
}
