//! ASCII line charts for regenerating the paper's figures in a terminal.

/// A named series sharing the chart's x-axis.
#[derive(Debug, Clone)]
pub struct Series<'a> {
    /// Legend label.
    pub name: &'a str,
    /// Y values (same length as the x-axis).
    pub values: &'a [f64],
    /// Plot symbol.
    pub symbol: char,
}

/// Renders one or more series as an ASCII chart with a y-axis scale and
/// an x-axis spanning `x_min..x_max`.
///
/// # Examples
///
/// ```
/// use goc_analysis::chart::{ascii_chart, Series};
///
/// let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (x / 8.0).sin()).collect();
/// let chart = ascii_chart(&xs, &[Series { name: "sin", values: &ys, symbol: '*' }], 60, 12);
/// assert!(chart.contains('*'));
/// ```
///
/// # Panics
///
/// Panics if a series length differs from the x-axis length, or if
/// `width`/`height` are too small to draw.
pub fn ascii_chart(xs: &[f64], series: &[Series<'_>], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    for s in series {
        assert_eq!(
            s.values.len(),
            xs.len(),
            "series '{}' length mismatch",
            s.name
        );
    }
    if xs.is_empty() {
        return String::from("(empty chart)\n");
    }
    let y_min = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .fold(f64::INFINITY, f64::min);
    let y_max = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .fold(f64::NEG_INFINITY, f64::max);
    let (y_min, y_max) = if (y_max - y_min).abs() < f64::EPSILON {
        (y_min - 0.5, y_max + 0.5)
    } else {
        (y_min, y_max)
    };
    let x_min = xs[0];
    let x_max = *xs.last().expect("nonempty");
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for (&x, &y) in xs.iter().zip(s.values) {
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let rowf = (y - y_min) / (y_max - y_min) * (height - 1) as f64;
            let row = height - 1 - rowf.round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = s.symbol;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y_label = y_max - (y_max - y_min) * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_label:>10.4} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10}  {:<.4}{}{:>.4}\n",
        "",
        x_min,
        " ".repeat(width.saturating_sub(16)),
        x_max
    ));
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} {}", s.symbol, s.name))
        .collect();
    out.push_str(&format!("{:>12}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_flat_series_without_panicking() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [5.0, 5.0, 5.0];
        let chart = ascii_chart(
            &xs,
            &[Series {
                name: "flat",
                values: &ys,
                symbol: 'o',
            }],
            20,
            5,
        );
        assert!(chart.contains('o'));
        assert!(chart.contains("flat"));
    }

    #[test]
    fn multiple_series_symbols_appear() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let up: Vec<f64> = xs.clone();
        let down: Vec<f64> = xs.iter().map(|x| 19.0 - x).collect();
        let chart = ascii_chart(
            &xs,
            &[
                Series {
                    name: "up",
                    values: &up,
                    symbol: '+',
                },
                Series {
                    name: "down",
                    values: &down,
                    symbol: 'x',
                },
            ],
            40,
            10,
        );
        assert!(chart.contains('+') && chart.contains('x'));
    }

    #[test]
    fn empty_axis_is_graceful() {
        let chart = ascii_chart(
            &[],
            &[Series {
                name: "none",
                values: &[],
                symbol: '*',
            }],
            20,
            5,
        );
        assert!(chart.contains("empty"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_is_rejected() {
        ascii_chart(
            &[0.0, 1.0],
            &[Series {
                name: "bad",
                values: &[1.0],
                symbol: '*',
            }],
            20,
            5,
        );
    }
}
