//! Welfare and security metrics over games and configurations.

use goc_game::{CoinId, Configuration, Game, MinerId};

/// The largest share of any coin's mass held by a single miner — the
/// decentralization/security margin discussed in the paper's §6
/// ("a particular miner will have a dominant position in a coin, killing
/// … the basic guarantee of non-manipulation"). A value above 0.5 means
/// some coin is 51%-attackable by one miner.
pub fn max_dominance(game: &Game, s: &Configuration) -> f64 {
    let system = game.system();
    let masses = s.masses(system);
    let mut worst: f64 = 0.0;
    for p in system.miner_ids() {
        let c = s.coin_of(p);
        let total = masses.mass_of(c) as f64;
        if total > 0.0 {
            worst = worst.max(system.power_of(p) as f64 / total);
        }
    }
    worst
}

/// The dominance (mass share) of one specific miner on one specific coin
/// in `s` (0 if the miner is elsewhere).
pub fn dominance_of(game: &Game, s: &Configuration, p: MinerId, c: CoinId) -> f64 {
    if s.coin_of(p) != c {
        return 0.0;
    }
    let masses = s.masses(game.system());
    let total = masses.mass_of(c) as f64;
    if total <= 0.0 {
        0.0
    } else {
        game.system().power_of(p) as f64 / total
    }
}

/// Welfare of `s` as a fraction of the total reward (1.0 when every coin
/// is occupied — Observation 3's globally-optimal case).
pub fn welfare_efficiency(game: &Game, s: &Configuration) -> f64 {
    let total = game.rewards().total().to_f64();
    if total <= 0.0 {
        0.0
    } else {
        game.welfare(s).to_f64() / total
    }
}

/// Per-miner payoffs as `f64`, for statistics.
pub fn payoffs_f64(game: &Game, s: &Configuration) -> Vec<f64> {
    game.payoffs(s).into_iter().map(|r| r.to_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_game::Configuration;

    #[test]
    fn dominance_detects_majority_miner() {
        let game = Game::build(&[6, 3, 1], &[5, 5]).unwrap();
        // p0 (6) and p1 (3) share c0; p2 alone on c1.
        let s = Configuration::new(vec![CoinId(0), CoinId(0), CoinId(1)], game.system()).unwrap();
        assert_eq!(max_dominance(&game, &s), 1.0); // the lone miner
        assert!((dominance_of(&game, &s, MinerId(0), CoinId(0)) - 6.0 / 9.0).abs() < 1e-12);
        assert_eq!(dominance_of(&game, &s, MinerId(0), CoinId(1)), 0.0);
    }

    #[test]
    fn welfare_efficiency_full_when_covered() {
        let game = Game::build(&[2, 1], &[3, 2]).unwrap();
        let covered = Configuration::new(vec![CoinId(0), CoinId(1)], game.system()).unwrap();
        let clumped = Configuration::uniform(CoinId(0), game.system()).unwrap();
        assert_eq!(welfare_efficiency(&game, &covered), 1.0);
        assert!((welfare_efficiency(&game, &clumped) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn payoffs_as_floats() {
        let game = Game::build(&[2, 1], &[1, 1]).unwrap();
        let s = Configuration::new(vec![CoinId(0), CoinId(1)], game.system()).unwrap();
        assert_eq!(payoffs_f64(&game, &s), vec![1.0, 1.0]);
    }
}
