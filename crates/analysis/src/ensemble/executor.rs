//! The workspace's **one parallel substrate**: a work-stealing indexed
//! executor over `std::thread::scope`.
//!
//! Both the Monte-Carlo replica ensemble ([`crate::ensemble::run`]) and
//! the experiment sweep runner ([`crate::sweep::parallel_map`]) dispatch
//! through [`run_indexed`]; there is no other thread-spawning code in
//! the workspace. The contract:
//!
//! * **input-ordered output** — results come back indexed by task, not
//!   by completion order, so callers stay deterministic;
//! * **work stealing** — workers pull the next undone index from a
//!   shared atomic counter, so a slow item never idles the other cores;
//! * **panic propagation** — a panicking task does not poison a mutex or
//!   abort the process: the executor drains, and the caller receives a
//!   [`WorkerPanic`] naming the **failing item's index** and the panic
//!   message (the smallest failing index wins when several items panic).
//!
//! Determinism of *parallel* work additionally needs per-task
//! randomness that does not depend on which worker runs the task;
//! [`replica_seed`] derives an independent `u64` stream per index from a
//! root seed (a SplitMix64 hop), which is what makes the ensemble's
//! aggregates bit-identical regardless of `--threads`.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use goc_telemetry::{Counter, Registry};

/// Telemetry handles for the executor's scheduling decisions — lock-free
/// counters ticked from inside the worker loop (one relaxed increment
/// per event; detached and free when the registry is disabled).
///
/// A task is **stolen** when the worker that claimed it is not the
/// worker that would own its index under a static round-robin partition
/// (`index % threads`): zero when the workers advance in lockstep,
/// growing exactly when dynamic claiming absorbs load imbalance — the
/// property the work-stealing counter exists to provide.
#[derive(Debug, Clone)]
pub struct ExecutorMetrics {
    /// Tasks claimed by a worker (`goc_ensemble_replicas_started_total`).
    pub started: Counter,
    /// Tasks that ran to completion without panicking
    /// (`goc_ensemble_replicas_finished_total`).
    pub finished: Counter,
    /// Tasks claimed off another worker's static share
    /// (`goc_ensemble_steals_total`).
    pub stolen: Counter,
}

impl ExecutorMetrics {
    /// Registers the ensemble executor's counter family on `registry`.
    /// (The fields are public, so a different subsystem riding
    /// [`run_indexed_recorded`] can assemble its own names instead.)
    pub fn register(registry: &Registry) -> Self {
        ExecutorMetrics {
            started: registry.counter("goc_ensemble_replicas_started_total"),
            finished: registry.counter("goc_ensemble_replicas_finished_total"),
            stolen: registry.counter("goc_ensemble_steals_total"),
        }
    }
}

/// A task panicked inside the executor: the failing item's index plus
/// the stringified panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the item whose task panicked (the smallest failing
    /// index, when several workers panicked before the drain).
    pub index: usize,
    /// The panic payload, stringified (`&str` and `String` payloads are
    /// preserved verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker panicked on item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Stringifies a panic payload (the `Box<dyn Any>` from `catch_unwind`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `task(0..count)` on up to `threads` work-stealing workers and
/// returns the results **in index order**.
///
/// # Errors
///
/// [`WorkerPanic`] if any task panicked; remaining workers stop pulling
/// new items once a panic is observed, and the smallest failing index is
/// reported.
///
/// # Examples
///
/// ```
/// use goc_analysis::ensemble::executor::run_indexed;
/// let squares = run_indexed(5, 2, |i| i * i).unwrap();
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
///
/// let err = run_indexed(4, 2, |i| {
///     assert!(i != 2, "boom");
///     i
/// })
/// .unwrap_err();
/// assert_eq!(err.index, 2);
/// ```
pub fn run_indexed<R, F>(count: usize, threads: usize, task: F) -> Result<Vec<R>, WorkerPanic>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_indexed_recorded(count, threads, task, None)
}

/// [`run_indexed`] with scheduling telemetry: every claim, completion,
/// and steal ticks the corresponding [`ExecutorMetrics`] counter. With
/// `None` (what [`run_indexed`] passes) the loop is byte-for-byte the
/// uninstrumented one.
///
/// # Errors
///
/// As [`run_indexed`].
pub fn run_indexed_recorded<R, F>(
    count: usize,
    threads: usize,
    task: F,
    metrics: Option<&ExecutorMetrics>,
) -> Result<Vec<R>, WorkerPanic>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(count.max(1));
    if threads <= 1 || count <= 1 {
        // Sequential fast path with the same panic contract (one worker
        // owns every index, so nothing is ever stolen).
        let mut out = Vec::with_capacity(count);
        for index in 0..count {
            if let Some(metrics) = metrics {
                metrics.started.inc();
            }
            match catch_unwind(AssertUnwindSafe(|| task(index))) {
                Ok(r) => {
                    if let Some(metrics) = metrics {
                        metrics.finished.inc();
                    }
                    out.push(r);
                }
                Err(payload) => {
                    return Err(WorkerPanic {
                        index,
                        message: panic_message(payload),
                    })
                }
            }
        }
        return Ok(out);
    }
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let first_panic: Mutex<Option<WorkerPanic>> = Mutex::new(None);
    // One slot per item; a worker only ever touches the slot of an index
    // it claimed from the counter, so the locks are uncontended.
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (next, failed, first_panic) = (&next, &failed, &first_panic);
            let (slots, task) = (&slots, &task);
            scope.spawn(move || loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                if let Some(metrics) = metrics {
                    metrics.started.inc();
                    if index % threads != worker {
                        metrics.stolen.inc();
                    }
                }
                // `AssertUnwindSafe`: the closure only writes through the
                // per-index slot below on success, so a panic leaves no
                // broken shared state behind.
                match catch_unwind(AssertUnwindSafe(|| task(index))) {
                    Ok(r) => {
                        *slots[index].lock().expect("slot lock is panic-free") = Some(r);
                        if let Some(metrics) = metrics {
                            metrics.finished.inc();
                        }
                    }
                    Err(payload) => {
                        let mut slot = first_panic.lock().expect("panic slot is panic-free");
                        if slot.as_ref().is_none_or(|p| index < p.index) {
                            *slot = Some(WorkerPanic {
                                index,
                                message: panic_message(payload),
                            });
                        }
                        failed.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });
    if let Some(panic) = first_panic.into_inner().expect("panic slot is panic-free") {
        return Err(panic);
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock is panic-free")
                .expect("every slot filled by the executor")
        })
        .collect())
}

/// Derives the `index`-th replica's RNG seed from a root seed: one
/// SplitMix64 hop per index, so replicas get independent streams and the
/// derivation is a pure function of `(root, index)` — never of which
/// worker thread ran the replica.
///
/// # Examples
///
/// ```
/// use goc_analysis::ensemble::executor::replica_seed;
/// assert_ne!(replica_seed(7, 0), replica_seed(7, 1));
/// assert_eq!(replica_seed(7, 3), replica_seed(7, 3));
/// ```
pub fn replica_seed(root: u64, index: usize) -> u64 {
    let mut z = root.wrapping_add(
        (index as u64)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_at_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let out = run_indexed(37, threads, |i| i * 3).unwrap();
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<_>>());
        }
        let empty = run_indexed(0, 4, |i| i).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn panic_reports_the_failing_index_sequential_and_parallel() {
        for threads in [1, 4] {
            let err = run_indexed(16, threads, |i| {
                if i == 5 {
                    panic!("item {i} exploded");
                }
                i
            })
            .unwrap_err();
            assert_eq!(err.index, 5, "threads={threads}");
            assert!(err.message.contains("item 5 exploded"));
            assert!(err.to_string().contains("worker panicked on item 5"));
        }
    }

    #[test]
    fn smallest_failing_index_wins() {
        // Every item panics; whatever interleaving happens, the reported
        // index can only be one a worker actually claimed, and the drain
        // keeps the smallest seen. With 1 thread it is exactly 0.
        let err = run_indexed(8, 1, |i: usize| -> usize { panic!("{i}") }).unwrap_err();
        assert_eq!(err.index, 0);
    }

    #[test]
    fn string_and_str_payloads_survive() {
        let err =
            run_indexed(1, 1, |_| -> usize { panic!("{}", String::from("owned")) }).unwrap_err();
        assert_eq!(err.message, "owned");
    }

    #[test]
    fn metrics_count_claims_completions_and_steals() {
        for threads in [1, 4] {
            let registry = Registry::new();
            let metrics = ExecutorMetrics::register(&registry);
            let out = run_indexed_recorded(40, threads, |i| i, Some(&metrics)).unwrap();
            assert_eq!(out.len(), 40);
            let snap = registry.snapshot();
            assert_eq!(
                snap.counter("goc_ensemble_replicas_started_total"),
                Some(40)
            );
            assert_eq!(
                snap.counter("goc_ensemble_replicas_finished_total"),
                Some(40)
            );
            let steals = snap.counter("goc_ensemble_steals_total").unwrap();
            assert!(steals <= 40, "steals bounded by claims");
            if threads == 1 {
                assert_eq!(steals, 0, "one worker owns every index");
            }
        }
    }

    #[test]
    fn panicked_tasks_start_but_never_finish() {
        let registry = Registry::new();
        let metrics = ExecutorMetrics::register(&registry);
        let err = run_indexed_recorded(
            8,
            1,
            |i| {
                assert!(i != 3, "boom");
                i
            },
            Some(&metrics),
        )
        .unwrap_err();
        assert_eq!(err.index, 3);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("goc_ensemble_replicas_started_total"), Some(4));
        assert_eq!(
            snap.counter("goc_ensemble_replicas_finished_total"),
            Some(3)
        );
    }

    #[test]
    fn replica_seeds_are_spread() {
        let seeds: std::collections::BTreeSet<u64> =
            (0..1000).map(|i| replica_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000, "seed collisions in the first 1000");
        // Different roots give different streams.
        assert_ne!(replica_seed(1, 0), replica_seed(2, 0));
    }
}
