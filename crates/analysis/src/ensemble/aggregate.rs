//! Streaming aggregators for replica ensembles.
//!
//! Every statistic the ensemble reports is folded one replica record at
//! a time, **in replica order**, through accumulators whose memory is
//! bounded by their own structure (bucket counts, distinct equilibria)
//! rather than by the replica count. (The executor itself still holds
//! one [`crate::ensemble::ReplicaRecord`] per replica until the fold —
//! a few hundred bytes each — so an ensemble's peak memory is
//! `O(replicas × coins)`, dominated by the replicas' game states, not
//! by these accumulators.)
//!
//! * [`Welford`] — online mean/variance (Welford's algorithm) with exact
//!   min/max;
//! * [`QuantileSketch`] — a geometric-bucket percentile sketch (bounded
//!   relative error, documented on the type);
//! * [`FingerprintIndex`] — the equilibrium census: canonical per-coin
//!   mass vectors keyed exactly (collision-free), each with a stable
//!   64-bit display fingerprint, hit counts, and the potential/welfare
//!   extremes behind the empirical price-of-anarchy/stability ratios.
//!
//! Because the fold order is fixed (replica index order) and every
//! accumulator is a pure function of the fed sequence, the aggregate is
//! **bit-identical regardless of worker-thread count** — the property
//! `crates/analysis/tests/ensemble_determinism.rs` pins.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Welford online moments
// ---------------------------------------------------------------------

/// Welford's online mean/variance accumulator with exact min/max.
///
/// # Examples
///
/// ```
/// use goc_analysis::ensemble::aggregate::Welford;
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// let s = w.summary();
/// assert_eq!(s.n, 4);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// A serialized snapshot of a [`Welford`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WelfordSummary {
    /// Sample count.
    pub n: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub std: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        if self.n == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Snapshot for reports.
    pub fn summary(&self) -> WelfordSummary {
        WelfordSummary {
            n: self.n,
            mean: self.mean(),
            std: self.std(),
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }
}

// ---------------------------------------------------------------------
// Geometric-bucket percentile sketch
// ---------------------------------------------------------------------

/// Number of geometric buckets of a [`QuantileSketch`].
const SKETCH_BUCKETS: usize = 1024;
/// The sketch covers `[1, 1e12]`; values outside clamp to the edge
/// buckets (exact min/max are tracked separately).
const SKETCH_LO: f64 = 1.0;
const SKETCH_HI: f64 = 1e12;

/// A bounded-memory percentile sketch over non-negative values:
/// 1024 geometric buckets spanning `[1, 1e12]` (about
/// 2.7% relative bucket width), plus exact min/max. Quantile queries
/// return the geometric midpoint of the bucket holding the rank,
/// clamped to the observed `[min, max]` — so the relative error is at
/// most half a bucket (≈ 1.4%) and exact at the extremes.
///
/// Deterministic: the sketch is a pure function of the multiset of fed
/// values (bucket counts), so feeding the same records in any order
/// yields the same quantiles.
///
/// # Examples
///
/// ```
/// use goc_analysis::ensemble::aggregate::QuantileSketch;
/// let mut q = QuantileSketch::new();
/// for x in 1..=1000 {
///     q.push(x as f64);
/// }
/// let p50 = q.quantile(0.5);
/// assert!((p50 - 500.0).abs() / 500.0 < 0.03, "p50 = {p50}");
/// assert_eq!(q.quantile(0.0), 1.0);
/// assert_eq!(q.quantile(1.0), 1000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    total: u64,
    skipped: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            counts: vec![0; SKETCH_BUCKETS],
            total: 0,
            skipped: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index of a value (clamped to the sketch range) — the
    /// shared `goc_telemetry::quantile` scheme over the sketch range.
    fn bucket_of(x: f64) -> usize {
        goc_telemetry::quantile::bucket_of(x, SKETCH_LO, SKETCH_HI, SKETCH_BUCKETS)
    }

    /// Geometric midpoint of bucket `i`.
    fn bucket_mid(i: usize) -> f64 {
        goc_telemetry::quantile::bucket_mid(i, SKETCH_LO, SKETCH_HI, SKETCH_BUCKETS)
    }

    /// Feeds one non-negative observation.
    ///
    /// Non-finite observations are **skipped and counted** (see
    /// [`QuantileSketch::skipped`]) rather than binned: `NaN as usize`
    /// saturates to 0, so a NaN would land in bucket 0 and silently
    /// drag every quantile low, while `f64::min`/`f64::max` ignore NaN
    /// and would leave min/max inconsistent with the counts.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.skipped += 1;
            return;
        }
        self.counts[Self::bucket_of(x)] += 1;
        self.total += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observation count (finite observations only).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of non-finite observations skipped by
    /// [`QuantileSketch::push`].
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The `q`-quantile estimate (`q` in `[0, 1]`); 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        // The extremes are tracked exactly.
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the wanted observation, 1-based, nearest-rank method.
        let rank = goc_telemetry::quantile::nearest_rank(q, self.total);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------
// Equilibrium fingerprint index
// ---------------------------------------------------------------------

/// The canonical identity of a reached equilibrium: the per-coin mass
/// vector over the **whole** coin universe plus the coin-liveness mask
/// (so "coin 1 retired" and "coin 1 live but empty" are distinct
/// outcomes). Keys are compared exactly — the 64-bit fingerprint is a
/// stable display handle, not the index key, so hash collisions cannot
/// merge distinct equilibria.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EquilibriumKey {
    /// Mass (total power) per coin, coin 0 first.
    pub masses: Vec<u128>,
    /// Liveness per coin (all `true` for fixed-population runs).
    pub live: Vec<bool>,
}

impl EquilibriumKey {
    /// The stable 64-bit display fingerprint: FNV-1a over the mass
    /// vector and liveness mask. Platform- and run-independent.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        };
        for (c, &mass) in self.masses.iter().enumerate() {
            for byte in (c as u32).to_le_bytes() {
                eat(byte);
            }
            for byte in mass.to_le_bytes() {
                eat(byte);
            }
            eat(u8::from(self.live[c]));
        }
        h
    }
}

/// Per-equilibrium tallies of a [`FingerprintIndex`].
#[derive(Debug, Clone, PartialEq)]
struct EquilibriumTally {
    hits: u64,
    potential: f64,
    welfare: f64,
}

/// One row of the equilibrium census, ready for reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquilibriumEntry {
    /// Display fingerprint (hex of [`EquilibriumKey::fingerprint`]).
    pub fingerprint: String,
    /// Replicas that converged to this equilibrium.
    pub hits: u64,
    /// `hits / total replicas`.
    pub share: f64,
    /// Appendix-B symmetric potential `H(s) = Σ_c 1/M_c` (lower = more
    /// balanced masses = better).
    pub potential: f64,
    /// Welfare `Σ` payoffs (= total reward of occupied live coins).
    pub welfare: f64,
    /// The canonical per-coin mass vector (decimal strings: masses are
    /// `u128` and JSON numbers are not).
    pub masses: Vec<String>,
    /// Per-coin liveness at convergence.
    pub live: Vec<bool>,
}

/// Collapses a possibly non-finite statistic to a well-defined finite
/// value at the report boundary: the vendored serde renders non-finite
/// floats as JSON `null`, which then fails to deserialize back into
/// `f64` — so census floats are clamped before they ever reach a
/// report. `+∞ ↦ f64::MAX` (an unoccupied live coin's potential),
/// `-∞ ↦ f64::MIN`, `NaN ↦ 0`. Finite values pass through untouched,
/// so ordinary reports (and their goldens) are unaffected.
fn finite_or_clamped(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else if x.is_nan() {
        0.0
    } else if x > 0.0 {
        f64::MAX
    } else {
        f64::MIN
    }
}

/// Distribution-level equilibrium statistics (see field docs for the
/// empirical price-of-anarchy/stability conventions).
///
/// Every float field is finite — non-finite statistics (an infinite
/// potential from an unoccupied live coin) are clamped by
/// `finite_or_clamped` when the census is built, so a serialized census
/// always survives a JSON round trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquilibriumCensus {
    /// Number of distinct equilibria reached.
    pub distinct: usize,
    /// Total recorded hits (= converged replicas), across **all**
    /// equilibria — not just the listed rows, which [`FingerprintIndex::census`]
    /// caps.
    pub total_hits: u64,
    /// Lowest symmetric potential observed (the *best* equilibrium:
    /// `H = Σ_c 1/M_c` is minimized by balanced masses).
    pub best_potential: f64,
    /// Highest symmetric potential observed (the *worst* equilibrium).
    pub worst_potential: f64,
    /// Empirical price of anarchy: `worst_potential / best_potential`
    /// (≥ 1) — how much worse the worst equilibrium the dynamics
    /// actually reached is than the best observed, by the potential.
    pub poa_ratio: f64,
    /// Empirical price of stability: `modal_potential / best_potential`
    /// (≥ 1) — how far the *most frequently reached* equilibrium sits
    /// from the best observed. 1 when the dynamics' modal outcome is
    /// also the best seen.
    pub pos_ratio: f64,
    /// The census rows, most-hit first (ties broken by the canonical
    /// key order, so the listing is deterministic).
    pub entries: Vec<EquilibriumEntry>,
}

/// The equilibrium fingerprint index: counts distinct equilibria by
/// exact canonical key.
///
/// Memory is bounded by the number of *distinct* equilibria (each entry
/// stores one mass vector), not by the replica count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FingerprintIndex {
    entries: BTreeMap<EquilibriumKey, EquilibriumTally>,
    total: u64,
}

impl FingerprintIndex {
    /// An empty index.
    pub fn new() -> Self {
        FingerprintIndex::default()
    }

    /// Records one converged replica's equilibrium.
    pub fn record(&mut self, key: EquilibriumKey, potential: f64, welfare: f64) {
        self.total += 1;
        self.entries
            .entry(key)
            .and_modify(|t| t.hits += 1)
            .or_insert(EquilibriumTally {
                hits: 1,
                potential,
                welfare,
            });
    }

    /// Number of distinct equilibria recorded.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Total records (= converged replicas).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The canonical keys, in key order (for tests pinning the index to
    /// a naive sort-and-dedup of the full mass vectors).
    pub fn keys(&self) -> Vec<EquilibriumKey> {
        self.entries.keys().cloned().collect()
    }

    /// Hit count of one key (0 if never recorded).
    pub fn hits(&self, key: &EquilibriumKey) -> u64 {
        self.entries.get(key).map_or(0, |t| t.hits)
    }

    /// Builds the census (see [`EquilibriumCensus`] for conventions).
    /// `max_entries` caps the listed rows (the aggregate statistics
    /// still cover every equilibrium).
    pub fn census(&self, max_entries: usize) -> EquilibriumCensus {
        if self.entries.is_empty() {
            return EquilibriumCensus {
                distinct: 0,
                total_hits: 0,
                best_potential: 0.0,
                worst_potential: 0.0,
                poa_ratio: 1.0,
                pos_ratio: 1.0,
                entries: Vec::new(),
            };
        }
        let best = self
            .entries
            .values()
            .map(|t| finite_or_clamped(t.potential))
            .fold(f64::INFINITY, f64::min);
        let worst = self
            .entries
            .values()
            .map(|t| finite_or_clamped(t.potential))
            .fold(f64::NEG_INFINITY, f64::max);
        // Modal equilibrium: most hits, ties by canonical key order
        // (BTreeMap iteration order makes this deterministic).
        let modal = self
            .entries
            .values()
            .fold(None::<&EquilibriumTally>, |acc, t| match acc {
                Some(best_so_far) if best_so_far.hits >= t.hits => Some(best_so_far),
                _ => Some(t),
            })
            .expect("nonempty index");
        let ratio = |num: f64, den: f64| {
            let r = if den > 0.0 { num / den } else { 1.0 };
            // MAX/MAX is 1.0, but MAX/tiny can overflow to +∞ — clamp
            // the quotient too so the report stays round-trippable.
            finite_or_clamped(r)
        };
        let mut rows: Vec<(&EquilibriumKey, &EquilibriumTally)> = self.entries.iter().collect();
        rows.sort_by(|(ka, ta), (kb, tb)| tb.hits.cmp(&ta.hits).then_with(|| ka.cmp(kb)));
        let entries = rows
            .into_iter()
            .take(max_entries)
            .map(|(key, tally)| EquilibriumEntry {
                fingerprint: format!("{:016x}", key.fingerprint()),
                hits: tally.hits,
                share: tally.hits as f64 / self.total.max(1) as f64,
                potential: finite_or_clamped(tally.potential),
                welfare: finite_or_clamped(tally.welfare),
                masses: key.masses.iter().map(u128::to_string).collect(),
                live: key.live.clone(),
            })
            .collect();
        EquilibriumCensus {
            distinct: self.entries.len(),
            total_hits: self.total,
            best_potential: best,
            worst_potential: worst,
            poa_ratio: ratio(worst, best),
            pos_ratio: ratio(finite_or_clamped(modal.potential), best),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_moments() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        let s = w.summary();
        assert_eq!(s.n, 8);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.summary().mean, 0.0);
        let mut w = Welford::new();
        w.push(7.0);
        let s = w.summary();
        assert_eq!((s.mean, s.std, s.min, s.max), (7.0, 0.0, 7.0, 7.0));
    }

    #[test]
    fn sketch_quantiles_are_within_documented_error() {
        let mut q = QuantileSketch::new();
        for x in 1..=10_000u32 {
            q.push(f64::from(x));
        }
        for (p, exact) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = q.quantile(p);
            assert!(
                (got - exact).abs() / exact < 0.03,
                "p{p}: got {got}, want ≈{exact}"
            );
        }
        assert_eq!(q.quantile(0.0), 1.0);
        assert_eq!(q.quantile(1.0), 10_000.0);
        assert_eq!(q.count(), 10_000);
    }

    #[test]
    fn sketch_is_order_independent_and_handles_edges() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let xs = [0.0, 1.0, 17.0, 1e13, 256.0];
        for &x in &xs {
            a.push(x);
        }
        for &x in xs.iter().rev() {
            b.push(x);
        }
        assert_eq!(a, b);
        assert_eq!(QuantileSketch::new().quantile(0.5), 0.0);
        // Out-of-range values clamp into edge buckets but min/max stay
        // exact.
        assert_eq!(a.quantile(0.0), 0.0);
        assert_eq!(a.quantile(1.0), 1e13);
    }

    #[test]
    fn sketch_skips_and_counts_non_finite_observations() {
        // Regression: NaN used to land in bucket 0 (`NaN as usize`
        // saturates to 0) and drag every quantile low; ±∞ clamped into
        // the edge buckets while poisoning min/max.
        let mut polluted = QuantileSketch::new();
        let mut clean = QuantileSketch::new();
        for x in [10.0, f64::NAN, 20.0, f64::INFINITY, 30.0, f64::NEG_INFINITY] {
            polluted.push(x);
        }
        for x in [10.0, 20.0, 30.0] {
            clean.push(x);
        }
        assert_eq!(polluted.skipped(), 3);
        assert_eq!(polluted.count(), 3);
        assert_eq!(polluted.quantile(0.0), 10.0);
        assert_eq!(polluted.quantile(1.0), 30.0);
        for q in [0.25, 0.5, 0.75, 0.9] {
            assert_eq!(polluted.quantile(q), clean.quantile(q));
        }
        // A sketch fed only junk behaves exactly like an empty one.
        let mut junk = QuantileSketch::new();
        junk.push(f64::NAN);
        junk.push(f64::INFINITY);
        assert_eq!(junk.count(), 0);
        assert_eq!(junk.skipped(), 2);
        assert_eq!(junk.quantile(0.5), 0.0);
    }

    #[test]
    fn census_floats_stay_finite_under_infinite_potentials() {
        // Regression: an unoccupied live coin records `potential = +∞`,
        // which the vendored serde renders as JSON `null` — a census
        // must clamp it before it reaches a report.
        let mut index = FingerprintIndex::new();
        index.record(key(&[10, 0], &[true, true]), f64::INFINITY, 5.0);
        index.record(key(&[10, 0], &[true, true]), f64::INFINITY, 5.0);
        index.record(key(&[5, 5], &[true, true]), 0.4, f64::NAN);
        let census = index.census(10);
        assert_eq!(census.best_potential, 0.4);
        assert_eq!(census.worst_potential, f64::MAX);
        assert!(census.poa_ratio.is_finite());
        assert!(census.pos_ratio.is_finite());
        for entry in &census.entries {
            assert!(entry.potential.is_finite());
            assert!(entry.welfare.is_finite());
            assert!(entry.share.is_finite());
        }
    }

    fn key(masses: &[u128], live: &[bool]) -> EquilibriumKey {
        EquilibriumKey {
            masses: masses.to_vec(),
            live: live.to_vec(),
        }
    }

    #[test]
    fn fingerprint_index_counts_and_orders_census() {
        let mut index = FingerprintIndex::new();
        let a = key(&[10, 5], &[true, true]);
        let b = key(&[9, 6], &[true, true]);
        index.record(a.clone(), 0.3, 15.0);
        index.record(b.clone(), 0.28, 15.0);
        index.record(a.clone(), 0.3, 15.0);
        assert_eq!(index.distinct(), 2);
        assert_eq!(index.total(), 3);
        assert_eq!(index.hits(&a), 2);
        let census = index.census(10);
        assert_eq!(census.distinct, 2);
        assert_eq!(census.entries[0].hits, 2); // modal first
        assert_eq!(census.entries[0].masses, vec!["10", "5"]);
        assert!((census.entries[0].share - 2.0 / 3.0).abs() < 1e-12);
        // best = 0.28 (b), worst = modal = 0.3 (a).
        assert!((census.poa_ratio - 0.3 / 0.28).abs() < 1e-12);
        assert!((census.pos_ratio - 0.3 / 0.28).abs() < 1e-12);
    }

    #[test]
    fn fingerprints_distinguish_liveness_and_masses() {
        let a = key(&[10, 0], &[true, true]);
        let b = key(&[10, 0], &[true, false]);
        let c = key(&[0, 10], &[true, true]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a, b);
        // Stable across calls (and, by construction, across platforms).
        assert_eq!(a.fingerprint(), a.fingerprint());
    }

    #[test]
    fn empty_census_is_well_formed() {
        let census = FingerprintIndex::new().census(5);
        assert_eq!(census.distinct, 0);
        assert_eq!(census.poa_ratio, 1.0);
        assert!(census.entries.is_empty());
    }

    #[test]
    fn census_caps_entries_but_not_statistics() {
        let mut index = FingerprintIndex::new();
        for i in 0..10u128 {
            index.record(key(&[i, 10 - i], &[true, true]), i as f64 + 1.0, 1.0);
        }
        let census = index.census(3);
        assert_eq!(census.entries.len(), 3);
        assert_eq!(census.distinct, 10);
        assert_eq!(census.best_potential, 1.0);
        assert_eq!(census.worst_potential, 10.0);
    }
}
