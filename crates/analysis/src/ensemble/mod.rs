//! # The parallel ensemble engine
//!
//! The paper's central claims are **distributional**: better-response
//! dynamics converge to *some* pure Nash equilibrium (Theorem 1), and
//! which one — and how fast — depends on the schedule and the seed.
//! A single trajectory samples that distribution once; this module is
//! the instrument that maps it. An [`EnsembleSpec`] names a replica
//! count, a population, an optional scheduler and churn plan, and a
//! **root seed**; [`run`] executes the replicas on the work-stealing
//! [`executor`] (each replica's RNG stream derived from the root seed by
//! [`executor::replica_seed`]) and folds the outcomes through the
//! streaming [`aggregate`] layer: Welford moments of convergence steps,
//! bounded-memory step percentiles, and the equilibrium fingerprint
//! index behind distinct-equilibria counts, hit frequencies, and the
//! empirical price-of-anarchy/stability ratios.
//!
//! **Determinism:** the same root seed produces a bit-identical
//! [`EnsembleAggregate`] regardless of the worker-thread count — replica
//! seeds are a pure function of `(root, index)` and the fold runs in
//! replica order over input-ordered executor output. Wall-clock numbers
//! live apart in [`EnsembleTiming`] (field names follow the repo's
//! `secs`/`per_sec` timing conventions, so the golden comparator strips
//! them); [`EnsembleReport::deterministic_json`] serializes exactly the
//! thread-invariant part, which
//! `crates/analysis/tests/ensemble_determinism.rs` pins across
//! `threads ∈ {1, 2, 8}`.

pub mod aggregate;
pub mod executor;

use std::fmt;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use goc_game::{gen::random_config, CoinId, Configuration, Game, MassTracker, Snapshot};
use goc_learning::{
    run_incremental, run_incremental_from, run_incremental_with_churn, run_with_churn, ChurnPlan,
    LearningOptions, LearningOutcome, SchedulerKind,
};
use goc_sim::fixtures::{scale_churn_base, scale_class_game};
use goc_sim::{churn_timeline, churn_universe, stride_deltas, ChurnSpec, ScenarioSpec};

use goc_telemetry::trace::{self, TraceEventKind, TraceLane, TraceRecorder};
use goc_telemetry::Registry;

use aggregate::{
    EquilibriumCensus, EquilibriumKey, FingerprintIndex, QuantileSketch, Welford, WelfordSummary,
};
use executor::{replica_seed, run_indexed_recorded, ExecutorMetrics};

/// Resolution (fraction of a rig's hashrate) used when quantizing churn
/// scenarios to integer game powers — the same constant the `churn`
/// experiment and the `BENCH_*.json` recorder pass to
/// [`goc_sim::churn_universe`].
const CHURN_RESOLUTION: f64 = 1e-4;

/// Census rows listed in reports (aggregate statistics always cover
/// every distinct equilibrium; only the listing is capped).
const CENSUS_ROWS: usize = 12;

/// A declarative Monte-Carlo ensemble: `replicas` independent runs of
/// the better-response dynamics over the shared scale fixture
/// population, each replica seeded from `seed` by
/// [`executor::replica_seed`].
///
/// * `scheduler: None` drives the scheduler-free
///   [`goc_learning::run_incremental`] loop (the fast path for large
///   populations); `Some(kind)` drives [`goc_learning::run`]'s
///   incremental protocol with that kind, seeded per replica.
/// * `churn: Some(spec)` lowers the fixture cohort scenario plus this
///   churn plan to a per-replica delta stream
///   ([`goc_sim::churn_universe`]); replicas then run
///   `run[_incremental]_with_churn`. The plan follows the fixture
///   shape: coin 2 is the launchable `upstart` chain
///   (see [`goc_sim::fixtures::scale_churn_base`]).
/// * Without churn, replicas start from an independent uniformly random
///   configuration; with churn they start from the universe's cohort
///   start and the randomness enters through the churn timeline and the
///   scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleSpec {
    /// Display name (reports and artifacts).
    pub name: String,
    /// Number of Monte-Carlo replicas (≥ 1).
    pub replicas: usize,
    /// Population head-count of the scale fixture game.
    pub miners: usize,
    /// Scheduler kind, or `None` for the scheduler-free incremental
    /// loop.
    pub scheduler: Option<SchedulerKind>,
    /// Optional churn plan applied to the fixture cohort scenario.
    pub churn: Option<ChurnSpec>,
    /// Horizon (days) used when lowering a churn plan.
    pub horizon_days: f64,
    /// Root seed; replica `i` uses `replica_seed(seed, i)`.
    pub seed: u64,
}

impl EnsembleSpec {
    /// A churn-free ensemble over `miners` with the incremental loop.
    pub fn new(miners: usize, replicas: usize, seed: u64) -> Self {
        EnsembleSpec {
            name: format!("ensemble_{miners}x{replicas}"),
            replicas,
            miners,
            scheduler: None,
            churn: None,
            horizon_days: 30.0,
            seed,
        }
    }

    /// Pins the scheduler kind (replica-seeded).
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = Some(kind);
        self
    }

    /// Attaches the shared churn fixture's plan at the given population
    /// turnover target (percent) — the same arrival/departure processes
    /// plus one coin launch and one retirement that the `churn`
    /// experiment and `BENCH_*.json` drive.
    pub fn with_churn(mut self, turnover_pct: u32) -> Self {
        self.churn = goc_sim::fixtures::scale_churn_scenario(
            self.miners,
            self.horizon_days,
            0,
            turnover_pct,
        )
        .churn;
        self
    }

    /// The scheduler's display name (`incremental` for the
    /// scheduler-free loop).
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.map_or("incremental", SchedulerKind::name)
    }

    /// Validates the numeric envelope.
    ///
    /// # Errors
    ///
    /// [`EnsembleError::InvalidSpec`] when the ensemble is degenerate
    /// (no replicas, no miners, or a non-positive horizon).
    pub fn validate(&self) -> Result<(), EnsembleError> {
        if self.replicas == 0 {
            return Err(EnsembleError::InvalidSpec("replicas must be ≥ 1".into()));
        }
        if self.miners == 0 {
            return Err(EnsembleError::InvalidSpec("miners must be ≥ 1".into()));
        }
        if !self.horizon_days.is_finite() || self.horizon_days <= 0.0 {
            return Err(EnsembleError::InvalidSpec(
                "horizon_days must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Errors of an ensemble run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EnsembleError {
    /// The spec fails its numeric envelope (see
    /// [`EnsembleSpec::validate`]).
    InvalidSpec(String),
    /// A replica failed (learning error or churn-lowering error); the
    /// smallest failing replica index is reported.
    Replica {
        /// Replica index.
        replica: usize,
        /// Stringified underlying error.
        error: String,
    },
    /// A replica panicked inside the executor.
    Panicked(executor::WorkerPanic),
}

impl fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnsembleError::InvalidSpec(why) => write!(f, "invalid ensemble spec: {why}"),
            EnsembleError::Replica { replica, error } => {
                write!(f, "replica {replica} failed: {error}")
            }
            EnsembleError::Panicked(panic) => write!(f, "ensemble {panic}"),
        }
    }
}

impl std::error::Error for EnsembleError {}

/// One replica's reduced outcome — everything the aggregators consume.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaRecord {
    /// Replica index within the ensemble.
    pub replica: usize,
    /// The derived replica seed (`replica_seed(spec.seed, replica)`).
    pub seed: u64,
    /// Better-response steps taken.
    pub steps: usize,
    /// Whether the replica converged within the step cap.
    pub converged: bool,
    /// Churn deltas absorbed (0 without a churn plan).
    pub churn_applied: usize,
    /// Canonical equilibrium identity of the final state.
    pub key: EquilibriumKey,
    /// Symmetric potential `H = Σ_c 1/M_c` of the final state (f64;
    /// infinite when a live coin is unoccupied, which cannot happen at
    /// an equilibrium of an unrestricted game).
    pub potential: f64,
    /// Welfare (total payoff) of the final active population.
    pub welfare: f64,
    /// This replica's wall time (timing only — never aggregated into
    /// the deterministic part).
    pub wall_secs: f64,
}

/// Convergence-step percentiles from the bounded-memory sketch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepPercentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// The thread-invariant aggregate of an ensemble: same spec + same root
/// seed ⇒ bit-identical value at any worker-thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleAggregate {
    /// Replicas executed.
    pub replicas: usize,
    /// Replicas that converged within the step cap.
    pub converged: usize,
    /// Total churn deltas absorbed across all replicas.
    pub churn_deltas: u64,
    /// Welford moments of convergence steps.
    pub steps: WelfordSummary,
    /// Step percentiles from the geometric sketch.
    pub step_percentiles: StepPercentiles,
    /// The equilibrium census (distinct equilibria, hit frequencies,
    /// empirical price-of-anarchy/stability ratios).
    pub equilibria: EquilibriumCensus,
}

/// Wall-clock statistics of an ensemble run (machine- and load-
/// dependent; the field names follow the repo's timing conventions so
/// golden comparisons strip them).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleTiming {
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time of the ensemble, seconds.
    pub total_wall_secs: f64,
    /// `replicas / total_wall_secs`.
    pub replicas_per_sec: f64,
    /// Welford moments of per-replica wall times.
    pub replica_wall_secs: WelfordSummary,
}

/// The full result of [`run`]: spec echo + deterministic aggregate +
/// timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleReport {
    /// The spec that produced this report.
    pub spec: EnsembleSpec,
    /// The thread-invariant aggregate.
    pub aggregate: EnsembleAggregate,
    /// Wall-clock statistics (thread- and machine-dependent).
    pub timing: EnsembleTiming,
}

impl EnsembleReport {
    /// Serializes exactly the thread-invariant part (spec + aggregate):
    /// two runs of the same spec agree on this string regardless of
    /// `threads`.
    pub fn deterministic_json(&self) -> String {
        // Hand-assembled (the vendored serde_derive does not support
        // lifetime-generic helper structs): both halves already derive
        // `Serialize`.
        format!(
            "{{\"spec\":{},\"aggregate\":{}}}",
            serde_json::to_string(&self.spec).expect("ensemble specs serialize"),
            serde_json::to_string(&self.aggregate).expect("ensemble aggregates serialize"),
        )
    }
}

/// Reduces a final state to its equilibrium identity, potential, and
/// welfare. `miner_active`/`coin_active` default to all-active.
fn reduce_state(
    game: &Game,
    config: &Configuration,
    miner_active: Option<&[bool]>,
    coin_active: Option<&[bool]>,
) -> (EquilibriumKey, f64, f64) {
    let system = game.system();
    let k = system.num_coins();
    let live: Vec<bool> = match coin_active {
        Some(mask) => mask.to_vec(),
        None => vec![true; k],
    };
    let mut masses = vec![0u128; k];
    match miner_active {
        None => {
            let table = config.masses(system);
            for (c, mass) in masses.iter_mut().enumerate() {
                *mass = table.mass_of(goc_game::CoinId(c));
            }
        }
        Some(mask) => {
            for p in system.miner_ids() {
                if mask[p.index()] {
                    masses[config.coin_of(p).index()] += u128::from(system.power_of(p));
                }
            }
        }
    }
    // Potential H = Σ_{live c} 1/M_c (coin-order summation keeps the
    // f64 bit-identical across runs); welfare = Σ rewards of occupied
    // live coins (payoffs on a coin sum to its reward).
    let mut potential = 0.0f64;
    let mut welfare = 0.0f64;
    for c in 0..k {
        if !live[c] {
            continue;
        }
        if masses[c] == 0 {
            potential = f64::INFINITY;
        } else {
            potential += 1.0 / masses[c] as f64;
            welfare += game.rewards().of(goc_game::CoinId(c)).to_f64();
        }
    }
    (EquilibriumKey { masses, live }, potential, welfare)
}

/// The per-replica churn scenario: the shared churn base (cohort
/// population + dormant `upstart` chain) with the spec's plan attached,
/// seeded for this replica — the timeline, and therefore the delta
/// stream, varies per replica.
fn churn_scenario(spec: &EnsembleSpec, churn: &ChurnSpec, seed: u64) -> ScenarioSpec {
    let mut scenario = scale_churn_base(spec.miners, spec.horizon_days, seed);
    scenario.name = format!("{}_r{seed:x}", spec.name);
    scenario.churn = Some(churn.clone());
    scenario
}

/// Runs one replica. `shared` short-circuits per-replica setup with the
/// ensemble's decoded [`Snapshot`] — churn-free replicas fork the
/// shared universe at their own random start
/// ([`Snapshot::fork_at`]), churny scheduler-free replicas fork the
/// time-zero tracker exactly and replay only their own timeline. The
/// result is identical either way: a fork reproduces precisely the
/// state a from-scratch rebuild constructs (the determinism proptests
/// replay `None` against `Some` to pin this).
fn replica_with(
    spec: &EnsembleSpec,
    shared: Option<&Snapshot>,
    index: usize,
    lane: Option<&TraceLane>,
) -> Result<ReplicaRecord, EnsembleError> {
    let seed = replica_seed(spec.seed, index);
    let fail = |error: String| EnsembleError::Replica {
        replica: index,
        error,
    };
    let options = LearningOptions::default();
    let clock = Instant::now();
    let (outcome, key, potential, welfare) = match &spec.churn {
        None => {
            let built;
            let game = match shared {
                Some(snapshot) => snapshot.game(),
                None => {
                    built = scale_class_game(spec.miners);
                    &built
                }
            };
            let mut rng = SmallRng::seed_from_u64(seed);
            let start = random_config(&mut rng, game.system());
            let outcome = match (spec.scheduler, shared) {
                (None, Some(snapshot)) => {
                    let tracker = {
                        let _fork =
                            lane.map(|l| l.span(TraceEventKind::SnapshotFork, index as u64));
                        snapshot.fork_at(&start).map_err(|e| fail(e.to_string()))?
                    };
                    run_incremental_from(tracker, options, &ChurnPlan::default(), None)
                        .map_err(|e| fail(e.to_string()))?
                }
                (None, None) => {
                    run_incremental(game, &start, options).map_err(|e| fail(e.to_string()))?
                }
                (Some(kind), _) => {
                    let mut sched = kind.build(seed);
                    goc_learning::run(game, &start, sched.as_mut(), options)
                        .map_err(|e| fail(e.to_string()))?
                }
            };
            let (key, potential, welfare) = reduce_state(game, &outcome.final_config, None, None);
            (outcome, key, potential, welfare)
        }
        Some(churn) => {
            let scenario = churn_scenario(spec, churn, seed);
            let built;
            let (outcome, game): (LearningOutcome, &Game) = match (spec.scheduler, shared) {
                (None, Some(snapshot)) => {
                    // The universe is seed-invariant; only the timeline
                    // varies per replica. Re-lower it and replay against
                    // an exact fork of the shared time-zero tracker.
                    let deltas = churn_timeline(&scenario).map_err(|e| fail(e.to_string()))?;
                    let plan = ChurnPlan::with_events(
                        Some(snapshot.miner_activity().to_vec()),
                        Some(snapshot.coin_activity().to_vec()),
                        stride_deltas(&deltas, spec.miners),
                    );
                    let forked = {
                        let _fork =
                            lane.map(|l| l.span(TraceEventKind::SnapshotFork, index as u64));
                        snapshot.fork()
                    };
                    let outcome = run_incremental_from(forked, options, &plan, None)
                        .map_err(|e| fail(e.to_string()))?;
                    (outcome, snapshot.game())
                }
                (scheduler, _) => {
                    built = churn_universe(&scenario, CHURN_RESOLUTION)
                        .map_err(|e| fail(e.to_string()))?;
                    let plan = ChurnPlan::with_events(
                        Some(built.miner_active.clone()),
                        Some(built.coin_active.clone()),
                        built.step_deltas(spec.miners),
                    );
                    let outcome = match scheduler {
                        None => {
                            run_incremental_with_churn(&built.game, &built.start, options, &plan)
                        }
                        Some(kind) => {
                            let mut sched = kind.build(seed);
                            run_with_churn(
                                &built.game,
                                &built.start,
                                sched.as_mut(),
                                options,
                                &plan,
                            )
                        }
                    }
                    .map_err(|e| fail(e.to_string()))?;
                    (outcome, &built.game)
                }
            };
            let (miner_active, coin_active) = outcome
                .final_activity
                .clone()
                .expect("churn runs report activity");
            let (key, potential, welfare) = reduce_state(
                game,
                &outcome.final_config,
                Some(&miner_active),
                Some(&coin_active),
            );
            (outcome, key, potential, welfare)
        }
    };
    Ok(ReplicaRecord {
        replica: index,
        seed,
        steps: outcome.steps,
        converged: outcome.converged,
        churn_applied: outcome.churn_applied,
        key,
        potential,
        welfare,
        wall_secs: clock.elapsed().as_secs_f64(),
    })
}

/// Runs a single replica standalone — the naive per-trajectory path the
/// determinism proptest replays against [`run`]'s aggregate.
///
/// # Errors
///
/// As [`run`], for this replica only.
pub fn replica(spec: &EnsembleSpec, index: usize) -> Result<ReplicaRecord, EnsembleError> {
    spec.validate()?;
    replica_with(spec, None, index, None)
}

/// Builds the ensemble's shared time-zero image: construct the universe
/// tracker once, encode it, and decode the bytes back into the
/// [`Snapshot`] every replica forks. The encode → decode round trip is
/// deliberate — it exercises the exact wire image a checkpoint file
/// would carry, so the ensemble continuously proves the codec faithful.
///
/// `None` for scheduled churny ensembles, whose replicas need their own
/// full universe (the scheduler consumes the per-replica scenario).
fn shared_snapshot(spec: &EnsembleSpec, lane: &TraceLane) -> Result<Option<Snapshot>, String> {
    let roundtrip = |tracker: &MassTracker<'_>| {
        let bytes = {
            let _encode = lane.span(TraceEventKind::SnapshotEncode, spec.miners as u64);
            Snapshot::of(tracker).encode()
        };
        let _decode = lane.span(TraceEventKind::SnapshotDecode, bytes.len() as u64);
        Snapshot::try_from(bytes.as_slice()).map_err(|e| e.to_string())
    };
    match &spec.churn {
        None => {
            // The snapshot's own configuration is immaterial here:
            // churn-free replicas fork *at* their private random start
            // (`Snapshot::fork_at`), scheduled ones only borrow the game.
            let game = scale_class_game(spec.miners);
            let start =
                Configuration::uniform(CoinId(0), game.system()).map_err(|e| e.to_string())?;
            let tracker = MassTracker::new(&game, &start).map_err(|e| e.to_string())?;
            roundtrip(&tracker).map(Some)
        }
        Some(_) if spec.scheduler.is_some() => Ok(None),
        Some(churn) => {
            // The churn universe is seed-invariant (only the timeline
            // varies per replica — pinned by the bridge tests), so any
            // seed describes the shared time-zero state.
            let scenario = churn_scenario(spec, churn, 0);
            let universe =
                churn_universe(&scenario, CHURN_RESOLUTION).map_err(|e| e.to_string())?;
            let tracker = MassTracker::with_activity(
                &universe.game,
                &universe.start,
                &universe.miner_active,
                &universe.coin_active,
            )
            .map_err(|e| e.to_string())?;
            roundtrip(&tracker).map(Some)
        }
    }
}

/// Executes the ensemble on `threads` work-stealing workers and folds
/// the replica records into an [`EnsembleReport`].
///
/// # Errors
///
/// * [`EnsembleError::InvalidSpec`] for a degenerate spec;
/// * [`EnsembleError::Replica`] when a replica's dynamics or churn
///   lowering fail (smallest failing index);
/// * [`EnsembleError::Panicked`] when a replica panicked.
///
/// # Examples
///
/// ```
/// use goc_analysis::ensemble::{run, EnsembleSpec};
///
/// let report = run(&EnsembleSpec::new(16, 8, 7), 2)?;
/// assert_eq!(report.aggregate.replicas, 8);
/// assert_eq!(report.aggregate.converged, 8);
/// assert!(report.aggregate.equilibria.distinct >= 1);
/// # Ok::<(), goc_analysis::ensemble::EnsembleError>(())
/// ```
pub fn run(spec: &EnsembleSpec, threads: usize) -> Result<EnsembleReport, EnsembleError> {
    run_recorded(spec, threads, &Registry::disabled())
}

/// [`run`] with telemetry: executor scheduling counters
/// ([`executor::ExecutorMetrics`] — replicas started / finished /
/// stolen) and the `goc_ensemble_replica_wall_secs` histogram land on
/// `registry`. The registry only ever sees wall-clock and scheduling
/// facts — the [`EnsembleAggregate`] fold is untouched, so
/// [`EnsembleReport::deterministic_json`] is bit-identical with any
/// registry (the determinism suite pins this).
///
/// # Errors
///
/// As [`run`].
pub fn run_recorded(
    spec: &EnsembleSpec,
    threads: usize,
    registry: &Registry,
) -> Result<EnsembleReport, EnsembleError> {
    run_traced(spec, threads, registry, trace::global())
}

/// [`run_recorded`] with flight-recorder tracing on `tracer`: a
/// coordinator lane spans the shared-snapshot encode/decode, and each
/// replica gets `replica_start`/`replica_finish` instants plus a
/// `snapshot_fork` span (correlation = replica index) on a per-worker
/// lane. Like the registry, the tracer only ever sees wall-clock facts
/// — the deterministic aggregate is untouched, and on a disabled or
/// standby recorder every event is a one-relaxed-load no-op.
/// ([`run_recorded`] passes [`trace::global`], so `goc run --trace`
/// lights this path up without any plumbing through [`EnsembleSpec`].)
///
/// # Errors
///
/// As [`run`].
pub fn run_traced(
    spec: &EnsembleSpec,
    threads: usize,
    registry: &Registry,
    tracer: &TraceRecorder,
) -> Result<EnsembleReport, EnsembleError> {
    spec.validate()?;
    let metrics = ExecutorMetrics::register(registry);
    let wall_hist = registry.histogram("goc_ensemble_replica_wall_secs");
    let clock = Instant::now();
    let coordinator = tracer.lane();
    // One universe, encoded and decoded once; every replica forks the
    // decoded image instead of rebuilding its own (see `replica_with`).
    let shared = shared_snapshot(spec, &coordinator)
        .map_err(|error| EnsembleError::Replica { replica: 0, error })?;
    let results = run_indexed_recorded(
        spec.replicas,
        threads,
        |index| {
            // One lane per replica invocation; the recorder's free list
            // recycles them, so live lanes stay bounded by concurrency.
            let lane = tracer.lane();
            lane.instant(TraceEventKind::ReplicaStart, index as u64);
            let result = replica_with(spec, shared.as_ref(), index, Some(&lane));
            lane.instant(TraceEventKind::ReplicaFinish, index as u64);
            result
        },
        Some(&metrics),
    )
    .map_err(EnsembleError::Panicked)?;
    // First failing replica (results are index-ordered) wins.
    let mut records = Vec::with_capacity(results.len());
    for result in results {
        records.push(result?);
    }
    let total_wall = clock.elapsed().as_secs_f64();

    // The fold: replica order, streaming accumulators only.
    let mut steps = Welford::new();
    let mut steps_sketch = QuantileSketch::new();
    let mut replica_wall = Welford::new();
    let mut index = FingerprintIndex::new();
    let mut converged = 0usize;
    let mut churn_deltas = 0u64;
    for record in &records {
        steps.push(record.steps as f64);
        steps_sketch.push(record.steps as f64);
        replica_wall.push(record.wall_secs);
        wall_hist.observe(record.wall_secs);
        churn_deltas += record.churn_applied as u64;
        if record.converged {
            converged += 1;
            index.record(record.key.clone(), record.potential, record.welfare);
        }
    }
    Ok(EnsembleReport {
        spec: spec.clone(),
        aggregate: EnsembleAggregate {
            replicas: spec.replicas,
            converged,
            churn_deltas,
            steps: steps.summary(),
            step_percentiles: StepPercentiles {
                p50: steps_sketch.quantile(0.5),
                p90: steps_sketch.quantile(0.9),
                p99: steps_sketch.quantile(0.99),
            },
            equilibria: index.census(CENSUS_ROWS),
        },
        timing: EnsembleTiming {
            threads: threads.max(1),
            total_wall_secs: total_wall,
            replicas_per_sec: spec.replicas as f64 / total_wall.max(1e-9),
            replica_wall_secs: replica_wall.summary(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation_names_the_problem() {
        assert!(EnsembleSpec::new(16, 4, 0).validate().is_ok());
        let err = EnsembleSpec::new(16, 0, 0).validate().unwrap_err();
        assert!(err.to_string().contains("replicas"));
        let err = EnsembleSpec::new(0, 4, 0).validate().unwrap_err();
        assert!(err.to_string().contains("miners"));
        let mut spec = EnsembleSpec::new(16, 4, 0);
        spec.horizon_days = 0.0;
        assert!(spec.validate().is_err());
        assert!(run(&EnsembleSpec::new(16, 0, 0), 2).is_err());
    }

    #[test]
    fn aggregates_are_thread_invariant() {
        let spec = EnsembleSpec::new(24, 12, 99);
        let a = run(&spec, 1).unwrap();
        let b = run(&spec, 4).unwrap();
        assert_eq!(a.aggregate, b.aggregate);
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert_eq!(a.aggregate.replicas, 12);
        assert_eq!(a.aggregate.converged, 12);
        assert_eq!(
            a.aggregate.equilibria.entries.len(),
            a.aggregate.equilibria.distinct.min(12)
        );
    }

    #[test]
    fn scheduled_ensembles_converge_and_census_covers_replicas() {
        let spec = EnsembleSpec::new(16, 10, 3).with_scheduler(SchedulerKind::UniformRandom);
        let report = run(&spec, 2).unwrap();
        assert_eq!(report.aggregate.converged, 10);
        let hits: u64 = report
            .aggregate
            .equilibria
            .entries
            .iter()
            .map(|e| e.hits)
            .sum();
        assert_eq!(hits, 10, "every converged replica is in the census");
        assert!(report.aggregate.equilibria.poa_ratio >= 1.0);
        assert!(report.aggregate.equilibria.pos_ratio >= 1.0);
        assert_eq!(report.spec.scheduler_name(), "uniform-random");
    }

    #[test]
    fn churn_ensembles_absorb_deltas() {
        let spec = EnsembleSpec::new(64, 4, 5).with_churn(20);
        assert!(spec.churn.is_some());
        let report = run(&spec, 2).unwrap();
        assert_eq!(report.aggregate.converged, 4);
        assert!(
            report.aggregate.churn_deltas >= 4,
            "replicas absorbed {} deltas",
            report.aggregate.churn_deltas
        );
        // The census keys carry the coin-lifecycle outcome: the fixture
        // retires coin 1 and launches coin 2.
        for entry in &report.aggregate.equilibria.entries {
            assert_eq!(entry.live, vec![true, false, true]);
        }
        // Thread invariance holds under churn too.
        let again = run(&spec, 5).unwrap();
        assert_eq!(report.aggregate, again.aggregate);
    }

    #[test]
    fn telemetry_never_reaches_the_deterministic_report() {
        // The determinism guard: an enabled registry observes the run
        // (scheduling counters + wall histogram) without perturbing the
        // aggregate or leaking into `deterministic_json`.
        let spec = EnsembleSpec::new(24, 10, 7);
        let bare = run(&spec, 2).unwrap();
        let registry = Registry::new();
        let recorded = run_recorded(&spec, 3, &registry).unwrap();
        assert_eq!(bare.aggregate, recorded.aggregate);
        assert_eq!(bare.deterministic_json(), recorded.deterministic_json());
        assert!(
            !recorded.deterministic_json().contains("goc_ensemble"),
            "metric names must not appear in the deterministic report"
        );
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("goc_ensemble_replicas_started_total"),
            Some(10)
        );
        assert_eq!(
            snap.counter("goc_ensemble_replicas_finished_total"),
            Some(10)
        );
        assert_eq!(
            snap.histogram("goc_ensemble_replica_wall_secs")
                .unwrap()
                .count,
            10
        );
    }

    #[test]
    fn tracing_spans_the_snapshot_and_every_replica() {
        let spec = EnsembleSpec::new(24, 6, 13);
        let bare = run(&spec, 2).unwrap();
        let tracer = TraceRecorder::new(4096);
        let traced = run_traced(&spec, 3, &Registry::disabled(), &tracer).unwrap();
        assert_eq!(bare.aggregate, traced.aggregate, "tracing never perturbs");
        let snap = tracer.snapshot();
        assert_eq!(snap.dropped, 0);
        let count = |kind| snap.events.iter().filter(|e| e.kind == kind).count();
        // One encode and one decode span (begin + end each)...
        assert_eq!(count(TraceEventKind::SnapshotEncode), 2);
        assert_eq!(count(TraceEventKind::SnapshotDecode), 2);
        // ...and per replica: start/finish instants plus a fork span.
        assert_eq!(count(TraceEventKind::ReplicaStart), spec.replicas);
        assert_eq!(count(TraceEventKind::ReplicaFinish), spec.replicas);
        assert_eq!(count(TraceEventKind::SnapshotFork), 2 * spec.replicas);
        // Every replica index appears as a complete start → fork →
        // finish timeline on one lane.
        for index in 0..spec.replicas as u64 {
            let timeline = snap.timeline(index);
            let kinds: Vec<TraceEventKind> = timeline.iter().map(|e| e.kind).collect();
            assert_eq!(
                kinds,
                vec![
                    TraceEventKind::ReplicaStart,
                    TraceEventKind::SnapshotFork,
                    TraceEventKind::SnapshotFork,
                    TraceEventKind::ReplicaFinish,
                ],
                "replica {index}"
            );
            assert!(timeline.windows(2).all(|w| w[0].lane == w[1].lane));
        }
    }

    #[test]
    fn replica_records_match_the_run_fold() {
        let spec = EnsembleSpec::new(16, 6, 11).with_scheduler(SchedulerKind::RoundRobin);
        let report = run(&spec, 3).unwrap();
        let mut naive = FingerprintIndex::new();
        for i in 0..spec.replicas {
            let record = replica(&spec, i).unwrap();
            assert_eq!(record.seed, replica_seed(spec.seed, i));
            assert!(record.converged);
            naive.record(record.key, record.potential, record.welfare);
        }
        assert_eq!(
            naive.census(CENSUS_ROWS),
            report.aggregate.equilibria,
            "standalone replicas reproduce the parallel census"
        );
    }

    #[test]
    fn degenerate_aggregates_round_trip_through_json() {
        // Regression: empty accumulators and infinite potentials used
        // to reach the report as non-finite floats, which the vendored
        // serde renders as `null` — and `null` fails to deserialize
        // back into `f64`. Both degenerate shapes must round-trip.
        let empty = EnsembleAggregate {
            replicas: 0,
            converged: 0,
            churn_deltas: 0,
            steps: Welford::new().summary(),
            step_percentiles: StepPercentiles {
                p50: QuantileSketch::new().quantile(0.5),
                p90: QuantileSketch::new().quantile(0.9),
                p99: QuantileSketch::new().quantile(0.99),
            },
            equilibria: FingerprintIndex::new().census(CENSUS_ROWS),
        };
        let json = serde_json::to_string(&empty).unwrap();
        assert!(!json.contains("null"), "empty aggregate leaks null: {json}");
        let back: EnsembleAggregate = serde_json::from_str(&json).unwrap();
        assert_eq!(empty, back);

        // A census that recorded an unoccupied live coin (potential ∞)
        // and a sketch fed junk: still finite, still round-trips.
        let mut index = FingerprintIndex::new();
        index.record(
            aggregate::EquilibriumKey {
                masses: vec![7, 0],
                live: vec![true, true],
            },
            f64::INFINITY,
            f64::NAN,
        );
        let mut sketch = QuantileSketch::new();
        sketch.push(f64::NAN);
        sketch.push(f64::INFINITY);
        let degenerate = EnsembleAggregate {
            replicas: 1,
            converged: 1,
            churn_deltas: 0,
            steps: Welford::new().summary(),
            step_percentiles: StepPercentiles {
                p50: sketch.quantile(0.5),
                p90: sketch.quantile(0.9),
                p99: sketch.quantile(0.99),
            },
            equilibria: index.census(CENSUS_ROWS),
        };
        let json = serde_json::to_string(&degenerate).unwrap();
        assert!(
            !json.contains("null"),
            "degenerate aggregate leaks null: {json}"
        );
        let back: EnsembleAggregate = serde_json::from_str(&json).unwrap();
        assert_eq!(degenerate, back);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = EnsembleSpec::new(128, 32, 42)
            .with_scheduler(SchedulerKind::MinGain)
            .with_churn(10);
        let json = serde_json::to_string(&spec).unwrap();
        let back: EnsembleSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
