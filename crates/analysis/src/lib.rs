//! # goc-analysis — experiment analysis toolkit
//!
//! Statistics, welfare/security metrics, ASCII tables and charts, and a
//! parallel sweep runner shared by the `goc-experiments` binaries and the
//! benchmark harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chart;
pub mod report;
pub mod stats;
pub mod sweep;
pub mod table;
pub mod welfare;

pub use chart::{ascii_chart, Series};
pub use report::{Artifact, ChartData, Check, ReportItem, RunReport, SeriesData, TableData};
pub use stats::{gini, Histogram, Summary};
pub use sweep::{default_threads, parallel_map};
pub use table::{fmt_f64, Table};
pub use welfare::{dominance_of, max_dominance, payoffs_f64, welfare_efficiency};
