//! # goc-analysis — experiment analysis toolkit
//!
//! Statistics, welfare/security metrics, ASCII tables and charts, a
//! parallel sweep runner shared by the `goc-experiments` binaries and
//! the benchmark harness — and the **parallel ensemble engine**
//! ([`ensemble`]): Monte-Carlo replica execution over a work-stealing
//! executor with deterministic per-replica RNG streams, streaming
//! aggregators (Welford moments, percentile sketches), and an
//! equilibrium fingerprint index mapping the distribution of reached
//! equilibria.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chart;
pub mod ensemble;
pub mod report;
pub mod stats;
pub mod sweep;
pub mod table;
pub mod welfare;

pub use chart::{ascii_chart, Series};
pub use ensemble::{EnsembleReport, EnsembleSpec};
pub use report::{Artifact, ChartData, Check, ReportItem, RunReport, SeriesData, TableData};
pub use stats::{gini, Histogram, LatencyStats, LatencySummary, Summary};
pub use sweep::{default_threads, parallel_map, try_parallel_map};
pub use table::{fmt_f64, Table};
pub use welfare::{dominance_of, max_dominance, payoffs_f64, welfare_efficiency};
