//! The parallel parameter-sweep runner.
//!
//! Experiments sweep seeds × schedulers × game sizes; this fans the work
//! across cores while keeping outputs in input order (determinism of the
//! overall experiment report). Since the ensemble engine landed, the
//! thread pool here is **not** its own: [`parallel_map`] rides the same
//! work-stealing executor the Monte-Carlo replica ensemble runs on
//! ([`crate::ensemble::executor::run_indexed`]) — one parallel substrate
//! for the whole workspace, with panic propagation that names the
//! failing item's index instead of tearing the process down from a
//! detached worker.

use crate::ensemble::executor::run_indexed;
pub use crate::ensemble::executor::WorkerPanic;

/// Runs `f` over `items` on up to `threads` work-stealing worker
/// threads, returning outputs in input order.
///
/// # Panics
///
/// If `f` panics on some item, the panic is re-raised on the caller's
/// thread with the failing item's index and the original message (see
/// [`try_parallel_map`] for the non-panicking form).
///
/// # Examples
///
/// ```
/// use goc_analysis::sweep::parallel_map;
/// let squares = parallel_map(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match try_parallel_map(items, threads, f) {
        Ok(out) => out,
        Err(panic) => panic!("{panic}"),
    }
}

/// [`parallel_map`] with panic propagation as a value: a panicking item
/// yields `Err(WorkerPanic { index, message })` naming the failing
/// item's index, instead of unwinding.
///
/// # Errors
///
/// [`WorkerPanic`] for the smallest item index whose `f` panicked.
///
/// # Examples
///
/// ```
/// use goc_analysis::sweep::try_parallel_map;
/// let err = try_parallel_map(&[1u32, 2, 3], 2, |&x| {
///     assert!(x != 2, "two is right out");
///     x
/// })
/// .unwrap_err();
/// assert_eq!(err.index, 1);
/// ```
pub fn try_parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_indexed(items.len(), threads, |i| f(&items[i]))
}

/// The number of worker threads to use by default: the available
/// parallelism minus one (leave a core for the OS), at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(&[5], 4, |&x: &i32| x + 1);
        assert_eq!(out, vec![6]);
        let empty: Vec<i32> = parallel_map(&[], 4, |x: &i32| *x);
        assert!(empty.is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn panics_carry_the_failing_index() {
        let items: Vec<u32> = (0..20).collect();
        let err = try_parallel_map(&items, 4, |&x| {
            assert!(x != 13, "unlucky");
            x
        })
        .unwrap_err();
        assert_eq!(err.index, 13);
        assert!(err.message.contains("unlucky"));
    }

    #[test]
    #[should_panic(expected = "worker panicked on item 2")]
    fn parallel_map_reraises_with_index() {
        parallel_map(&[0u32, 1, 2], 1, |&x| {
            assert!(x != 2, "boom");
            x
        });
    }
}
