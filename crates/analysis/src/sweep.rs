//! A small parallel parameter-sweep runner on `std::thread::scope`.
//!
//! Experiments sweep seeds × schedulers × game sizes; this fans the work
//! across cores while keeping outputs in input order (determinism of the
//! overall experiment report).

/// Runs `f` over `items` on up to `threads` worker threads, returning
/// outputs in input order.
///
/// # Examples
///
/// ```
/// use goc_analysis::sweep::parallel_map;
/// let squares = parallel_map(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        out.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                **slots[i].lock().expect("slot lock poisoned") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every slot filled by the sweep"))
        .collect()
}

/// The number of worker threads to use by default: the available
/// parallelism minus one (leave a core for the OS), at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(&[5], 4, |&x: &i32| x + 1);
        assert_eq!(out, vec![6]);
        let empty: Vec<i32> = parallel_map(&[], 4, |x: &i32| *x);
        assert!(empty.is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
