//! Aligned ASCII tables and CSV rendering for experiment outputs.

/// A simple table: headers plus string rows.
///
/// # Examples
///
/// ```
/// use goc_analysis::Table;
///
/// let mut t = Table::new(vec!["scheduler", "steps"]);
/// t.row(vec!["round-robin".into(), "12".into()]);
/// t.row(vec!["min-gain".into(), "40".into()]);
/// let text = t.render();
/// assert!(text.contains("round-robin"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned ASCII table with a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ");
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (header row first; naive quoting — cells containing
    /// commas are wrapped in double quotes).
    pub fn to_csv(&self) -> String {
        let quote = |c: &String| {
            if c.contains(',') {
                format!("\"{c}\"")
            } else {
                c.clone()
            }
        };
        let mut out = self.headers.iter().map(quote).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(quote).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats an `f64` compactly for tables (4 significant decimals, no
/// trailing zeros).
pub fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "blongheader"]);
        t.row(vec!["xx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a   blongheader");
        assert!(lines[1].starts_with("--"));
        assert_eq!(lines[2], "xx  1");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_enforced() {
        Table::new(vec!["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a,b".into(), "2".into()]);
        assert_eq!(t.to_csv(), "name,value\n\"a,b\",2\n");
    }

    #[test]
    fn f64_formatting() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(1.0 / 3.0), "0.3333");
        assert_eq!(fmt_f64(-2.5), "-2.5");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
