//! Cross-validation of the two geometric-bucket quantile estimators
//! now built on the shared `goc_telemetry::quantile` helper: the
//! latency histogram (64 buckets over `[1e-6, 1e3]` seconds, reports
//! the bucket upper edge) and the ensemble's `QuantileSketch` (1024
//! buckets over `[1, 1e12]`, reports the bucket geometric midpoint).
//! Fed the same samples — in their respective units — their estimates
//! must agree within the product of their documented per-bucket
//! relative-error bounds, and exactly at the tracked extremes.

use goc_analysis::ensemble::aggregate::QuantileSketch;
use goc_telemetry::{quantile, LatencyHistogram, HIST_BUCKETS, HIST_HI, HIST_LO};
use proptest::prelude::*;

/// Seconds → sketch units. The sketch covers `[1, 1e12]`, so scaling
/// seconds by 1e6 (to microseconds) keeps the whole sampled range
/// `[1e-5, 100]` s well inside both estimators' bucketed ranges.
const SCALE: f64 = 1e6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn histogram_and_sketch_quantiles_agree_within_documented_error(
        samples in prop::collection::vec(1e-5f64..100.0, 10..400),
        qs in prop::collection::vec(0.01f64..0.99, 1..6),
    ) {
        let hist = LatencyHistogram::detached();
        let mut sketch = QuantileSketch::new();
        for &s in &samples {
            hist.observe(s);
            sketch.push(s * SCALE);
        }
        let snap = hist.snapshot("fusion_secs");
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(sketch.count(), samples.len() as u64);

        // Same multiset + same nearest-rank convention ⇒ both pick the
        // same underlying sample; the histogram reports its bucket's
        // upper edge (≤ one bucket ratio high) and the sketch its
        // bucket's geometric midpoint (≤ half its ratio either way).
        let hist_ratio = quantile::bucket_ratio(HIST_LO, HIST_HI, HIST_BUCKETS);
        let sketch_ratio = quantile::bucket_ratio(1.0, 1e12, 1024);
        let bound = hist_ratio * sketch_ratio;
        for &q in &qs {
            let h = snap.quantile(q);
            let s = sketch.quantile(q) / SCALE;
            prop_assert!(h > 0.0 && s > 0.0);
            let ratio = if h > s { h / s } else { s / h };
            prop_assert!(
                ratio <= bound,
                "q={q}: hist={h} sketch={s} disagree by {ratio} > {bound}"
            );
        }

        // The extremes are tracked exactly by both (the histogram's
        // min/max round through integer nanoseconds — allow that).
        prop_assert!((snap.quantile(0.0) - sketch.quantile(0.0) / SCALE).abs() <= 2e-9);
        prop_assert!((snap.quantile(1.0) - sketch.quantile(1.0) / SCALE).abs() <= 2e-9);
    }
}
