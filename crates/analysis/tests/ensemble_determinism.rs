//! Property suite pinning the ensemble engine's two core contracts:
//!
//! 1. **Thread invariance** — the same [`EnsembleSpec`] (same root
//!    seed) produces a bit-identical [`EnsembleAggregate`] across
//!    `threads ∈ {1, 2, 8}`: replica seeds are a pure function of
//!    `(root, index)` and the fold runs in replica order, so the worker
//!    count can only change wall-clock, never results.
//! 2. **Fingerprint-index fidelity** — on small games, the equilibrium
//!    census must agree exactly with a *naive* per-replica replay:
//!    collect every converged replica's full per-coin mass vector,
//!    sort-and-dedup, and compare distinct count, canonical keys, and
//!    per-key hit counts against the streaming index.
//!
//! Both properties cover the scheduler-free incremental loop, every
//! bundled scheduler kind, and the churny fixture plan.

use std::collections::BTreeMap;

use proptest::prelude::*;

use goc_analysis::ensemble::aggregate::EquilibriumKey;
use goc_analysis::ensemble::{replica, run, EnsembleSpec};
use goc_learning::SchedulerKind;

/// A small random ensemble spec: population, replica count, root seed,
/// and a scheduler choice (index 0 = the scheduler-free incremental
/// loop, 1..=6 = the bundled kinds).
fn small_spec() -> impl Strategy<Value = EnsembleSpec> {
    (
        8usize..48,
        3usize..14,
        0u64..u64::MAX,
        0usize..=SchedulerKind::ALL.len(),
    )
        .prop_map(|(miners, replicas, seed, sched)| {
            let spec = EnsembleSpec::new(miners, replicas, seed);
            match sched {
                0 => spec,
                i => spec.with_scheduler(SchedulerKind::ALL[i - 1]),
            }
        })
}

/// As [`small_spec`], but with the fixture churn plan attached (modest
/// populations keep the per-case universe builds cheap).
fn churny_spec() -> impl Strategy<Value = EnsembleSpec> {
    (16usize..64, 2usize..6, 0u64..u64::MAX, 5u32..30).prop_map(
        |(miners, replicas, seed, turnover)| {
            EnsembleSpec::new(miners, replicas, seed)
                .with_scheduler(SchedulerKind::RoundRobin)
                .with_churn(turnover)
        },
    )
}

/// The naive census: replay every replica standalone, keep the
/// converged ones' canonical keys, sort-and-dedup.
fn naive_census(spec: &EnsembleSpec) -> (Vec<EquilibriumKey>, BTreeMap<EquilibriumKey, u64>) {
    let mut keys: Vec<EquilibriumKey> = Vec::new();
    let mut hits: BTreeMap<EquilibriumKey, u64> = BTreeMap::new();
    for i in 0..spec.replicas {
        let record = replica(spec, i).expect("small fixture replicas run");
        if record.converged {
            keys.push(record.key.clone());
            *hits.entry(record.key).or_insert(0) += 1;
        }
    }
    keys.sort();
    keys.dedup();
    (keys, hits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn aggregates_are_identical_across_thread_counts(spec in small_spec()) {
        let base = run(&spec, 1).expect("ensemble runs");
        for threads in [2usize, 8] {
            let other = run(&spec, threads).expect("ensemble runs");
            prop_assert_eq!(
                &base.aggregate,
                &other.aggregate,
                "aggregate drifted between 1 and {} threads",
                threads
            );
            prop_assert_eq!(base.deterministic_json(), other.deterministic_json());
        }
        // The sketch/Welford layers describe exactly the replicas run.
        prop_assert_eq!(base.aggregate.replicas, spec.replicas);
        prop_assert_eq!(base.aggregate.steps.n, spec.replicas as u64);
        prop_assert!(base.aggregate.step_percentiles.p50 <= base.aggregate.step_percentiles.p99);
    }

    #[test]
    fn fingerprint_index_matches_naive_sort_and_dedup(spec in small_spec()) {
        let report = run(&spec, 4).expect("ensemble runs");
        let (naive_keys, naive_hits) = naive_census(&spec);
        let census = &report.aggregate.equilibria;
        prop_assert_eq!(census.distinct, naive_keys.len());
        prop_assert_eq!(census.total_hits, report.aggregate.converged as u64);
        // Every listed census row matches the naive hit count for its
        // mass vector (the listing caps at 12 rows; the distinct count
        // and total_hits always cover everything).
        prop_assert!(census.entries.len() == census.distinct.min(12));
        for entry in &census.entries {
            let key = EquilibriumKey {
                masses: entry
                    .masses
                    .iter()
                    .map(|m| m.parse::<u128>().expect("decimal mass"))
                    .collect(),
                live: entry.live.clone(),
            };
            prop_assert_eq!(
                Some(&entry.hits),
                naive_hits.get(&key),
                "hit count diverged for fingerprint {}",
                &entry.fingerprint
            );
            prop_assert!(naive_keys.binary_search(&key).is_ok());
        }
    }

    #[test]
    fn churny_aggregates_are_identical_across_thread_counts(spec in churny_spec()) {
        let a = run(&spec, 1).expect("churny ensemble runs");
        let b = run(&spec, 8).expect("churny ensemble runs");
        prop_assert_eq!(&a.aggregate, &b.aggregate);
        prop_assert!(a.aggregate.churn_deltas >= a.aggregate.replicas as u64,
            "every replica absorbs at least the coin lifecycle");
    }
}
