//! Property tests for the learning engine: universal convergence, path
//! well-formedness, and scheduler contracts on generated games.

use goc_game::{CoinId, Configuration, Game};
use goc_learning::{run, LearningOptions, SchedulerKind};
use proptest::prelude::*;

fn arb_game_and_start() -> impl Strategy<Value = (Game, Configuration)> {
    (2usize..8, 2usize..4).prop_flat_map(|(n, k)| {
        (
            proptest::collection::vec(1u64..500, n),
            proptest::collection::vec(1u64..500, k),
            proptest::collection::vec(0usize..k, n),
        )
            .prop_map(|(p, r, a)| {
                let game = Game::build(&p, &r).expect("valid parameters");
                let start = Configuration::new(a.into_iter().map(CoinId).collect(), game.system())
                    .expect("valid assignment");
                (game, start)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every scheduler converges with a valid improving path whose every
    /// prefix step is a legal better response at the time it was taken.
    #[test]
    fn paths_are_legal_improving_sequences(
        (game, start) in arb_game_and_start(),
        kind_idx in 0usize..6,
        seed in 0u64..500,
    ) {
        let kind = SchedulerKind::ALL[kind_idx];
        let mut sched = kind.build(seed);
        let outcome = run(
            &game,
            &start,
            sched.as_mut(),
            LearningOptions { record_path: true, ..LearningOptions::default() },
        ).unwrap();
        prop_assert!(outcome.converged);

        let mut config = start.clone();
        for mv in &outcome.path {
            let masses = config.masses(game.system());
            prop_assert_eq!(config.coin_of(mv.miner), mv.from);
            prop_assert!(game.is_better_response(mv.miner, mv.to, &config, &masses));
            config.apply_move(mv.miner, mv.to);
        }
        prop_assert_eq!(&config, &outcome.final_config);
        prop_assert!(game.is_stable(&config));
    }

    /// The final payoff of the last mover weakly exceeds what it had at
    /// its final move time; more usefully: nobody can improve at the end.
    #[test]
    fn no_regrets_at_convergence((game, start) in arb_game_and_start(), seed in 0u64..100) {
        let mut sched = SchedulerKind::UniformRandom.build(seed);
        let outcome = run(&game, &start, sched.as_mut(), LearningOptions::default()).unwrap();
        let masses = outcome.final_config.masses(game.system());
        for p in game.system().miner_ids() {
            prop_assert!(game.better_responses(p, &outcome.final_config, &masses).is_empty());
        }
    }

    /// Step counts are bounded by the number of distinct potential levels
    /// (each step strictly increases the potential), which is at most the
    /// number of configurations.
    #[test]
    fn steps_bounded_by_configuration_count(
        (game, start) in arb_game_and_start(),
        kind_idx in 0usize..6,
    ) {
        let kind = SchedulerKind::ALL[kind_idx];
        let mut sched = kind.build(0);
        let outcome = run(&game, &start, sched.as_mut(), LearningOptions::default()).unwrap();
        let k = game.system().num_coins() as u128;
        let mut bound: u128 = 1;
        for _ in 0..game.system().num_miners() {
            bound = bound.saturating_mul(k);
        }
        prop_assert!((outcome.steps as u128) < bound);
    }

    /// Scheduler contract: whatever move a bundled scheduler proposes is
    /// in the engine's legal move list (checked here independently).
    #[test]
    fn schedulers_only_propose_listed_moves(
        (game, start) in arb_game_and_start(),
        kind_idx in 0usize..6,
        seed in 0u64..100,
    ) {
        let kind = SchedulerKind::ALL[kind_idx];
        let mut sched = kind.build(seed);
        let moves = game.improving_moves(&start);
        prop_assume!(!moves.is_empty());
        let mv = sched.pick(&game, &start, &moves).expect("legal input");
        prop_assert!(moves.contains(&mv), "{} proposed {:?}", kind, mv);
    }
}
