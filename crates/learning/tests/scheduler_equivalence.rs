//! Property suite pinning the incremental scheduler protocol to the
//! eager oracle: for **every** bundled [`SchedulerKind`], on random
//! games (restricted included) and along whole better-response
//! trajectories, the move chosen through
//! [`Scheduler::pick_incremental`] over a [`MoveSource`] must equal the
//! move the same scheduler picks eagerly from the complete
//! improving-move list ([`Scheduler::pick_with`]). Both instances are
//! built from the same seed and stepped in lockstep, so any drift —
//! ordering, tie-breaks, randomness accounting — fails the suite.

use proptest::prelude::*;

use goc_game::{CoinId, Configuration, Game, MinerId, MoveSource};
use goc_learning::{run, LearningOptions, SchedulerKind};

/// A random small game plus a random configuration.
fn game_and_config() -> impl Strategy<Value = (Game, Configuration)> {
    (2usize..8, 2usize..4).prop_flat_map(|(n, k)| {
        let powers = proptest::collection::vec(1u64..200, n);
        let rewards = proptest::collection::vec(1u64..200, k);
        let assignment = proptest::collection::vec(0usize..k, n);
        (powers, rewards, assignment).prop_map(|(p, r, a)| {
            let game = Game::build(&p, &r).expect("valid parameters");
            let config = Configuration::new(a.into_iter().map(CoinId).collect(), game.system())
                .expect("valid assignment");
            (game, config)
        })
    })
}

/// As [`game_and_config`], but with duplicated powers so strategic
/// groups genuinely collapse (the interesting regime for the source).
fn grouped_game_and_config() -> impl Strategy<Value = (Game, Configuration)> {
    (4usize..10, 2usize..4).prop_flat_map(|(n, k)| {
        let classes = proptest::collection::vec(1u64..9, 2);
        let rewards = proptest::collection::vec(1u64..50, k);
        let assignment = proptest::collection::vec(0usize..k, n);
        (classes, rewards, assignment).prop_map(move |(classes, r, a)| {
            let powers: Vec<u64> = (0..n).map(|i| classes[i % classes.len()]).collect();
            let game = Game::build(&powers, &r).expect("valid parameters");
            let config = Configuration::new(a.into_iter().map(CoinId).collect(), game.system())
                .expect("valid assignment");
            (game, config)
        })
    })
}

/// As [`game_and_config`], but with a random coin-restriction matrix
/// (every miner keeps at least one permitted coin).
fn restricted_game_and_config() -> impl Strategy<Value = (Game, Configuration)> {
    (
        game_and_config(),
        proptest::collection::vec(0usize..64, 2usize..8),
    )
        .prop_map(|((game, config), seeds)| {
            let n = game.system().num_miners();
            let k = game.system().num_coins();
            let restrictions: Vec<Vec<bool>> = (0..n)
                .map(|p| {
                    let bits = seeds[p % seeds.len()];
                    (0..k)
                        // Always permit the currently-mined coin so the
                        // configuration stays legal under restrictions.
                        .map(|c| c == config.coin_of(MinerId(p)).index() || (bits >> c) & 1 == 1)
                        .collect()
                })
                .collect();
            let game = game
                .with_restrictions(restrictions)
                .expect("every miner keeps its own coin");
            (game, config)
        })
}

/// Runs `kind` in lockstep along a whole trajectory: the incremental
/// pick must equal the eager pick at every step, and both must land on
/// the same stable configuration.
fn assert_lockstep_equivalence(
    kind: SchedulerKind,
    game: &Game,
    start: &Configuration,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut eager = kind.build(seed);
    let mut incremental = kind.build(seed);
    let mut s = start.clone();
    let mut src = MoveSource::new(game, start).expect("valid start");
    for step in 0..10_000 {
        let moves = game.improving_moves(&s);
        if moves.is_empty() {
            prop_assert!(src.is_stable(), "{kind}: source disagrees on stability");
            return Ok(());
        }
        let masses = s.masses(game.system());
        let mv_eager = eager
            .pick_with(game, &s, &masses, &moves)
            .expect("legal eager input");
        let mv_incremental = incremental
            .pick_incremental(&mut src)
            .expect("source has improving moves");
        prop_assert_eq!(
            mv_eager,
            mv_incremental,
            "{} diverged at step {} in {}",
            kind,
            step,
            s
        );
        prop_assert!(moves.contains(&mv_eager), "{} picked unlisted move", kind);
        s.apply_move(mv_eager.miner, mv_eager.to);
        src.apply(mv_eager.miner, mv_eager.to);
    }
    panic!("trajectory did not terminate within the step bound");
}

proptest! {
    /// Unrestricted random games: stepwise pick equivalence for all six
    /// bundled schedulers along the full trajectory.
    #[test]
    fn incremental_picks_match_eager_picks(
        (game, start) in game_and_config(),
        seed in 0u64..1000,
    ) {
        for kind in SchedulerKind::ALL {
            assert_lockstep_equivalence(kind, &game, &start, seed)?;
        }
    }

    /// Duplicated powers (nontrivial strategic groups): the regime where
    /// group-level shortcuts could drift from per-miner semantics.
    #[test]
    fn incremental_picks_match_eager_picks_on_grouped_games(
        (game, start) in grouped_game_and_config(),
        seed in 0u64..1000,
    ) {
        for kind in SchedulerKind::ALL {
            assert_lockstep_equivalence(kind, &game, &start, seed)?;
        }
    }

    /// Restricted games (singleton groups): equivalence must survive the
    /// degenerate partition too.
    #[test]
    fn incremental_picks_match_eager_picks_on_restricted_games(
        (game, start) in restricted_game_and_config(),
        seed in 0u64..1000,
    ) {
        for kind in SchedulerKind::ALL {
            assert_lockstep_equivalence(kind, &game, &start, seed)?;
        }
    }

    /// The engine (`run`) drives the incremental path; replaying its
    /// recorded trajectory through an eager lockstep scheduler must
    /// reproduce it move for move.
    #[test]
    fn engine_runs_replay_under_the_eager_oracle(
        (game, start) in grouped_game_and_config(),
        kind_idx in 0usize..6,
        seed in 0u64..100,
    ) {
        let kind = SchedulerKind::ALL[kind_idx];
        let mut sched = kind.build(seed);
        let outcome = run(
            &game,
            &start,
            sched.as_mut(),
            LearningOptions {
                record_path: true,
                audit_potential: true,
                ..LearningOptions::default()
            },
        ).expect("bundled schedulers are legal");
        prop_assert!(outcome.converged);
        let mut eager = kind.build(seed);
        let mut s = start.clone();
        for (i, &mv) in outcome.path.iter().enumerate() {
            let moves = game.improving_moves(&s);
            prop_assert!(!moves.is_empty());
            let masses = s.masses(game.system());
            let eager_mv = eager.pick_with(&game, &s, &masses, &moves).expect("legal");
            prop_assert_eq!(eager_mv, mv, "{} replay diverged at step {}", kind, i);
            s.apply_move(mv.miner, mv.to);
        }
        prop_assert_eq!(&s, &outcome.final_config);
        prop_assert!(game.is_stable(&s));
    }
}
