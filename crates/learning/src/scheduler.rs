//! Schedulers: *which* better-response step is taken next.
//!
//! Theorem 1 quantifies over **arbitrary** better-response learning — any
//! rule that picks any improving step in any order converges. The engine
//! therefore exposes scheduling as a trait and ships a spectrum of
//! implementations, from the benign (round-robin best response) to the
//! adversarially slow (smallest positive gain), which the experiments
//! sweep to exercise the theorem's "for all" claim.

use std::fmt;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use goc_game::{Configuration, Game, Masses, Move, Ratio};

/// Picks the next better-response step.
///
/// The engine calls [`Scheduler::pick_with`] with the complete list of
/// legal improving moves in the current configuration (never empty) plus
/// the engine's incrementally-maintained mass table, and applies the
/// returned move after validating it is one of them — a scheduler that
/// fabricates a non-improving move is reported as
/// [`LearningError::NotABetterResponse`](crate::dynamics::LearningError).
pub trait Scheduler {
    /// Chooses one of `moves` (all legal better-response steps in `s`).
    fn pick(&mut self, game: &Game, s: &Configuration, moves: &[Move]) -> Move;

    /// [`Scheduler::pick`] with the engine's precomputed mass table, so
    /// schedulers ranking moves by RPU or gain need not rescan the
    /// population each step. The default ignores `masses` and delegates
    /// to [`Scheduler::pick`]; the bundled schedulers override it.
    fn pick_with(
        &mut self,
        game: &Game,
        s: &Configuration,
        masses: &Masses,
        moves: &[Move],
    ) -> Move {
        let _ = masses;
        self.pick(game, s, moves)
    }

    /// Short human-readable name, used in experiment tables.
    fn name(&self) -> &'static str;
}

/// Round-robin over miners; the selected miner plays its **best** response
/// (maximal post-move RPU, ties to the lowest coin id).
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting from miner `p0`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, game: &Game, s: &Configuration, moves: &[Move]) -> Move {
        let masses = s.masses(game.system());
        self.pick_with(game, s, &masses, moves)
    }

    fn pick_with(
        &mut self,
        game: &Game,
        s: &Configuration,
        masses: &Masses,
        moves: &[Move],
    ) -> Move {
        let n = game.system().num_miners();
        for offset in 0..n {
            let p = goc_game::MinerId((self.cursor + offset) % n);
            if let Some(c) = game.best_response(p, s, masses) {
                self.cursor = (p.index() + 1) % n;
                return Move {
                    miner: p,
                    from: s.coin_of(p),
                    to: c,
                };
            }
        }
        // Unreachable when `moves` is nonempty; fall back defensively.
        moves[0]
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Uniformly random choice among all improving moves (the "arbitrary
/// improving path" of the paper, in distribution).
pub struct UniformRandom {
    rng: SmallRng,
}

impl UniformRandom {
    /// Creates a scheduler with a fixed seed (deterministic runs).
    pub fn seeded(seed: u64) -> Self {
        UniformRandom {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl fmt::Debug for UniformRandom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UniformRandom").finish_non_exhaustive()
    }
}

impl Scheduler for UniformRandom {
    fn pick(&mut self, _game: &Game, _s: &Configuration, moves: &[Move]) -> Move {
        *moves
            .choose(&mut self.rng)
            .expect("engine guarantees a nonempty move list")
    }

    fn name(&self) -> &'static str {
        "uniform-random"
    }
}

/// Always takes the improving move with the **largest** payoff gain
/// (ties to the lowest miner id, then lowest coin id).
#[derive(Debug, Default)]
pub struct MaxGain;

impl Scheduler for MaxGain {
    fn pick(&mut self, game: &Game, s: &Configuration, moves: &[Move]) -> Move {
        let masses = s.masses(game.system());
        self.pick_with(game, s, &masses, moves)
    }

    fn pick_with(
        &mut self,
        game: &Game,
        s: &Configuration,
        masses: &Masses,
        moves: &[Move],
    ) -> Move {
        extremal_by_gain(game, s, masses, moves, true)
    }

    fn name(&self) -> &'static str {
        "max-gain"
    }
}

/// Always takes the improving move with the **smallest** positive gain —
/// an adversarially slow learner that stresses convergence bounds.
#[derive(Debug, Default)]
pub struct MinGain;

impl Scheduler for MinGain {
    fn pick(&mut self, game: &Game, s: &Configuration, moves: &[Move]) -> Move {
        let masses = s.masses(game.system());
        self.pick_with(game, s, &masses, moves)
    }

    fn pick_with(
        &mut self,
        game: &Game,
        s: &Configuration,
        masses: &Masses,
        moves: &[Move],
    ) -> Move {
        extremal_by_gain(game, s, masses, moves, false)
    }

    fn name(&self) -> &'static str {
        "min-gain"
    }
}

fn extremal_by_gain(
    game: &Game,
    s: &Configuration,
    masses: &Masses,
    moves: &[Move],
    max: bool,
) -> Move {
    let mut best: Option<(Ratio, Move)> = None;
    for &mv in moves {
        let gain = game.gain(mv.miner, mv.to, s, masses);
        let better = match &best {
            None => true,
            Some((g, _)) => {
                if max {
                    gain > *g
                } else {
                    gain < *g
                }
            }
        };
        if better {
            best = Some((gain, mv));
        }
    }
    best.expect("engine guarantees a nonempty move list").1
}

/// The largest-power unstable miner moves first (models big pools reacting
/// fastest to profitability signals), playing its best response.
#[derive(Debug, Default)]
pub struct LargestMinerFirst;

impl Scheduler for LargestMinerFirst {
    fn pick(&mut self, game: &Game, s: &Configuration, moves: &[Move]) -> Move {
        let masses = s.masses(game.system());
        self.pick_with(game, s, &masses, moves)
    }

    fn pick_with(
        &mut self,
        game: &Game,
        s: &Configuration,
        masses: &Masses,
        moves: &[Move],
    ) -> Move {
        let p = moves
            .iter()
            .map(|m| m.miner)
            .max_by_key(|p| (game.system().power_of(*p), std::cmp::Reverse(p.index())))
            .expect("engine guarantees a nonempty move list");
        let c = game
            .best_response(p, s, masses)
            .expect("miner appears in the move list, so it has a better response");
        Move {
            miner: p,
            from: s.coin_of(p),
            to: c,
        }
    }

    fn name(&self) -> &'static str {
        "largest-miner-first"
    }
}

/// The smallest-power unstable miner moves first (nimble hobby miners
/// chase profitability, as on whattomine.com), playing its best response.
#[derive(Debug, Default)]
pub struct SmallestMinerFirst;

impl Scheduler for SmallestMinerFirst {
    fn pick(&mut self, game: &Game, s: &Configuration, moves: &[Move]) -> Move {
        let masses = s.masses(game.system());
        self.pick_with(game, s, &masses, moves)
    }

    fn pick_with(
        &mut self,
        game: &Game,
        s: &Configuration,
        masses: &Masses,
        moves: &[Move],
    ) -> Move {
        let p = moves
            .iter()
            .map(|m| m.miner)
            .min_by_key(|p| (game.system().power_of(*p), p.index()))
            .expect("engine guarantees a nonempty move list");
        let c = game
            .best_response(p, s, masses)
            .expect("miner appears in the move list, so it has a better response");
        Move {
            miner: p,
            from: s.coin_of(p),
            to: c,
        }
    }

    fn name(&self) -> &'static str {
        "smallest-miner-first"
    }
}

/// Enumeration of the bundled schedulers, for parameter sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`UniformRandom`] (takes a seed).
    UniformRandom,
    /// [`MaxGain`].
    MaxGain,
    /// [`MinGain`].
    MinGain,
    /// [`LargestMinerFirst`].
    LargestMinerFirst,
    /// [`SmallestMinerFirst`].
    SmallestMinerFirst,
}

impl SchedulerKind {
    /// All bundled kinds, in a stable order for sweep tables.
    pub const ALL: [SchedulerKind; 6] = [
        SchedulerKind::RoundRobin,
        SchedulerKind::UniformRandom,
        SchedulerKind::MaxGain,
        SchedulerKind::MinGain,
        SchedulerKind::LargestMinerFirst,
        SchedulerKind::SmallestMinerFirst,
    ];

    /// Instantiates the scheduler; `seed` is used by stochastic kinds.
    pub fn build(self, seed: u64) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerKind::UniformRandom => Box::new(UniformRandom::seeded(seed)),
            SchedulerKind::MaxGain => Box::new(MaxGain),
            SchedulerKind::MinGain => Box::new(MinGain),
            SchedulerKind::LargestMinerFirst => Box::new(LargestMinerFirst),
            SchedulerKind::SmallestMinerFirst => Box::new(SmallestMinerFirst),
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::UniformRandom => "uniform-random",
            SchedulerKind::MaxGain => "max-gain",
            SchedulerKind::MinGain => "min-gain",
            SchedulerKind::LargestMinerFirst => "largest-miner-first",
            SchedulerKind::SmallestMinerFirst => "smallest-miner-first",
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_game::CoinId;

    fn setup() -> (Game, Configuration, Vec<Move>) {
        let game = Game::build(&[4, 2, 1], &[6, 3]).unwrap();
        let s = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let moves = game.improving_moves(&s);
        assert!(!moves.is_empty());
        (game, s, moves)
    }

    #[test]
    fn all_schedulers_return_listed_moves() {
        let (game, s, moves) = setup();
        for kind in SchedulerKind::ALL {
            let mut sched = kind.build(11);
            let mv = sched.pick(&game, &s, &moves);
            assert!(moves.contains(&mv), "{kind} returned unlisted move {mv}");
        }
    }

    #[test]
    fn max_gain_beats_min_gain() {
        let (game, s, moves) = setup();
        let masses = s.masses(game.system());
        let hi = MaxGain.pick(&game, &s, &moves);
        let lo = MinGain.pick(&game, &s, &moves);
        let g_hi = game.gain(hi.miner, hi.to, &s, &masses);
        let g_lo = game.gain(lo.miner, lo.to, &s, &masses);
        assert!(g_hi >= g_lo);
        for &mv in &moves {
            let g = game.gain(mv.miner, mv.to, &s, &masses);
            assert!(g <= g_hi && g >= g_lo);
        }
    }

    #[test]
    fn miner_order_schedulers_pick_extremal_powers() {
        let (game, s, moves) = setup();
        let big = LargestMinerFirst.pick(&game, &s, &moves);
        let small = SmallestMinerFirst.pick(&game, &s, &moves);
        let unstable_powers: Vec<u64> = moves
            .iter()
            .map(|m| game.system().power_of(m.miner))
            .collect();
        assert_eq!(
            game.system().power_of(big.miner),
            *unstable_powers.iter().max().unwrap()
        );
        assert_eq!(
            game.system().power_of(small.miner),
            *unstable_powers.iter().min().unwrap()
        );
    }

    #[test]
    fn uniform_random_is_deterministic_per_seed() {
        let (game, s, moves) = setup();
        let a = UniformRandom::seeded(3).pick(&game, &s, &moves);
        let b = UniformRandom::seeded(3).pick(&game, &s, &moves);
        assert_eq!(a, b);
    }

    #[test]
    fn round_robin_cycles_through_miners() {
        let game = Game::build(&[4, 2, 1], &[6, 3]).unwrap();
        let mut s = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let mut sched = RoundRobin::new();
        let mut seen = Vec::new();
        for _ in 0..3 {
            let moves = game.improving_moves(&s);
            if moves.is_empty() {
                break;
            }
            let mv = sched.pick(&game, &s, &moves);
            seen.push(mv.miner);
            s.apply_move(mv.miner, mv.to);
        }
        // The cursor advances: the same miner is not picked twice in a row
        // while others are unstable.
        for w in seen.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn pick_with_matches_pick_for_all_schedulers() {
        let (game, s, moves) = setup();
        let masses = s.masses(game.system());
        for kind in SchedulerKind::ALL {
            let via_pick = kind.build(9).pick(&game, &s, &moves);
            let via_pick_with = kind.build(9).pick_with(&game, &s, &masses, &moves);
            assert_eq!(via_pick, via_pick_with, "{kind} disagrees with itself");
        }
    }

    #[test]
    fn names_are_stable() {
        for kind in SchedulerKind::ALL {
            assert_eq!(kind.build(0).name(), kind.name());
        }
    }
}
