//! Schedulers: *which* better-response step is taken next.
//!
//! Theorem 1 quantifies over **arbitrary** better-response learning — any
//! rule that picks any improving step in any order converges. The engine
//! therefore exposes scheduling as a trait and ships a spectrum of
//! implementations, from the benign (round-robin best response) to the
//! adversarially slow (smallest positive gain), which the experiments
//! sweep to exercise the theorem's "for all" claim.
//!
//! Every scheduler speaks two dialects of the same selection rule:
//!
//! * the **incremental protocol** ([`Scheduler::pick_incremental`]) —
//!   the production path. The engine hands the scheduler a
//!   [`MoveSource`] and the pick is answered from maintained group
//!   state, `O(groups × coins)` or better per step, never materializing
//!   the per-miner move list. This is what lifts every bundled
//!   scheduler to 250k-miner populations.
//! * the **eager oracle** ([`Scheduler::pick_with`]) — the reference
//!   semantics over the complete improving-move list. The property
//!   suite (`tests/scheduler_equivalence.rs`) pins the incremental pick
//!   to the eager pick on random games and trajectories, so the lazy
//!   path can never silently drift from the documented rule.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use goc_game::{CoinId, Configuration, Extremum, Game, Masses, MinerId, Move, MoveSource, Ratio};

/// A scheduler detected an internal inconsistency (e.g. the engine
/// reported improving moves but the scheduler's own scan found none).
/// The engine surfaces this as
/// [`LearningError::SchedulerFailed`](crate::dynamics::LearningError) —
/// a named error path instead of a silent wrong-scheduler pick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerError {
    /// Name of the failing scheduler.
    pub scheduler: &'static str,
    /// What went wrong.
    pub detail: String,
}

impl SchedulerError {
    fn new(scheduler: &'static str, detail: impl Into<String>) -> Self {
        SchedulerError {
            scheduler,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scheduler `{}`: {}", self.scheduler, self.detail)
    }
}

impl std::error::Error for SchedulerError {}

/// Picks the next better-response step.
///
/// Implementors provide the eager rule ([`Scheduler::pick_with`]) and —
/// for large-population support — override [`Scheduler::pick_incremental`]
/// to answer the same rule from a [`MoveSource`]. The engine validates
/// every returned move; a scheduler that fabricates a non-improving move
/// is reported as
/// [`LearningError::NotABetterResponse`](crate::dynamics::LearningError).
pub trait Scheduler {
    /// Chooses one of `moves` (all legal better-response steps in `s`,
    /// never empty) given the engine's precomputed mass table. This is
    /// the **eager oracle** the incremental path is tested against.
    ///
    /// # Errors
    ///
    /// [`SchedulerError`] if the scheduler's own scan contradicts the
    /// engine (cannot happen for the bundled schedulers on legal input).
    fn pick_with(
        &mut self,
        game: &Game,
        s: &Configuration,
        masses: &Masses,
        moves: &[Move],
    ) -> Result<Move, SchedulerError>;

    /// [`Scheduler::pick_with`] without precomputed masses: the provided
    /// implementation computes them once and delegates, so implementors
    /// never repeat the `s.masses(game.system())` boilerplate.
    ///
    /// # Errors
    ///
    /// Propagates [`Scheduler::pick_with`].
    fn pick(
        &mut self,
        game: &Game,
        s: &Configuration,
        moves: &[Move],
    ) -> Result<Move, SchedulerError> {
        let masses = s.masses(game.system());
        self.pick_with(game, s, &masses, moves)
    }

    /// Chooses the next step by querying the source's maintained group
    /// state — the large-population path. The engine only calls this
    /// when the source has at least one improving move.
    ///
    /// The provided implementation materializes the move list and
    /// delegates to [`Scheduler::pick_with`] (compatibility for external
    /// schedulers); every bundled scheduler overrides it with an
    /// `O(groups × coins)`-or-better rule.
    ///
    /// # Errors
    ///
    /// [`SchedulerError`] if the source yields no improving move (the
    /// engine believed otherwise — an inconsistency, not a pick).
    fn pick_incremental(&mut self, src: &mut MoveSource<'_>) -> Result<Move, SchedulerError> {
        let moves = src.improving_moves();
        if moves.is_empty() {
            return Err(SchedulerError::new(
                self.name(),
                "source has no improving moves",
            ));
        }
        self.pick_with(src.game(), src.config(), src.masses(), &moves)
    }

    /// Short human-readable name, used in experiment tables.
    fn name(&self) -> &'static str;
}

/// Round-robin over miners; the selected miner plays its **best** response
/// (maximal post-move RPU, ties to the lowest coin id).
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting from miner `p0`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick_with(
        &mut self,
        game: &Game,
        s: &Configuration,
        masses: &Masses,
        moves: &[Move],
    ) -> Result<Move, SchedulerError> {
        let n = game.system().num_miners();
        for offset in 0..n {
            let p = MinerId((self.cursor + offset) % n);
            if let Some(c) = game.best_response(p, s, masses) {
                self.cursor = (p.index() + 1) % n;
                return Ok(Move {
                    miner: p,
                    from: s.coin_of(p),
                    to: c,
                });
            }
        }
        // Unreachable when `moves` is nonempty: every listed mover has a
        // best response. Surface the inconsistency instead of silently
        // picking under the wrong rule.
        debug_assert!(
            moves.is_empty(),
            "round-robin found no best response among {} improving moves",
            moves.len()
        );
        Err(SchedulerError::new(
            self.name(),
            format!(
                "no best response found despite {} listed improving moves",
                moves.len()
            ),
        ))
    }

    fn pick_incremental(&mut self, src: &mut MoveSource<'_>) -> Result<Move, SchedulerError> {
        let n = src.game().system().num_miners();
        let start = MinerId(self.cursor % n);
        let p = src
            .next_unstable(start)
            .or_else(|| src.next_unstable(MinerId(0)))
            .ok_or_else(|| SchedulerError::new(self.name(), "source reports no unstable miner"))?;
        self.cursor = (p.index() + 1) % n;
        src.improving_move_for(p)
            .ok_or_else(|| SchedulerError::new(self.name(), format!("{p} lost its best response")))
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Uniformly random choice among all improving moves (the "arbitrary
/// improving path" of the paper, in distribution), executed by the
/// smallest-id member of the drawn mover's strategic class.
///
/// The draw weights each `(class, target)` pair by the class's member
/// count — exactly the improving-move list's marginal — and the member
/// collapse makes the pick computable in `O(groups × coins)` from a
/// [`MoveSource`] (members of a class are interchangeable: same power,
/// same payoff, same better responses). One `gen_range` call over the
/// exact move count per pick, on both the eager and incremental paths,
/// so the two stay in lockstep on a shared seed.
pub struct UniformRandom {
    rng: SmallRng,
}

impl UniformRandom {
    /// Creates a scheduler with a fixed seed (deterministic runs).
    pub fn seeded(seed: u64) -> Self {
        UniformRandom {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl fmt::Debug for UniformRandom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UniformRandom").finish_non_exhaustive()
    }
}

impl Scheduler for UniformRandom {
    fn pick_with(
        &mut self,
        game: &Game,
        _s: &Configuration,
        _masses: &Masses,
        moves: &[Move],
    ) -> Result<Move, SchedulerError> {
        // Rebuild the strategic classes from the flat list, in the same
        // canonical (coin, power, restriction) order the MoveSource
        // enumerates, so the same draw lands on the same move.
        struct Class {
            min_miner: MinerId,
            first_miner: MinerId,
            weight: usize,
            targets: Vec<CoinId>,
        }
        let mut classes: std::collections::BTreeMap<(usize, u64, u32), Class> =
            std::collections::BTreeMap::new();
        for &mv in moves {
            let rkey = if game.is_restricted() {
                mv.miner.index() as u32 + 1
            } else {
                0
            };
            let key = (mv.from.index(), game.system().power_of(mv.miner), rkey);
            let class = classes.entry(key).or_insert(Class {
                min_miner: mv.miner,
                first_miner: mv.miner,
                weight: 0,
                targets: Vec::new(),
            });
            class.weight += 1;
            class.min_miner = class.min_miner.min(mv.miner);
            if mv.miner == class.first_miner {
                class.targets.push(mv.to);
            }
        }
        if moves.is_empty() {
            return Err(SchedulerError::new(self.name(), "empty move list"));
        }
        let mut r = self.rng.gen_range(0..moves.len());
        for ((from, _, _), class) in classes {
            if r < class.weight {
                return Ok(Move {
                    miner: class.min_miner,
                    from: CoinId(from),
                    to: class.targets[r % class.targets.len()],
                });
            }
            r -= class.weight;
        }
        unreachable!("class weights sum to the move count")
    }

    fn pick_incremental(&mut self, src: &mut MoveSource<'_>) -> Result<Move, SchedulerError> {
        src.sample_improving(&mut self.rng)
            .ok_or_else(|| SchedulerError::new(self.name(), "source reports no improving move"))
    }

    fn name(&self) -> &'static str {
        "uniform-random"
    }
}

/// Always takes the improving move with the **largest** payoff gain
/// (ties to the lowest miner id, then lowest coin id).
#[derive(Debug, Default)]
pub struct MaxGain;

impl Scheduler for MaxGain {
    fn pick_with(
        &mut self,
        game: &Game,
        s: &Configuration,
        masses: &Masses,
        moves: &[Move],
    ) -> Result<Move, SchedulerError> {
        extremal_by_gain(self.name(), game, s, masses, moves, true)
    }

    fn pick_incremental(&mut self, src: &mut MoveSource<'_>) -> Result<Move, SchedulerError> {
        src.extremal_gain_move(Extremum::Max)
            .ok_or_else(|| SchedulerError::new(self.name(), "source reports no improving move"))
    }

    fn name(&self) -> &'static str {
        "max-gain"
    }
}

/// Always takes the improving move with the **smallest** positive gain —
/// an adversarially slow learner that stresses convergence bounds.
#[derive(Debug, Default)]
pub struct MinGain;

impl Scheduler for MinGain {
    fn pick_with(
        &mut self,
        game: &Game,
        s: &Configuration,
        masses: &Masses,
        moves: &[Move],
    ) -> Result<Move, SchedulerError> {
        extremal_by_gain(self.name(), game, s, masses, moves, false)
    }

    fn pick_incremental(&mut self, src: &mut MoveSource<'_>) -> Result<Move, SchedulerError> {
        src.extremal_gain_move(Extremum::Min)
            .ok_or_else(|| SchedulerError::new(self.name(), "source reports no improving move"))
    }

    fn name(&self) -> &'static str {
        "min-gain"
    }
}

fn extremal_by_gain(
    name: &'static str,
    game: &Game,
    s: &Configuration,
    masses: &Masses,
    moves: &[Move],
    max: bool,
) -> Result<Move, SchedulerError> {
    let mut best: Option<(Ratio, Move)> = None;
    for &mv in moves {
        let gain = game.gain(mv.miner, mv.to, s, masses);
        let better = match &best {
            None => true,
            Some((g, _)) => {
                if max {
                    gain > *g
                } else {
                    gain < *g
                }
            }
        };
        if better {
            best = Some((gain, mv));
        }
    }
    best.map(|(_, mv)| mv)
        .ok_or_else(|| SchedulerError::new(name, "empty move list"))
}

/// The largest-power unstable miner moves first (models big pools reacting
/// fastest to profitability signals), playing its best response.
#[derive(Debug, Default)]
pub struct LargestMinerFirst;

impl Scheduler for LargestMinerFirst {
    fn pick_with(
        &mut self,
        game: &Game,
        s: &Configuration,
        masses: &Masses,
        moves: &[Move],
    ) -> Result<Move, SchedulerError> {
        extremal_by_power(self.name(), game, s, masses, moves, true)
    }

    fn pick_incremental(&mut self, src: &mut MoveSource<'_>) -> Result<Move, SchedulerError> {
        src.extremal_power_move(Extremum::Max)
            .ok_or_else(|| SchedulerError::new(self.name(), "source reports no improving move"))
    }

    fn name(&self) -> &'static str {
        "largest-miner-first"
    }
}

/// The smallest-power unstable miner moves first (nimble hobby miners
/// chase profitability, as on whattomine.com), playing its best response.
#[derive(Debug, Default)]
pub struct SmallestMinerFirst;

impl Scheduler for SmallestMinerFirst {
    fn pick_with(
        &mut self,
        game: &Game,
        s: &Configuration,
        masses: &Masses,
        moves: &[Move],
    ) -> Result<Move, SchedulerError> {
        extremal_by_power(self.name(), game, s, masses, moves, false)
    }

    fn pick_incremental(&mut self, src: &mut MoveSource<'_>) -> Result<Move, SchedulerError> {
        src.extremal_power_move(Extremum::Min)
            .ok_or_else(|| SchedulerError::new(self.name(), "source reports no improving move"))
    }

    fn name(&self) -> &'static str {
        "smallest-miner-first"
    }
}

fn extremal_by_power(
    name: &'static str,
    game: &Game,
    s: &Configuration,
    masses: &Masses,
    moves: &[Move],
    max: bool,
) -> Result<Move, SchedulerError> {
    let p = if max {
        moves
            .iter()
            .map(|m| m.miner)
            .max_by_key(|p| (game.system().power_of(*p), std::cmp::Reverse(p.index())))
    } else {
        moves
            .iter()
            .map(|m| m.miner)
            .min_by_key(|p| (game.system().power_of(*p), p.index()))
    };
    let p = p.ok_or_else(|| SchedulerError::new(name, "empty move list"))?;
    let c = game.best_response(p, s, masses).ok_or_else(|| {
        SchedulerError::new(name, format!("{p} is listed but has no best response"))
    })?;
    Ok(Move {
        miner: p,
        from: s.coin_of(p),
        to: c,
    })
}

/// Enumeration of the bundled schedulers, for parameter sweeps. Serde
/// round-trips as the variant name (e.g. `"MaxGain"`), so sweep spec
/// files can name schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`UniformRandom`] (takes a seed).
    UniformRandom,
    /// [`MaxGain`].
    MaxGain,
    /// [`MinGain`].
    MinGain,
    /// [`LargestMinerFirst`].
    LargestMinerFirst,
    /// [`SmallestMinerFirst`].
    SmallestMinerFirst,
}

impl SchedulerKind {
    /// All bundled kinds, in a stable order for sweep tables.
    pub const ALL: [SchedulerKind; 6] = [
        SchedulerKind::RoundRobin,
        SchedulerKind::UniformRandom,
        SchedulerKind::MaxGain,
        SchedulerKind::MinGain,
        SchedulerKind::LargestMinerFirst,
        SchedulerKind::SmallestMinerFirst,
    ];

    /// Instantiates the scheduler; `seed` is used by stochastic kinds.
    pub fn build(self, seed: u64) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerKind::UniformRandom => Box::new(UniformRandom::seeded(seed)),
            SchedulerKind::MaxGain => Box::new(MaxGain),
            SchedulerKind::MinGain => Box::new(MinGain),
            SchedulerKind::LargestMinerFirst => Box::new(LargestMinerFirst),
            SchedulerKind::SmallestMinerFirst => Box::new(SmallestMinerFirst),
        }
    }

    /// Stable display name (also accepted by `goc --scheduler`).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::UniformRandom => "uniform-random",
            SchedulerKind::MaxGain => "max-gain",
            SchedulerKind::MinGain => "min-gain",
            SchedulerKind::LargestMinerFirst => "largest-miner-first",
            SchedulerKind::SmallestMinerFirst => "smallest-miner-first",
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_game::CoinId;

    fn setup() -> (Game, Configuration, Vec<Move>) {
        let game = Game::build(&[4, 2, 1], &[6, 3]).unwrap();
        let s = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let moves = game.improving_moves(&s);
        assert!(!moves.is_empty());
        (game, s, moves)
    }

    #[test]
    fn all_schedulers_return_listed_moves() {
        let (game, s, moves) = setup();
        for kind in SchedulerKind::ALL {
            let mut sched = kind.build(11);
            let mv = sched.pick(&game, &s, &moves).unwrap();
            assert!(moves.contains(&mv), "{kind} returned unlisted move {mv}");
        }
    }

    #[test]
    fn all_schedulers_pick_incrementally_without_a_move_list() {
        let (game, s, moves) = setup();
        for kind in SchedulerKind::ALL {
            let mut src = MoveSource::new(&game, &s).unwrap();
            let mut sched = kind.build(11);
            let mv = sched.pick_incremental(&mut src).unwrap();
            assert!(moves.contains(&mv), "{kind} returned unlisted move {mv}");
        }
    }

    #[test]
    fn max_gain_beats_min_gain() {
        let (game, s, moves) = setup();
        let masses = s.masses(game.system());
        let hi = MaxGain.pick(&game, &s, &moves).unwrap();
        let lo = MinGain.pick(&game, &s, &moves).unwrap();
        let g_hi = game.gain(hi.miner, hi.to, &s, &masses);
        let g_lo = game.gain(lo.miner, lo.to, &s, &masses);
        assert!(g_hi >= g_lo);
        for &mv in &moves {
            let g = game.gain(mv.miner, mv.to, &s, &masses);
            assert!(g <= g_hi && g >= g_lo);
        }
    }

    #[test]
    fn miner_order_schedulers_pick_extremal_powers() {
        let (game, s, moves) = setup();
        let big = LargestMinerFirst.pick(&game, &s, &moves).unwrap();
        let small = SmallestMinerFirst.pick(&game, &s, &moves).unwrap();
        let unstable_powers: Vec<u64> = moves
            .iter()
            .map(|m| game.system().power_of(m.miner))
            .collect();
        assert_eq!(
            game.system().power_of(big.miner),
            *unstable_powers.iter().max().unwrap()
        );
        assert_eq!(
            game.system().power_of(small.miner),
            *unstable_powers.iter().min().unwrap()
        );
    }

    #[test]
    fn uniform_random_is_deterministic_per_seed() {
        let (game, s, moves) = setup();
        let a = UniformRandom::seeded(3).pick(&game, &s, &moves).unwrap();
        let b = UniformRandom::seeded(3).pick(&game, &s, &moves).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn round_robin_cycles_through_miners() {
        let game = Game::build(&[4, 2, 1], &[6, 3]).unwrap();
        let mut s = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let mut sched = RoundRobin::new();
        let mut seen = Vec::new();
        for _ in 0..3 {
            let moves = game.improving_moves(&s);
            if moves.is_empty() {
                break;
            }
            let mv = sched.pick(&game, &s, &moves).unwrap();
            seen.push(mv.miner);
            s.apply_move(mv.miner, mv.to);
        }
        // The cursor advances: the same miner is not picked twice in a row
        // while others are unstable.
        for w in seen.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn pick_with_matches_pick_for_all_schedulers() {
        let (game, s, moves) = setup();
        let masses = s.masses(game.system());
        for kind in SchedulerKind::ALL {
            let via_pick = kind.build(9).pick(&game, &s, &moves).unwrap();
            let via_pick_with = kind.build(9).pick_with(&game, &s, &masses, &moves).unwrap();
            assert_eq!(via_pick, via_pick_with, "{kind} disagrees with itself");
        }
    }

    #[test]
    fn names_are_stable() {
        for kind in SchedulerKind::ALL {
            assert_eq!(kind.build(0).name(), kind.name());
        }
    }

    #[test]
    fn kind_serde_round_trips_as_variant_names() {
        for kind in SchedulerKind::ALL {
            let json = serde_json::to_string(&kind).unwrap();
            assert!(json.contains('"'), "unit variants serialize as strings");
            let back: SchedulerKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
        assert_eq!(
            serde_json::from_str::<SchedulerKind>("\"MinGain\"").unwrap(),
            SchedulerKind::MinGain
        );
        assert!(serde_json::from_str::<SchedulerKind>("\"NotAScheduler\"").is_err());
    }

    #[test]
    fn scheduler_error_displays_its_context() {
        let err = SchedulerError::new("round-robin", "test detail");
        let text = err.to_string();
        assert!(text.contains("round-robin") && text.contains("test detail"));
    }
}
