//! # goc-learning — better-response learning dynamics
//!
//! Executes the paper's *better-response learning*: arbitrary sequences of
//! individual improvement steps over a `goc-game` mining game. Theorem 1
//! proves every such sequence converges to a pure equilibrium; this crate
//! lets you run the sequences under a spectrum of [`Scheduler`]s (from
//! round-robin best response to adversarially slow min-gain) and audit the
//! ordinal-potential monotonicity along the way.
//!
//! Every run is assembled by the [`Dynamics`] builder — the single entry
//! point; the classic `run*` functions are thin wrappers over it.
//!
//! ```
//! use goc_game::{CoinId, Configuration, Game};
//! use goc_learning::{Dynamics, SchedulerKind};
//!
//! let game = Game::build(&[5, 3, 2], &[9, 4])?;
//! let start = Configuration::uniform(CoinId(0), game.system())?;
//! for kind in SchedulerKind::ALL {
//!     let mut sched = kind.build(42);
//!     let outcome = Dynamics::new(&game)
//!         .start(&start)
//!         .scheduler(sched.as_mut())
//!         .run()?;
//!     assert!(outcome.converged); // Theorem 1, for every scheduler
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dynamics;
pub mod instrument;
pub mod scheduler;
pub mod simultaneous;
pub mod stats;

pub use dynamics::{
    converge, run, run_incremental, run_incremental_from, run_incremental_with_churn,
    run_with_churn, run_with_observer, CheckpointHook, ChurnEvent, ChurnPlan, Dynamics,
    LearningError, LearningOptions, LearningOutcome,
};
pub use instrument::{DynamicsTelemetry, DynamicsTracing, Instrument, NoInstrument};
pub use scheduler::{
    LargestMinerFirst, MaxGain, MinGain, RoundRobin, Scheduler, SchedulerError, SchedulerKind,
    SmallestMinerFirst, UniformRandom,
};
pub use simultaneous::{run_simultaneous, SyncOutcome};
pub use stats::{convergence_trials, ConvergenceSummary};
