//! The better-response learning engine.
//!
//! A *better-response learning* from `s` (paper §2) is a sequence of
//! individual improvement steps that either is infinite or ends in a
//! stable configuration. Theorem 1 shows the infinite case cannot happen;
//! [`run`] executes the sequence for any [`Scheduler`] and reports the
//! convergence point, step count, and (optionally) the full improving path
//! with a potential-monotonicity audit.
//!
//! Every entry point rides on `goc_game`'s incremental layers:
//! [`MassTracker`] maintains masses, payoffs, and the potential audit
//! under single-move deltas, and [`run`] hands schedulers a
//! [`MoveSource`] — lazy move discovery over the
//! tracker's strategic groups — through
//! [`Scheduler::pick_incremental`]. No step materializes the per-miner
//! improving-move list, so **every** bundled [`SchedulerKind`] converges
//! 100k–250k-miner games, not just the dedicated [`run_incremental`]
//! group round-robin. The eager [`Scheduler::pick_with`] path survives
//! as the oracle the equivalence suite pins the lazy picks to.
//!
//! [`SchedulerKind`]: crate::scheduler::SchedulerKind

use std::fmt;

use goc_game::{Configuration, Delta, Game, GameError, MassTracker, Move, MoveSource, Snapshot};

use crate::instrument::{Fanout, Instrument, NoInstrument};
use crate::scheduler::{Scheduler, SchedulerError};

/// One scheduled churn delta of a learning run: `delta` arrives once the
/// dynamics have taken `at_step` better-response steps (churn "time" is
/// step count — the paper's dynamics are sequential, so interleaving by
/// step index is the natural clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Number of better-response steps after which the delta fires.
    pub at_step: usize,
    /// The population / coin-lifecycle transition.
    pub delta: Delta,
}

/// A churn schedule threaded through a learning run: the initial activity
/// state of the universe plus an interleaved delta stream. The engine
/// applies every event whose `at_step` has been reached *before* the next
/// scheduler pick; when the population is stable but events remain, time
/// fast-forwards to the next arrival (an equilibrium only lasts until the
/// market changes under it).
///
/// `None` activity masks mean "everything active" — the default plan is
/// a plain fixed-population run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnPlan {
    /// Initial miner activity (`None` = all active).
    pub miner_active: Option<Vec<bool>>,
    /// Initial coin activity (`None` = all live).
    pub coin_active: Option<Vec<bool>>,
    /// The delta stream (applied in `at_step` order, ties in list order).
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// Builds a plan from activity masks and `(at_step, delta)` pairs
    /// (the shape `goc_sim`'s `ChurnUniverse::step_deltas` produces).
    pub fn with_events(
        miner_active: Option<Vec<bool>>,
        coin_active: Option<Vec<bool>>,
        events: impl IntoIterator<Item = (usize, Delta)>,
    ) -> Self {
        ChurnPlan {
            miner_active,
            coin_active,
            events: events
                .into_iter()
                .map(|(at_step, delta)| ChurnEvent { at_step, delta })
                .collect(),
        }
    }

    /// Whether the plan changes anything relative to a plain run.
    pub fn is_trivial(&self) -> bool {
        self.miner_active.is_none() && self.coin_active.is_none() && self.events.is_empty()
    }

    /// Event indices in application order (`at_step`, ties by position).
    fn order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| self.events[i].at_step);
        order
    }
}

/// Options controlling a learning run.
#[derive(Debug, Clone, Copy)]
pub struct LearningOptions {
    /// Hard cap on steps. Theorem 1 guarantees termination, so hitting the
    /// cap signals either an enormous game or a bug; the outcome then has
    /// `converged == false`.
    pub max_steps: usize,
    /// Record the full improving path in the outcome.
    pub record_path: bool,
    /// After every step, assert that the ordinal potential strictly
    /// increased (expensive: `O(|C| log |C|)` per step). Intended for
    /// tests and the Theorem 1 experiment.
    pub audit_potential: bool,
}

impl Default for LearningOptions {
    fn default() -> Self {
        LearningOptions {
            max_steps: 1_000_000,
            record_path: false,
            audit_potential: false,
        }
    }
}

/// Result of a learning run.
#[derive(Debug, Clone)]
pub struct LearningOutcome {
    /// The final configuration (stable iff `converged`).
    pub final_config: Configuration,
    /// Number of better-response steps taken.
    pub steps: usize,
    /// Whether a stable configuration was reached within `max_steps`.
    pub converged: bool,
    /// The improving path, if requested.
    pub path: Vec<Move>,
    /// `Some(true)` if auditing was enabled and every step strictly
    /// increased the ordinal potential (`Some(false)` is impossible —
    /// a violation aborts the run with an error).
    pub potential_audit: Option<bool>,
    /// Number of churn deltas applied during the run (0 without a plan).
    pub churn_applied: usize,
    /// Lifetime count of `O(coins)` group-decision cache re-probes the
    /// run's [`MoveSource`] performed (0 for the scheduler-free
    /// incremental engine, which rides the tracker directly). The
    /// telemetry layer surfaces this as
    /// `goc_dynamics_cache_reprobes_total`.
    pub cache_reprobes: u64,
    /// Final `(miner, coin)` activity masks, when the run had a
    /// non-trivial [`ChurnPlan`] (`None` for fixed-population runs —
    /// everything stayed active).
    pub final_activity: Option<(Vec<bool>, Vec<bool>)>,
}

/// Errors produced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LearningError {
    /// The scheduler returned a move that is not a legal better response —
    /// failure injection for buggy schedulers.
    NotABetterResponse {
        /// The offending move.
        mv: Move,
    },
    /// Potential auditing found a step that did not increase the ordinal
    /// potential (would falsify Theorem 1; indicates an engine bug).
    PotentialViolation {
        /// The offending move.
        mv: Move,
        /// Step index at which the violation occurred.
        step: usize,
    },
    /// The scheduler reported an internal inconsistency instead of a
    /// pick (see [`SchedulerError`]).
    SchedulerFailed(SchedulerError),
    /// A scheduled churn delta was illegal in the state it arrived in
    /// (e.g. removing an already-removed miner, retiring a coin whose
    /// restricted residents have nowhere to go).
    ChurnRejected {
        /// Step count at which the delta fired.
        step: usize,
        /// The underlying delta validation error.
        error: GameError,
    },
    /// [`Dynamics::from_snapshot`] was given a snapshot whose game does
    /// not equal the builder's game — the fork would evaluate the wrong
    /// payoffs.
    SnapshotMismatch,
    /// [`Dynamics::run`] was called without a starting state: none of
    /// [`Dynamics::start`], [`Dynamics::from_snapshot`], or
    /// [`Dynamics::from_tracker`] was provided.
    MissingStart,
}

impl fmt::Display for LearningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearningError::NotABetterResponse { mv } => {
                write!(f, "scheduler returned a non-improving move ({mv})")
            }
            LearningError::PotentialViolation { mv, step } => write!(
                f,
                "ordinal potential failed to increase at step {step} ({mv})"
            ),
            LearningError::SchedulerFailed(err) => write!(f, "{err}"),
            LearningError::ChurnRejected { step, error } => {
                write!(f, "churn delta rejected at step {step}: {error}")
            }
            LearningError::SnapshotMismatch => {
                write!(
                    f,
                    "snapshot captures a different game than the dynamics run"
                )
            }
            LearningError::MissingStart => {
                write!(
                    f,
                    "dynamics need a starting state (start, from_snapshot, or from_tracker)"
                )
            }
        }
    }
}

impl std::error::Error for LearningError {}

impl From<SchedulerError> for LearningError {
    fn from(err: SchedulerError) -> Self {
        LearningError::SchedulerFailed(err)
    }
}

/// Runs better-response learning from `start` under `scheduler`.
///
/// # Errors
///
/// * [`LearningError::NotABetterResponse`] if the scheduler misbehaves.
/// * [`LearningError::PotentialViolation`] if auditing detects a
///   non-increasing step (engine bug).
///
/// # Examples
///
/// ```
/// use goc_game::{CoinId, Configuration, Game};
/// use goc_learning::{run, LearningOptions, RoundRobin};
///
/// let game = Game::build(&[2, 1], &[1, 1])?;
/// let start = Configuration::uniform(CoinId(0), game.system())?;
/// let outcome = run(&game, &start, &mut RoundRobin::new(), LearningOptions::default())?;
/// assert!(outcome.converged);
/// assert!(game.is_stable(&outcome.final_config));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(
    game: &Game,
    start: &Configuration,
    scheduler: &mut dyn Scheduler,
    options: LearningOptions,
) -> Result<LearningOutcome, LearningError> {
    Dynamics::new(game)
        .start(start)
        .scheduler(scheduler)
        .options(options)
        .run()
}

/// [`run`] with a per-step observer called *after* each applied move with
/// the new configuration. Used by experiments that trace potential values
/// or hashrate series.
///
/// Legacy shim: new call sites should thread an [`Instrument`] through
/// [`Dynamics::instrument`] instead (a closure of this shape *is* an
/// instrument via the blanket impl).
pub fn run_with_observer(
    game: &Game,
    start: &Configuration,
    scheduler: &mut dyn Scheduler,
    options: LearningOptions,
    mut observer: impl FnMut(&Configuration, Move),
) -> Result<LearningOutcome, LearningError> {
    Dynamics::new(game)
        .start(start)
        .scheduler(scheduler)
        .options(options)
        .observer(&mut observer)
        .run()
}

/// [`run`] over a **churning** population: the plan's activity masks set
/// the time-zero universe state and its delta stream is interleaved with
/// the scheduler's better-response steps (see [`ChurnPlan`]). All six
/// bundled schedulers ride the same incremental [`MoveSource`] — churn
/// deltas repair the group-decision cache, never rebuild it.
///
/// Convergence means: every scheduled delta has been applied *and* the
/// resulting active population is stable.
///
/// # Errors
///
/// As [`run`], plus [`LearningError::ChurnRejected`] when a scheduled
/// delta is illegal in the state it arrives in.
pub fn run_with_churn(
    game: &Game,
    start: &Configuration,
    scheduler: &mut dyn Scheduler,
    options: LearningOptions,
    plan: &ChurnPlan,
) -> Result<LearningOutcome, LearningError> {
    Dynamics::new(game)
        .start(start)
        .scheduler(scheduler)
        .options(options)
        .churn(plan)
        .run()
}

/// Builds the tracker for a plan's initial activity state.
fn churn_tracker<'g>(
    game: &'g Game,
    start: &Configuration,
    plan: &ChurnPlan,
) -> Result<MassTracker<'g>, LearningError> {
    if plan.miner_active.is_none() && plan.coin_active.is_none() {
        return Ok(MassTracker::new(game, start)
            .expect("start configuration belongs to the game's system"));
    }
    let n = game.system().num_miners();
    let k = game.system().num_coins();
    let miner_active = plan.miner_active.clone().unwrap_or_else(|| vec![true; n]);
    let coin_active = plan.coin_active.clone().unwrap_or_else(|| vec![true; k]);
    MassTracker::with_activity(game, start, &miner_active, &coin_active)
        .map_err(|error| LearningError::ChurnRejected { step: 0, error })
}

/// The scheduled engine: churn interleaving and scheduler picks over a
/// [`MoveSource`] built on `tracker`. The plan's activity masks are not
/// consulted — the tracker already carries its activity state.
fn scheduled_engine(
    tracker: MassTracker<'_>,
    scheduler: &mut dyn Scheduler,
    options: LearningOptions,
    plan: &ChurnPlan,
    instrument: &mut dyn Instrument,
) -> Result<LearningOutcome, LearningError> {
    let mut source = MoveSource::over(tracker);
    // The run never rewinds; don't retain an O(steps) undo history.
    source.set_undo_recording(false);
    let order = plan.order();
    let every = instrument.checkpoint_every();
    let mut next = 0usize;
    let mut churn_applied = 0usize;
    let mut path = Vec::new();
    let mut steps = 0usize;

    let finish = |source: MoveSource<'_>, steps, converged, path, churn_applied| {
        let final_activity = (!plan.is_trivial()).then(|| {
            (
                source.tracker().miner_activity().to_vec(),
                source.tracker().coin_activity().to_vec(),
            )
        });
        let cache_reprobes = source.reprobe_count();
        LearningOutcome {
            final_config: source.into_config(),
            steps,
            converged,
            path,
            potential_audit: options.audit_potential.then_some(true),
            churn_applied,
            cache_reprobes,
            final_activity,
        }
    };

    loop {
        if steps >= options.max_steps {
            return Ok(finish(source, steps, false, path, churn_applied));
        }
        // Churn due at this step count arrives before the next pick; the
        // cache repair is incremental, so the stability sweep after it
        // only re-probes the dirtied groups.
        while next < order.len() && plan.events[order[next]].at_step <= steps {
            let event = &plan.events[order[next]];
            source
                .apply_delta(event.delta)
                .map_err(|error| LearningError::ChurnRejected { step: steps, error })?;
            churn_applied += 1;
            next += 1;
            instrument.on_delta(steps, event.delta);
        }
        // The stability sweep warms the source's group-decision cache;
        // the scheduler's pick right after reuses it.
        if source.is_stable() {
            if next < order.len() {
                // Stable, but more churn is scheduled: fast-forward to
                // the next arrival (equilibria only last until the
                // market changes under them).
                let event = &plan.events[order[next]];
                source
                    .apply_delta(event.delta)
                    .map_err(|error| LearningError::ChurnRejected { step: steps, error })?;
                churn_applied += 1;
                next += 1;
                instrument.on_delta(steps, event.delta);
                continue;
            }
            return Ok(finish(source, steps, true, path, churn_applied));
        }
        let mv = scheduler.pick_incremental(&mut source)?;
        if !source.is_better_response(mv.miner, mv.to) {
            return Err(LearningError::NotABetterResponse { mv });
        }
        let before = options.audit_potential.then(|| source.rpu_list());
        source.apply(mv.miner, mv.to);
        if let Some(before) = before {
            // Theorem 1's ordinal potential is the sorted RPU list; the
            // tracker yields it in O(coins log coins) with no rescan.
            // (Churn re-shapes the list, so the audit is per-move: the
            // `before` snapshot is taken after any churn this round.)
            if source.rpu_list() <= before {
                return Err(LearningError::PotentialViolation { mv, step: steps });
            }
        }
        if options.record_path {
            path.push(mv);
        }
        instrument.on_step(source.config(), mv);
        steps += 1;
        if every > 0 && steps.is_multiple_of(every) {
            instrument.on_checkpoint(steps, &Snapshot::of(source.tracker()));
        }
    }
}

/// Better-response learning for **large populations**: a round-robin over
/// the tracker's strategic groups (same coin, same power), each step
/// applying the probed group representative's best response. Semantics
/// are a legal better-response learning in the sense of Theorem 1 — it
/// converges to a pure equilibrium exactly like [`run`] — but no step
/// ever rescans the miner vector, so 100k+ miner games converge in
/// seconds as long as the population has few distinct hashrate classes.
///
/// Since the incremental scheduler protocol landed, [`run`] matches this
/// entry point's asymptotics for every bundled scheduler (both ride the
/// tracker); `run_incremental` survives as the leanest loop — group
/// round-robin with no scheduler dispatch, the recorded `BENCH_*.json`
/// dynamics workload — and as a second implementation the `schedulers`
/// experiment cross-checks.
///
/// # Errors
///
/// [`LearningError::PotentialViolation`] if auditing detects a
/// non-increasing step (engine bug).
///
/// # Examples
///
/// ```
/// use goc_game::{CoinId, Configuration, Game};
/// use goc_learning::{run_incremental, LearningOptions};
///
/// let game = Game::build(&[3, 3, 1, 1], &[6, 2])?;
/// let start = Configuration::uniform(CoinId(0), game.system())?;
/// let outcome = run_incremental(&game, &start, LearningOptions::default())?;
/// assert!(outcome.converged);
/// assert!(game.is_stable(&outcome.final_config));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_incremental(
    game: &Game,
    start: &Configuration,
    options: LearningOptions,
) -> Result<LearningOutcome, LearningError> {
    Dynamics::new(game).start(start).options(options).run()
}

/// [`run_incremental`] over a **churning** population: the scheduler-free
/// group round-robin with the plan's delta stream interleaved exactly as
/// in [`run_with_churn`]. This is the leanest churn loop — the workload
/// the `churn` throughput baseline records.
///
/// # Errors
///
/// As [`run_incremental`], plus [`LearningError::ChurnRejected`] when a
/// scheduled delta is illegal in the state it arrives in.
pub fn run_incremental_with_churn(
    game: &Game,
    start: &Configuration,
    options: LearningOptions,
    plan: &ChurnPlan,
) -> Result<LearningOutcome, LearningError> {
    Dynamics::new(game)
        .start(start)
        .options(options)
        .churn(plan)
        .run()
}

/// A periodic checkpoint sink for long churny runs: every `every`
/// better-response steps the engine captures the tracker as a
/// [`Snapshot`] and hands it (with the step count) to `sink`. Encode
/// the snapshot to persist it; decode + [`Snapshot::fork`] +
/// [`run_incremental_from`] warm-starts the run from where the
/// checkpoint left off.
pub struct CheckpointHook<'a> {
    /// Steps between checkpoints (values below 1 behave as 1).
    pub every: usize,
    /// Receives `(steps_so_far, snapshot)` at each checkpoint.
    pub sink: &'a mut dyn FnMut(usize, Snapshot),
}

/// A checkpoint hook is an [`Instrument`] that only listens for
/// checkpoints — the engine's single watching seam subsumes the old
/// dedicated hook parameter.
impl Instrument for CheckpointHook<'_> {
    fn checkpoint_every(&self) -> usize {
        self.every.max(1)
    }

    fn on_checkpoint(&mut self, step: usize, snapshot: &Snapshot) {
        (self.sink)(step, snapshot.clone());
    }
}

/// **Warm-start** entry of the incremental engine: continues the group
/// round-robin from an existing tracker — a [`Snapshot`] fork, a
/// checkpoint restore, or any tracker mid-dynamics — instead of
/// building one from a start configuration. The plan's activity masks
/// are **ignored** (the tracker already carries its activity state);
/// only the delta stream and the plan's triviality (which decides
/// whether `final_activity` is reported) are consulted. Undo recording
/// is switched off for the duration, as in [`run_incremental`].
///
/// Passing a hook checkpoints the run periodically (see
/// [`CheckpointHook`]).
///
/// # Errors
///
/// As [`run_incremental_with_churn`].
pub fn run_incremental_from<'g, 'a>(
    tracker: MassTracker<'g>,
    options: LearningOptions,
    plan: &'a ChurnPlan,
    hook: Option<CheckpointHook<'a>>,
) -> Result<LearningOutcome, LearningError> {
    let mut builder = Dynamics::new(tracker.game())
        .from_tracker(tracker)
        .options(options)
        .churn(plan);
    if let Some(hook) = hook {
        builder = builder.checkpoint(hook);
    }
    builder.run()
}

/// The scheduler-free engine: churn interleaving and the tracker's own
/// group round-robin ([`MassTracker::find_improving_move`]) — the
/// leanest loop, and the recorded `BENCH_*.json` dynamics workload.
fn incremental_engine(
    mut tracker: MassTracker<'_>,
    options: LearningOptions,
    plan: &ChurnPlan,
    instrument: &mut dyn Instrument,
) -> Result<LearningOutcome, LearningError> {
    // The run never rewinds; don't retain an O(steps) undo history.
    tracker.set_undo_recording(false);
    let order = plan.order();
    let every = instrument.checkpoint_every();
    let mut next = 0usize;
    let mut churn_applied = 0usize;
    let mut path = Vec::new();
    let mut steps = 0usize;

    let finish = |tracker: MassTracker<'_>, steps, converged, path, churn_applied| {
        let final_activity = (!plan.is_trivial()).then(|| {
            (
                tracker.miner_activity().to_vec(),
                tracker.coin_activity().to_vec(),
            )
        });
        LearningOutcome {
            final_config: tracker.into_config(),
            steps,
            converged,
            path,
            potential_audit: options.audit_potential.then_some(true),
            churn_applied,
            // The incremental engine rides the tracker directly; there
            // is no MoveSource decision cache to re-probe.
            cache_reprobes: 0,
            final_activity,
        }
    };

    loop {
        if steps >= options.max_steps {
            return Ok(finish(tracker, steps, false, path, churn_applied));
        }
        while next < order.len() && plan.events[order[next]].at_step <= steps {
            let event = &plan.events[order[next]];
            tracker
                .apply_delta(event.delta)
                .map_err(|error| LearningError::ChurnRejected { step: steps, error })?;
            churn_applied += 1;
            next += 1;
            instrument.on_delta(steps, event.delta);
        }
        let Some(mv) = tracker.find_improving_move() else {
            if next < order.len() {
                // Stable, but more churn is scheduled: fast-forward.
                let event = &plan.events[order[next]];
                tracker
                    .apply_delta(event.delta)
                    .map_err(|error| LearningError::ChurnRejected { step: steps, error })?;
                churn_applied += 1;
                next += 1;
                instrument.on_delta(steps, event.delta);
                continue;
            }
            return Ok(finish(tracker, steps, true, path, churn_applied));
        };
        let before = options.audit_potential.then(|| tracker.rpu_list());
        tracker.apply(mv.miner, mv.to);
        if let Some(before) = before {
            if tracker.rpu_list() <= before {
                return Err(LearningError::PotentialViolation { mv, step: steps });
            }
        }
        if options.record_path {
            path.push(mv);
        }
        instrument.on_step(tracker.config(), mv);
        steps += 1;
        if every > 0 && steps.is_multiple_of(every) {
            instrument.on_checkpoint(steps, &Snapshot::of(&tracker));
        }
    }
}

/// A borrowed step observer: called with the configuration *after* each
/// executed move, and the move itself.
type Observer<'a> = &'a mut dyn FnMut(&Configuration, Move);

/// The **single entry point** of the learning engine: a builder that
/// assembles a better-response run from its independent ingredients —
/// where to start (a configuration, a [`Snapshot`], or a live
/// [`MassTracker`]), who picks the moves (a [`Scheduler`], or the
/// tracker's own group round-robin when none is given), what churns
/// (a [`ChurnPlan`]), and what watches (an [`Instrument`] — per-step,
/// per-delta, and periodic-checkpoint callbacks in one trait; the
/// legacy [`Dynamics::observer`] / [`Dynamics::checkpoint`] seams
/// remain and compose with it).
///
/// The classic `run*` functions are thin wrappers over this builder and
/// remain for callers that want the narrow signatures; new call sites
/// should come through here.
///
/// Starting-state precedence when several are set:
/// [`Dynamics::from_tracker`] > [`Dynamics::from_snapshot`] >
/// [`Dynamics::start`]. With a tracker or snapshot start, the churn
/// plan's activity *masks* are ignored (the forked state already
/// carries its activity); only the delta stream is consulted.
///
/// # Examples
///
/// The scheduler-free incremental engine (the `BENCH_*.json` dynamics
/// workload):
///
/// ```
/// use goc_game::{CoinId, Configuration, Game};
/// use goc_learning::Dynamics;
///
/// let game = Game::build(&[3, 3, 1, 1], &[6, 2])?;
/// let start = Configuration::uniform(CoinId(0), game.system())?;
/// let outcome = Dynamics::new(&game).start(&start).run()?;
/// assert!(outcome.converged);
/// assert!(game.is_stable(&outcome.final_config));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// A scheduled run with an observer:
///
/// ```
/// use goc_game::{CoinId, Configuration, Game};
/// use goc_learning::{Dynamics, RoundRobin};
///
/// let game = Game::build(&[2, 1], &[1, 1])?;
/// let start = Configuration::uniform(CoinId(0), game.system())?;
/// let mut trace = Vec::new();
/// let outcome = Dynamics::new(&game)
///     .start(&start)
///     .scheduler(&mut RoundRobin::new())
///     .observer(&mut |_, mv| trace.push(mv))
///     .run()?;
/// assert_eq!(trace.len(), outcome.steps);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Dynamics<'g, 'a> {
    game: &'g Game,
    start: Option<Configuration>,
    snapshot: Option<&'a Snapshot>,
    tracker: Option<MassTracker<'g>>,
    scheduler: Option<&'a mut dyn Scheduler>,
    options: LearningOptions,
    plan: Option<&'a ChurnPlan>,
    instrument: Option<&'a mut dyn Instrument>,
    observer: Option<Observer<'a>>,
    hook: Option<CheckpointHook<'a>>,
}

impl<'g, 'a> Dynamics<'g, 'a> {
    /// Starts assembling a run over `game` with default options, no
    /// churn, and the scheduler-free incremental engine.
    pub fn new(game: &'g Game) -> Self {
        Dynamics {
            game,
            start: None,
            snapshot: None,
            tracker: None,
            scheduler: None,
            options: LearningOptions::default(),
            plan: None,
            instrument: None,
            observer: None,
            hook: None,
        }
    }

    /// Starts from `start` (validated against the game's system when the
    /// run launches; the churn plan's activity masks, if any, set the
    /// time-zero universe state).
    pub fn start(mut self, start: &Configuration) -> Self {
        self.start = Some(start.clone());
        self
    }

    /// Warm-starts from a [`Snapshot`]: the run forks the captured
    /// state onto the builder's game ([`LearningError::SnapshotMismatch`]
    /// if they differ), resuming the round-robin exactly where the
    /// original stood.
    pub fn from_snapshot(mut self, snapshot: &'a Snapshot) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// Warm-starts from a live tracker — a [`Snapshot::fork`], a
    /// checkpoint restore, or any tracker mid-dynamics.
    pub fn from_tracker(mut self, tracker: MassTracker<'g>) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// Lets `scheduler` pick the moves (through the incremental
    /// [`MoveSource`] protocol). Without a scheduler the run uses the
    /// tracker's own group round-robin — the leanest loop.
    pub fn scheduler(mut self, scheduler: &'a mut dyn Scheduler) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Sets the run options (step cap, path recording, potential audit).
    pub fn options(mut self, options: LearningOptions) -> Self {
        self.options = options;
        self
    }

    /// Interleaves `plan`'s delta stream with the dynamics (see
    /// [`ChurnPlan`]).
    pub fn churn(mut self, plan: &'a ChurnPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Threads `instrument` through the run — the unified watching
    /// seam: per-step, per-delta, and periodic-checkpoint callbacks in
    /// one trait (see [`Instrument`]). Closures of the classic observer
    /// shape `FnMut(&Configuration, Move)` are instruments via the
    /// blanket impl, as is [`CheckpointHook`]; telemetry attaches the
    /// same way ([`DynamicsTelemetry`]).
    ///
    /// Composes with the legacy [`Dynamics::observer`] /
    /// [`Dynamics::checkpoint`] seams: when more than one watcher is
    /// set, all of them see the run.
    ///
    /// [`DynamicsTelemetry`]: crate::instrument::DynamicsTelemetry
    pub fn instrument(mut self, instrument: &'a mut dyn Instrument) -> Self {
        self.instrument = Some(instrument);
        self
    }

    /// Calls `observer` after every applied move with the new
    /// configuration.
    ///
    /// Legacy seam: [`Dynamics::instrument`] subsumes this (a closure
    /// of this shape *is* an [`Instrument`]); kept so existing observer
    /// call sites compile unchanged.
    pub fn observer(mut self, observer: &'a mut dyn FnMut(&Configuration, Move)) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Captures a [`Snapshot`] every `hook.every` steps (see
    /// [`CheckpointHook`]).
    ///
    /// Legacy seam: [`Dynamics::instrument`] subsumes this
    /// ([`CheckpointHook`] implements [`Instrument`]); kept so existing
    /// checkpoint call sites compile unchanged.
    pub fn checkpoint(mut self, hook: CheckpointHook<'a>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Launches the run.
    ///
    /// # Errors
    ///
    /// * [`LearningError::MissingStart`] without a starting state.
    /// * [`LearningError::SnapshotMismatch`] if a snapshot start
    ///   captures a different game.
    /// * The engine errors of the classic entry points:
    ///   [`LearningError::NotABetterResponse`],
    ///   [`LearningError::PotentialViolation`],
    ///   [`LearningError::SchedulerFailed`],
    ///   [`LearningError::ChurnRejected`].
    pub fn run(self) -> Result<LearningOutcome, LearningError> {
        let default_plan = ChurnPlan::default();
        let plan = self.plan.unwrap_or(&default_plan);
        let tracker = if let Some(tracker) = self.tracker {
            tracker
        } else if let Some(snapshot) = self.snapshot {
            snapshot
                .fork_into(self.game)
                .map_err(|_| LearningError::SnapshotMismatch)?
        } else if let Some(start) = &self.start {
            churn_tracker(self.game, start, plan)?
        } else {
            return Err(LearningError::MissingStart);
        };
        // Fold the legacy observer/checkpoint seams and the instrument
        // into the engine's single watcher. A `&mut dyn FnMut` observer
        // is itself `FnMut`, so the blanket impl covers it; a lone
        // watcher is passed straight through with no fan-out layer.
        let mut observer = self.observer;
        let mut hook = self.hook;
        let mut parts: Vec<&mut dyn Instrument> = Vec::new();
        if let Some(instrument) = self.instrument {
            parts.push(instrument);
        }
        if let Some(observer) = observer.as_mut() {
            parts.push(observer);
        }
        if let Some(hook) = hook.as_mut() {
            parts.push(hook);
        }
        let mut noop = NoInstrument;
        let mut fan;
        let instrument: &mut dyn Instrument = if parts.is_empty() {
            &mut noop
        } else if parts.len() == 1 {
            parts.pop().expect("exactly one watcher")
        } else {
            fan = Fanout::new(parts);
            &mut fan
        };
        match self.scheduler {
            Some(scheduler) => scheduled_engine(tracker, scheduler, self.options, plan, instrument),
            None => incremental_engine(tracker, self.options, plan, instrument),
        }
    }
}

/// Convenience: run to convergence with defaults and return only the final
/// stable configuration and step count.
///
/// # Panics
///
/// Panics if the scheduler misbehaves (cannot happen for the bundled
/// schedulers) or the step cap is hit.
pub fn converge(
    game: &Game,
    start: &Configuration,
    scheduler: &mut dyn Scheduler,
) -> (Configuration, usize) {
    let outcome = run(game, start, scheduler, LearningOptions::default())
        .expect("bundled schedulers only return legal moves");
    assert!(
        outcome.converged,
        "better-response learning did not converge within the step cap"
    );
    (outcome.final_config, outcome.steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{MinGain, RoundRobin, SchedulerKind, UniformRandom};
    use goc_game::gen::{GameSpec, PowerDist, RewardDist};
    use goc_game::{CoinId, Configuration, Game};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn converges_on_prop1_game() {
        let game = goc_game::paper::prop1_game();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let (final_config, steps) = converge(&game, &start, &mut RoundRobin::new());
        assert!(game.is_stable(&final_config));
        assert!(steps >= 1);
    }

    #[test]
    fn all_schedulers_converge_on_random_games_with_audit() {
        let spec = GameSpec {
            miners: 8,
            coins: 3,
            powers: PowerDist::Uniform { lo: 1, hi: 500 },
            rewards: RewardDist::Uniform { lo: 1, hi: 500 },
        };
        let mut rng = SmallRng::seed_from_u64(21);
        for trial in 0..10 {
            let game = spec.sample(&mut rng).unwrap();
            let start = goc_game::gen::random_config(&mut rng, game.system());
            for kind in SchedulerKind::ALL {
                let mut sched = kind.build(trial);
                let outcome = run(
                    &game,
                    &start,
                    sched.as_mut(),
                    LearningOptions {
                        audit_potential: true,
                        record_path: true,
                        ..LearningOptions::default()
                    },
                )
                .unwrap();
                assert!(outcome.converged, "{kind} failed to converge");
                assert!(game.is_stable(&outcome.final_config));
                assert_eq!(outcome.path.len(), outcome.steps);
                assert_eq!(outcome.potential_audit, Some(true));
            }
        }
    }

    #[test]
    fn path_replay_reaches_final_config() {
        let game = goc_game::paper::btc_bch_toy();
        let start = Configuration::uniform(CoinId(1), game.system()).unwrap();
        let outcome = run(
            &game,
            &start,
            &mut UniformRandom::seeded(5),
            LearningOptions {
                record_path: true,
                ..LearningOptions::default()
            },
        )
        .unwrap();
        let mut replay = start.clone();
        for mv in &outcome.path {
            assert_eq!(replay.coin_of(mv.miner), mv.from);
            replay.apply_move(mv.miner, mv.to);
        }
        assert_eq!(replay, outcome.final_config);
    }

    #[test]
    fn step_cap_reports_non_convergence() {
        let game = goc_game::paper::btc_bch_toy();
        let start = Configuration::uniform(CoinId(1), game.system()).unwrap();
        let outcome = run(
            &game,
            &start,
            &mut MinGain,
            LearningOptions {
                max_steps: 1,
                ..LearningOptions::default()
            },
        )
        .unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.steps, 1);
    }

    #[test]
    fn rogue_scheduler_is_rejected() {
        struct Rogue;
        impl Scheduler for Rogue {
            // Implements only the eager contract: the engine reaches it
            // through the default (materializing) `pick_incremental`.
            fn pick_with(
                &mut self,
                _game: &Game,
                s: &Configuration,
                _masses: &goc_game::Masses,
                _moves: &[Move],
            ) -> Result<Move, SchedulerError> {
                // Propose a no-op "move" that is never a better response.
                let p = goc_game::MinerId(0);
                Ok(Move {
                    miner: p,
                    from: s.coin_of(p),
                    to: s.coin_of(p),
                })
            }
            fn name(&self) -> &'static str {
                "rogue"
            }
        }
        let game = goc_game::paper::prop1_game();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let err = run(&game, &start, &mut Rogue, LearningOptions::default()).unwrap_err();
        assert!(matches!(err, LearningError::NotABetterResponse { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn observer_sees_every_step() {
        let game = goc_game::paper::btc_bch_toy();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let mut observed = 0usize;
        let outcome = run_with_observer(
            &game,
            &start,
            &mut RoundRobin::new(),
            LearningOptions::default(),
            |_, _| observed += 1,
        )
        .unwrap();
        assert_eq!(observed, outcome.steps);
    }

    #[test]
    fn stable_start_is_zero_steps() {
        let game = goc_game::paper::prop1_game();
        let eq = goc_game::equilibrium::greedy_equilibrium(&game);
        let outcome = run(
            &game,
            &eq,
            &mut RoundRobin::new(),
            LearningOptions::default(),
        )
        .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.steps, 0);
        assert_eq!(outcome.final_config, eq);
    }

    #[test]
    fn incremental_path_converges_with_audit_on_random_games() {
        let spec = GameSpec {
            miners: 24,
            coins: 4,
            powers: PowerDist::Uniform { lo: 1, hi: 9 },
            rewards: RewardDist::Uniform { lo: 1, hi: 500 },
        };
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..10 {
            let game = spec.sample(&mut rng).unwrap();
            let start = goc_game::gen::random_config(&mut rng, game.system());
            let outcome = run_incremental(
                &game,
                &start,
                LearningOptions {
                    audit_potential: true,
                    record_path: true,
                    ..LearningOptions::default()
                },
            )
            .unwrap();
            assert!(outcome.converged);
            assert!(game.is_stable(&outcome.final_config));
            assert_eq!(outcome.path.len(), outcome.steps);
            assert_eq!(outcome.potential_audit, Some(true));
            // The recorded path replays to the final configuration and
            // every step was an individual better response.
            let mut replay = start.clone();
            for mv in &outcome.path {
                let masses = replay.masses(game.system());
                assert!(game.is_better_response(mv.miner, mv.to, &replay, &masses));
                assert_eq!(replay.coin_of(mv.miner), mv.from);
                replay.apply_move(mv.miner, mv.to);
            }
            assert_eq!(replay, outcome.final_config);
        }
    }

    #[test]
    fn incremental_path_respects_step_cap() {
        let game = goc_game::paper::btc_bch_toy();
        let start = Configuration::uniform(CoinId(1), game.system()).unwrap();
        let outcome = run_incremental(
            &game,
            &start,
            LearningOptions {
                max_steps: 1,
                ..LearningOptions::default()
            },
        )
        .unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.steps, 1);
    }

    #[test]
    fn incremental_path_handles_restrictions_and_stable_starts() {
        let game = Game::build(&[5, 3, 2, 1], &[4, 4, 4])
            .unwrap()
            .with_restrictions(vec![
                vec![true, true, false],
                vec![true, true, true],
                vec![false, true, true],
                vec![true, false, true],
            ])
            .unwrap();
        let start = Configuration::uniform(CoinId(1), game.system()).unwrap();
        let outcome = run_incremental(&game, &start, LearningOptions::default()).unwrap();
        assert!(outcome.converged);
        assert!(game.is_stable(&outcome.final_config));

        let eq = goc_game::equilibrium::greedy_equilibrium(&goc_game::paper::prop1_game());
        let outcome = run_incremental(
            &goc_game::paper::prop1_game(),
            &eq,
            LearningOptions::default(),
        )
        .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.steps, 0);
        assert_eq!(outcome.final_config, eq);
    }

    #[test]
    fn incremental_scales_past_population_rescans() {
        // 3k miners in 6 power classes over 3 coins: convergence must
        // take a number of steps linear-ish in the population and stay
        // well under a second (the 100k case is exercised by the `scale`
        // experiment and the benches).
        let classes: [u64; 6] = [1, 2, 3, 5, 8, 13];
        let powers: Vec<u64> = (0..3_000).map(|i| classes[i % classes.len()]).collect();
        let game = Game::build(&powers, &[60, 30, 10]).unwrap();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let outcome = run_incremental(&game, &start, LearningOptions::default()).unwrap();
        assert!(outcome.converged);
        assert!(outcome.steps >= 1_000, "suspiciously few steps");
        let tracker = goc_game::MassTracker::new(&game, &outcome.final_config).unwrap();
        assert!(tracker.is_stable());
    }

    #[test]
    fn all_schedulers_converge_under_churn() {
        use goc_game::Delta;
        // 12 miners in 3 power classes over 3 coins; coin 2 starts
        // dormant, a third of the population starts offline, and the run
        // interleaves arrivals, departures, one launch, and one
        // retirement with the better-response steps.
        let powers: Vec<u64> = (0..12).map(|i| [5u64, 2, 1][i % 3]).collect();
        let game = Game::build(&powers, &[9, 6, 4]).unwrap();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let miner_active: Vec<bool> = (0..12).map(|i| i % 3 != 2).collect();
        let plan = ChurnPlan {
            miner_active: Some(miner_active),
            coin_active: Some(vec![true, true, false]),
            events: vec![
                ChurnEvent {
                    at_step: 1,
                    delta: Delta::InsertMiner {
                        miner: goc_game::MinerId(2),
                        coin: None,
                    },
                },
                ChurnEvent {
                    at_step: 2,
                    delta: Delta::LaunchCoin { coin: CoinId(2) },
                },
                ChurnEvent {
                    at_step: 3,
                    delta: Delta::RemoveMiner {
                        miner: goc_game::MinerId(0),
                    },
                },
                ChurnEvent {
                    at_step: 4,
                    delta: Delta::RetireCoin { coin: CoinId(1) },
                },
                ChurnEvent {
                    at_step: 5,
                    delta: Delta::InsertMiner {
                        miner: goc_game::MinerId(5),
                        coin: Some(CoinId(0)),
                    },
                },
            ],
        };
        for kind in SchedulerKind::ALL {
            let mut sched = kind.build(7);
            let outcome = run_with_churn(
                &game,
                &start,
                sched.as_mut(),
                LearningOptions {
                    audit_potential: true,
                    ..LearningOptions::default()
                },
                &plan,
            )
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(outcome.converged, "{kind} did not converge under churn");
            assert_eq!(outcome.churn_applied, plan.events.len(), "{kind}");
            // The final state is stable by the naive dense oracle.
            let (miner_active, coin_active) = outcome.final_activity.as_ref().expect("churn run");
            let tracker = goc_game::MassTracker::with_activity(
                &game,
                &outcome.final_config,
                miner_active,
                coin_active,
            )
            .unwrap();
            let sub = tracker.active_subgame().unwrap();
            assert!(sub.game.is_stable(&sub.config), "{kind} not stable");
            assert!(!coin_active[1] && coin_active[2], "{kind} coin masks");
        }
    }

    #[test]
    fn incremental_churn_engine_agrees_with_scheduled_one() {
        use goc_game::Delta;
        let game = Game::build(&[4, 4, 2, 2, 1, 1], &[8, 4]).unwrap();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let plan = ChurnPlan {
            miner_active: None,
            coin_active: None,
            events: vec![
                ChurnEvent {
                    at_step: 2,
                    delta: Delta::RemoveMiner {
                        miner: goc_game::MinerId(1),
                    },
                },
                ChurnEvent {
                    at_step: 4,
                    delta: Delta::InsertMiner {
                        miner: goc_game::MinerId(1),
                        coin: None,
                    },
                },
            ],
        };
        let incremental =
            run_incremental_with_churn(&game, &start, LearningOptions::default(), &plan).unwrap();
        assert!(incremental.converged);
        assert_eq!(incremental.churn_applied, 2);
        let mut rr = RoundRobin::new();
        let scheduled =
            run_with_churn(&game, &start, &mut rr, LearningOptions::default(), &plan).unwrap();
        assert!(scheduled.converged);
        assert_eq!(scheduled.churn_applied, 2);
        // Both engines end fully repopulated and stable under the naive
        // oracle (the interleavings differ, so the equilibria may too).
        for outcome in [&incremental, &scheduled] {
            let (miner_active, coin_active) = outcome.final_activity.as_ref().unwrap();
            assert!(miner_active.iter().all(|&a| a));
            let tracker = goc_game::MassTracker::with_activity(
                &game,
                &outcome.final_config,
                miner_active,
                coin_active,
            )
            .unwrap();
            assert!(tracker.is_stable());
        }
    }

    #[test]
    fn illegal_churn_is_a_named_error() {
        use goc_game::Delta;
        let game = goc_game::paper::prop1_game();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let plan = ChurnPlan {
            events: vec![
                ChurnEvent {
                    at_step: 0,
                    delta: Delta::RemoveMiner {
                        miner: goc_game::MinerId(1),
                    },
                },
                ChurnEvent {
                    at_step: 0,
                    delta: Delta::RemoveMiner {
                        miner: goc_game::MinerId(1),
                    },
                },
            ],
            ..ChurnPlan::default()
        };
        let err = run_with_churn(
            &game,
            &start,
            &mut RoundRobin::new(),
            LearningOptions::default(),
            &plan,
        )
        .unwrap_err();
        assert!(matches!(err, LearningError::ChurnRejected { step: 0, .. }));
        assert!(err.to_string().contains("churn delta rejected"));
    }

    #[test]
    fn churn_fast_forwards_through_stable_states() {
        use goc_game::Delta;
        // The game is already stable; the only scheduled event sits far
        // beyond any step the dynamics will take. It must still fire.
        let game = goc_game::paper::prop1_game();
        let eq = goc_game::equilibrium::greedy_equilibrium(&game);
        let plan = ChurnPlan {
            events: vec![ChurnEvent {
                at_step: 1_000,
                delta: Delta::RemoveMiner {
                    miner: goc_game::MinerId(1),
                },
            }],
            ..ChurnPlan::default()
        };
        let outcome = run_with_churn(
            &game,
            &eq,
            &mut RoundRobin::new(),
            LearningOptions::default(),
            &plan,
        )
        .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.churn_applied, 1);
        let (miner_active, _) = outcome.final_activity.unwrap();
        assert!(!miner_active[1]);
    }

    #[test]
    fn warm_start_from_a_fork_matches_the_cold_run() {
        let game = Game::build(&[8, 5, 3, 2, 1, 1], &[7, 4, 2]).unwrap();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let cold = run_incremental(&game, &start, LearningOptions::default()).unwrap();
        // Fork the *starting* state through a snapshot round-trip and
        // continue from it: the trajectory (and thus the equilibrium and
        // step count) must be identical.
        let tracker = goc_game::MassTracker::new(&game, &start).unwrap();
        let bytes = Snapshot::of(&tracker).encode();
        let snap = Snapshot::try_from(bytes.as_slice()).unwrap();
        let warm = run_incremental_from(
            snap.fork(),
            LearningOptions::default(),
            &ChurnPlan::default(),
            None,
        )
        .unwrap();
        assert!(warm.converged);
        assert_eq!(warm.steps, cold.steps);
        assert_eq!(warm.final_config, cold.final_config);
    }

    #[test]
    fn checkpoints_fire_and_resume_exactly() {
        use goc_game::Delta;
        let game = Game::build(&[4, 4, 2, 2, 1, 1], &[8, 4]).unwrap();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let plan = ChurnPlan::with_events(
            None,
            None,
            [
                (
                    2,
                    Delta::RemoveMiner {
                        miner: goc_game::MinerId(5),
                    },
                ),
                (
                    4,
                    Delta::InsertMiner {
                        miner: goc_game::MinerId(5),
                        coin: None,
                    },
                ),
            ],
        );
        let mut checkpoints: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut sink = |steps: usize, snap: Snapshot| {
            checkpoints.push((steps, snap.encode()));
        };
        let tracker = goc_game::MassTracker::new(&game, &start).unwrap();
        let full = run_incremental_from(
            tracker,
            LearningOptions::default(),
            &plan,
            Some(CheckpointHook {
                every: 1,
                sink: &mut sink,
            }),
        )
        .unwrap();
        assert!(full.converged);
        assert_eq!(checkpoints.len(), full.steps, "one checkpoint per step");
        // Resume from the first checkpoint: replay only the not-yet-due
        // churn (every checkpoint step count keys the remaining stream)
        // and land on the same equilibrium.
        let (at, bytes) = checkpoints.first().unwrap();
        let snap = Snapshot::try_from(bytes.as_slice()).unwrap();
        let remaining = ChurnPlan {
            miner_active: None,
            coin_active: None,
            events: plan
                .events
                .iter()
                .filter(|e| e.at_step > *at)
                .map(|e| ChurnEvent {
                    at_step: e.at_step - at,
                    delta: e.delta,
                })
                .collect(),
        };
        let resumed =
            run_incremental_from(snap.fork(), LearningOptions::default(), &remaining, None)
                .unwrap();
        assert!(resumed.converged);
        assert_eq!(resumed.final_config, full.final_config);
        assert_eq!(resumed.steps + at, full.steps);
    }

    #[test]
    fn builder_without_a_start_is_rejected() {
        let game = goc_game::paper::btc_bch_toy();
        assert_eq!(
            Dynamics::new(&game).run().err(),
            Some(LearningError::MissingStart)
        );
    }

    #[test]
    fn builder_rejects_a_foreign_snapshot() {
        let game = Game::build(&[2, 1], &[1, 1]).unwrap();
        let other = Game::build(&[3, 1], &[1, 1]).unwrap();
        let start = Configuration::uniform(CoinId(0), other.system()).unwrap();
        let tracker = goc_game::MassTracker::new(&other, &start).unwrap();
        let snap = Snapshot::of(&tracker);
        assert_eq!(
            Dynamics::new(&game).from_snapshot(&snap).run().err(),
            Some(LearningError::SnapshotMismatch)
        );
    }

    #[test]
    fn builder_snapshot_start_matches_the_cold_run() {
        let game = Game::build(&[8, 5, 3, 2, 1, 1], &[7, 4, 2]).unwrap();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let cold = Dynamics::new(&game).start(&start).run().unwrap();
        let tracker = goc_game::MassTracker::new(&game, &start).unwrap();
        let snap = Snapshot::of(&tracker);
        let warm = Dynamics::new(&game).from_snapshot(&snap).run().unwrap();
        assert!(warm.converged);
        assert_eq!(warm.steps, cold.steps);
        assert_eq!(warm.final_config, cold.final_config);
    }

    #[test]
    fn builder_observes_the_incremental_engine() {
        // The observer hook now also covers the scheduler-free loop; it
        // must see every applied move in order.
        let game = Game::build(&[8, 5, 3, 2, 1, 1], &[9, 6, 2]).unwrap();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let mut trace = Vec::new();
        let outcome = Dynamics::new(&game)
            .start(&start)
            .options(LearningOptions {
                record_path: true,
                ..LearningOptions::default()
            })
            .observer(&mut |_, mv| trace.push(mv))
            .run()
            .unwrap();
        assert!(outcome.converged);
        assert_eq!(trace, outcome.path);
    }

    #[test]
    fn builder_and_wrappers_agree_on_every_scheduler() {
        let game = Game::build(&[5, 3, 3, 2, 1], &[9, 4, 2]).unwrap();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        for kind in SchedulerKind::ALL {
            let via_wrapper = run(
                &game,
                &start,
                kind.build(7).as_mut(),
                LearningOptions::default(),
            )
            .unwrap();
            let via_builder = Dynamics::new(&game)
                .start(&start)
                .scheduler(kind.build(7).as_mut())
                .run()
                .unwrap();
            assert_eq!(via_wrapper.steps, via_builder.steps, "{kind} diverged");
            assert_eq!(via_wrapper.final_config, via_builder.final_config);
        }
    }

    #[test]
    fn restricted_games_converge_empirically() {
        // The theorem is stated for unrestricted games; the asymmetric
        // variant is exercised empirically (Discussion §6).
        let game = Game::build(&[5, 3, 2, 1], &[4, 4, 4])
            .unwrap()
            .with_restrictions(vec![
                vec![true, true, false],
                vec![true, true, true],
                vec![false, true, true],
                vec![true, false, true],
            ])
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for seed in 0..10 {
            let start = goc_game::gen::random_config_restricted(&mut rng, &game);
            let outcome = run(
                &game,
                &start,
                &mut UniformRandom::seeded(seed),
                LearningOptions::default(),
            )
            .unwrap();
            assert!(outcome.converged);
        }
    }
}
