//! The better-response learning engine.
//!
//! A *better-response learning* from `s` (paper §2) is a sequence of
//! individual improvement steps that either is infinite or ends in a
//! stable configuration. Theorem 1 shows the infinite case cannot happen;
//! [`run`] executes the sequence for any [`Scheduler`] and reports the
//! convergence point, step count, and (optionally) the full improving path
//! with a potential-monotonicity audit.
//!
//! Every entry point rides on `goc_game`'s incremental layers:
//! [`MassTracker`] maintains masses, payoffs, and the potential audit
//! under single-move deltas, and [`run`] hands schedulers a
//! [`MoveSource`] — lazy move discovery over the
//! tracker's strategic groups — through
//! [`Scheduler::pick_incremental`]. No step materializes the per-miner
//! improving-move list, so **every** bundled [`SchedulerKind`] converges
//! 100k–250k-miner games, not just the dedicated [`run_incremental`]
//! group round-robin. The eager [`Scheduler::pick_with`] path survives
//! as the oracle the equivalence suite pins the lazy picks to.
//!
//! [`SchedulerKind`]: crate::scheduler::SchedulerKind

use std::fmt;

use goc_game::{Configuration, Game, MassTracker, Move, MoveSource};

use crate::scheduler::{Scheduler, SchedulerError};

/// Options controlling a learning run.
#[derive(Debug, Clone, Copy)]
pub struct LearningOptions {
    /// Hard cap on steps. Theorem 1 guarantees termination, so hitting the
    /// cap signals either an enormous game or a bug; the outcome then has
    /// `converged == false`.
    pub max_steps: usize,
    /// Record the full improving path in the outcome.
    pub record_path: bool,
    /// After every step, assert that the ordinal potential strictly
    /// increased (expensive: `O(|C| log |C|)` per step). Intended for
    /// tests and the Theorem 1 experiment.
    pub audit_potential: bool,
}

impl Default for LearningOptions {
    fn default() -> Self {
        LearningOptions {
            max_steps: 1_000_000,
            record_path: false,
            audit_potential: false,
        }
    }
}

/// Result of a learning run.
#[derive(Debug, Clone)]
pub struct LearningOutcome {
    /// The final configuration (stable iff `converged`).
    pub final_config: Configuration,
    /// Number of better-response steps taken.
    pub steps: usize,
    /// Whether a stable configuration was reached within `max_steps`.
    pub converged: bool,
    /// The improving path, if requested.
    pub path: Vec<Move>,
    /// `Some(true)` if auditing was enabled and every step strictly
    /// increased the ordinal potential (`Some(false)` is impossible —
    /// a violation aborts the run with an error).
    pub potential_audit: Option<bool>,
}

/// Errors produced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LearningError {
    /// The scheduler returned a move that is not a legal better response —
    /// failure injection for buggy schedulers.
    NotABetterResponse {
        /// The offending move.
        mv: Move,
    },
    /// Potential auditing found a step that did not increase the ordinal
    /// potential (would falsify Theorem 1; indicates an engine bug).
    PotentialViolation {
        /// The offending move.
        mv: Move,
        /// Step index at which the violation occurred.
        step: usize,
    },
    /// The scheduler reported an internal inconsistency instead of a
    /// pick (see [`SchedulerError`]).
    SchedulerFailed(SchedulerError),
}

impl fmt::Display for LearningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearningError::NotABetterResponse { mv } => {
                write!(f, "scheduler returned a non-improving move ({mv})")
            }
            LearningError::PotentialViolation { mv, step } => write!(
                f,
                "ordinal potential failed to increase at step {step} ({mv})"
            ),
            LearningError::SchedulerFailed(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for LearningError {}

impl From<SchedulerError> for LearningError {
    fn from(err: SchedulerError) -> Self {
        LearningError::SchedulerFailed(err)
    }
}

/// Runs better-response learning from `start` under `scheduler`.
///
/// # Errors
///
/// * [`LearningError::NotABetterResponse`] if the scheduler misbehaves.
/// * [`LearningError::PotentialViolation`] if auditing detects a
///   non-increasing step (engine bug).
///
/// # Examples
///
/// ```
/// use goc_game::{CoinId, Configuration, Game};
/// use goc_learning::{run, LearningOptions, RoundRobin};
///
/// let game = Game::build(&[2, 1], &[1, 1])?;
/// let start = Configuration::uniform(CoinId(0), game.system())?;
/// let outcome = run(&game, &start, &mut RoundRobin::new(), LearningOptions::default())?;
/// assert!(outcome.converged);
/// assert!(game.is_stable(&outcome.final_config));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(
    game: &Game,
    start: &Configuration,
    scheduler: &mut dyn Scheduler,
    options: LearningOptions,
) -> Result<LearningOutcome, LearningError> {
    run_with_observer(game, start, scheduler, options, |_, _| {})
}

/// [`run`] with a per-step observer called *after* each applied move with
/// the new configuration. Used by experiments that trace potential values
/// or hashrate series.
pub fn run_with_observer(
    game: &Game,
    start: &Configuration,
    scheduler: &mut dyn Scheduler,
    options: LearningOptions,
    mut observer: impl FnMut(&Configuration, Move),
) -> Result<LearningOutcome, LearningError> {
    let mut source =
        MoveSource::new(game, start).expect("start configuration belongs to the game's system");
    // The run never rewinds; don't retain an O(steps) undo history.
    source.set_undo_recording(false);
    let mut path = Vec::new();
    let mut steps = 0usize;

    while steps < options.max_steps {
        // The stability sweep warms the source's group-decision cache;
        // the scheduler's pick right after reuses it.
        if source.is_stable() {
            return Ok(LearningOutcome {
                final_config: source.into_config(),
                steps,
                converged: true,
                path,
                potential_audit: options.audit_potential.then_some(true),
            });
        }
        let mv = scheduler.pick_incremental(&mut source)?;
        if !source.is_better_response(mv.miner, mv.to) {
            return Err(LearningError::NotABetterResponse { mv });
        }
        let before = options.audit_potential.then(|| source.rpu_list());
        source.apply(mv.miner, mv.to);
        if let Some(before) = before {
            // Theorem 1's ordinal potential is the sorted RPU list; the
            // tracker yields it in O(coins log coins) with no rescan.
            if source.rpu_list() <= before {
                return Err(LearningError::PotentialViolation { mv, step: steps });
            }
        }
        if options.record_path {
            path.push(mv);
        }
        observer(source.config(), mv);
        steps += 1;
    }

    Ok(LearningOutcome {
        final_config: source.into_config(),
        steps,
        converged: false,
        path,
        potential_audit: options.audit_potential.then_some(true),
    })
}

/// Better-response learning for **large populations**: a round-robin over
/// the tracker's strategic groups (same coin, same power), each step
/// applying the probed group representative's best response. Semantics
/// are a legal better-response learning in the sense of Theorem 1 — it
/// converges to a pure equilibrium exactly like [`run`] — but no step
/// ever rescans the miner vector, so 100k+ miner games converge in
/// seconds as long as the population has few distinct hashrate classes.
///
/// Since the incremental scheduler protocol landed, [`run`] matches this
/// entry point's asymptotics for every bundled scheduler (both ride the
/// tracker); `run_incremental` survives as the leanest loop — group
/// round-robin with no scheduler dispatch, the recorded `BENCH_*.json`
/// dynamics workload — and as a second implementation the `schedulers`
/// experiment cross-checks.
///
/// # Errors
///
/// [`LearningError::PotentialViolation`] if auditing detects a
/// non-increasing step (engine bug).
///
/// # Examples
///
/// ```
/// use goc_game::{CoinId, Configuration, Game};
/// use goc_learning::{run_incremental, LearningOptions};
///
/// let game = Game::build(&[3, 3, 1, 1], &[6, 2])?;
/// let start = Configuration::uniform(CoinId(0), game.system())?;
/// let outcome = run_incremental(&game, &start, LearningOptions::default())?;
/// assert!(outcome.converged);
/// assert!(game.is_stable(&outcome.final_config));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_incremental(
    game: &Game,
    start: &Configuration,
    options: LearningOptions,
) -> Result<LearningOutcome, LearningError> {
    let mut tracker =
        MassTracker::new(game, start).expect("start configuration belongs to the game's system");
    // The run never rewinds; don't retain an O(steps) undo history.
    tracker.set_undo_recording(false);
    let mut path = Vec::new();
    let mut steps = 0usize;

    while steps < options.max_steps {
        let Some(mv) = tracker.find_improving_move() else {
            return Ok(LearningOutcome {
                final_config: tracker.into_config(),
                steps,
                converged: true,
                path,
                potential_audit: options.audit_potential.then_some(true),
            });
        };
        let before = options.audit_potential.then(|| tracker.rpu_list());
        tracker.apply(mv.miner, mv.to);
        if let Some(before) = before {
            if tracker.rpu_list() <= before {
                return Err(LearningError::PotentialViolation { mv, step: steps });
            }
        }
        if options.record_path {
            path.push(mv);
        }
        steps += 1;
    }

    Ok(LearningOutcome {
        final_config: tracker.into_config(),
        steps,
        converged: false,
        path,
        potential_audit: options.audit_potential.then_some(true),
    })
}

/// Convenience: run to convergence with defaults and return only the final
/// stable configuration and step count.
///
/// # Panics
///
/// Panics if the scheduler misbehaves (cannot happen for the bundled
/// schedulers) or the step cap is hit.
pub fn converge(
    game: &Game,
    start: &Configuration,
    scheduler: &mut dyn Scheduler,
) -> (Configuration, usize) {
    let outcome = run(game, start, scheduler, LearningOptions::default())
        .expect("bundled schedulers only return legal moves");
    assert!(
        outcome.converged,
        "better-response learning did not converge within the step cap"
    );
    (outcome.final_config, outcome.steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{MinGain, RoundRobin, SchedulerKind, UniformRandom};
    use goc_game::gen::{GameSpec, PowerDist, RewardDist};
    use goc_game::{CoinId, Configuration, Game};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn converges_on_prop1_game() {
        let game = goc_game::paper::prop1_game();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let (final_config, steps) = converge(&game, &start, &mut RoundRobin::new());
        assert!(game.is_stable(&final_config));
        assert!(steps >= 1);
    }

    #[test]
    fn all_schedulers_converge_on_random_games_with_audit() {
        let spec = GameSpec {
            miners: 8,
            coins: 3,
            powers: PowerDist::Uniform { lo: 1, hi: 500 },
            rewards: RewardDist::Uniform { lo: 1, hi: 500 },
        };
        let mut rng = SmallRng::seed_from_u64(21);
        for trial in 0..10 {
            let game = spec.sample(&mut rng).unwrap();
            let start = goc_game::gen::random_config(&mut rng, game.system());
            for kind in SchedulerKind::ALL {
                let mut sched = kind.build(trial);
                let outcome = run(
                    &game,
                    &start,
                    sched.as_mut(),
                    LearningOptions {
                        audit_potential: true,
                        record_path: true,
                        ..LearningOptions::default()
                    },
                )
                .unwrap();
                assert!(outcome.converged, "{kind} failed to converge");
                assert!(game.is_stable(&outcome.final_config));
                assert_eq!(outcome.path.len(), outcome.steps);
                assert_eq!(outcome.potential_audit, Some(true));
            }
        }
    }

    #[test]
    fn path_replay_reaches_final_config() {
        let game = goc_game::paper::btc_bch_toy();
        let start = Configuration::uniform(CoinId(1), game.system()).unwrap();
        let outcome = run(
            &game,
            &start,
            &mut UniformRandom::seeded(5),
            LearningOptions {
                record_path: true,
                ..LearningOptions::default()
            },
        )
        .unwrap();
        let mut replay = start.clone();
        for mv in &outcome.path {
            assert_eq!(replay.coin_of(mv.miner), mv.from);
            replay.apply_move(mv.miner, mv.to);
        }
        assert_eq!(replay, outcome.final_config);
    }

    #[test]
    fn step_cap_reports_non_convergence() {
        let game = goc_game::paper::btc_bch_toy();
        let start = Configuration::uniform(CoinId(1), game.system()).unwrap();
        let outcome = run(
            &game,
            &start,
            &mut MinGain,
            LearningOptions {
                max_steps: 1,
                ..LearningOptions::default()
            },
        )
        .unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.steps, 1);
    }

    #[test]
    fn rogue_scheduler_is_rejected() {
        struct Rogue;
        impl Scheduler for Rogue {
            // Implements only the eager contract: the engine reaches it
            // through the default (materializing) `pick_incremental`.
            fn pick_with(
                &mut self,
                _game: &Game,
                s: &Configuration,
                _masses: &goc_game::Masses,
                _moves: &[Move],
            ) -> Result<Move, SchedulerError> {
                // Propose a no-op "move" that is never a better response.
                let p = goc_game::MinerId(0);
                Ok(Move {
                    miner: p,
                    from: s.coin_of(p),
                    to: s.coin_of(p),
                })
            }
            fn name(&self) -> &'static str {
                "rogue"
            }
        }
        let game = goc_game::paper::prop1_game();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let err = run(&game, &start, &mut Rogue, LearningOptions::default()).unwrap_err();
        assert!(matches!(err, LearningError::NotABetterResponse { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn observer_sees_every_step() {
        let game = goc_game::paper::btc_bch_toy();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let mut observed = 0usize;
        let outcome = run_with_observer(
            &game,
            &start,
            &mut RoundRobin::new(),
            LearningOptions::default(),
            |_, _| observed += 1,
        )
        .unwrap();
        assert_eq!(observed, outcome.steps);
    }

    #[test]
    fn stable_start_is_zero_steps() {
        let game = goc_game::paper::prop1_game();
        let eq = goc_game::equilibrium::greedy_equilibrium(&game);
        let outcome = run(
            &game,
            &eq,
            &mut RoundRobin::new(),
            LearningOptions::default(),
        )
        .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.steps, 0);
        assert_eq!(outcome.final_config, eq);
    }

    #[test]
    fn incremental_path_converges_with_audit_on_random_games() {
        let spec = GameSpec {
            miners: 24,
            coins: 4,
            powers: PowerDist::Uniform { lo: 1, hi: 9 },
            rewards: RewardDist::Uniform { lo: 1, hi: 500 },
        };
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..10 {
            let game = spec.sample(&mut rng).unwrap();
            let start = goc_game::gen::random_config(&mut rng, game.system());
            let outcome = run_incremental(
                &game,
                &start,
                LearningOptions {
                    audit_potential: true,
                    record_path: true,
                    ..LearningOptions::default()
                },
            )
            .unwrap();
            assert!(outcome.converged);
            assert!(game.is_stable(&outcome.final_config));
            assert_eq!(outcome.path.len(), outcome.steps);
            assert_eq!(outcome.potential_audit, Some(true));
            // The recorded path replays to the final configuration and
            // every step was an individual better response.
            let mut replay = start.clone();
            for mv in &outcome.path {
                let masses = replay.masses(game.system());
                assert!(game.is_better_response(mv.miner, mv.to, &replay, &masses));
                assert_eq!(replay.coin_of(mv.miner), mv.from);
                replay.apply_move(mv.miner, mv.to);
            }
            assert_eq!(replay, outcome.final_config);
        }
    }

    #[test]
    fn incremental_path_respects_step_cap() {
        let game = goc_game::paper::btc_bch_toy();
        let start = Configuration::uniform(CoinId(1), game.system()).unwrap();
        let outcome = run_incremental(
            &game,
            &start,
            LearningOptions {
                max_steps: 1,
                ..LearningOptions::default()
            },
        )
        .unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.steps, 1);
    }

    #[test]
    fn incremental_path_handles_restrictions_and_stable_starts() {
        let game = Game::build(&[5, 3, 2, 1], &[4, 4, 4])
            .unwrap()
            .with_restrictions(vec![
                vec![true, true, false],
                vec![true, true, true],
                vec![false, true, true],
                vec![true, false, true],
            ])
            .unwrap();
        let start = Configuration::uniform(CoinId(1), game.system()).unwrap();
        let outcome = run_incremental(&game, &start, LearningOptions::default()).unwrap();
        assert!(outcome.converged);
        assert!(game.is_stable(&outcome.final_config));

        let eq = goc_game::equilibrium::greedy_equilibrium(&goc_game::paper::prop1_game());
        let outcome = run_incremental(
            &goc_game::paper::prop1_game(),
            &eq,
            LearningOptions::default(),
        )
        .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.steps, 0);
        assert_eq!(outcome.final_config, eq);
    }

    #[test]
    fn incremental_scales_past_population_rescans() {
        // 3k miners in 6 power classes over 3 coins: convergence must
        // take a number of steps linear-ish in the population and stay
        // well under a second (the 100k case is exercised by the `scale`
        // experiment and the benches).
        let classes: [u64; 6] = [1, 2, 3, 5, 8, 13];
        let powers: Vec<u64> = (0..3_000).map(|i| classes[i % classes.len()]).collect();
        let game = Game::build(&powers, &[60, 30, 10]).unwrap();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let outcome = run_incremental(&game, &start, LearningOptions::default()).unwrap();
        assert!(outcome.converged);
        assert!(outcome.steps >= 1_000, "suspiciously few steps");
        let tracker = goc_game::MassTracker::new(&game, &outcome.final_config).unwrap();
        assert!(tracker.is_stable());
    }

    #[test]
    fn restricted_games_converge_empirically() {
        // The theorem is stated for unrestricted games; the asymmetric
        // variant is exercised empirically (Discussion §6).
        let game = Game::build(&[5, 3, 2, 1], &[4, 4, 4])
            .unwrap()
            .with_restrictions(vec![
                vec![true, true, false],
                vec![true, true, true],
                vec![false, true, true],
                vec![true, false, true],
            ])
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for seed in 0..10 {
            let start = goc_game::gen::random_config_restricted(&mut rng, &game);
            let outcome = run(
                &game,
                &start,
                &mut UniformRandom::seeded(seed),
                LearningOptions::default(),
            )
            .unwrap();
            assert!(outcome.converged);
        }
    }
}
