//! Simultaneous (synchronous) best-response dynamics — the contrast
//! class that motivates the paper's sequential model.
//!
//! Theorem 1 is about *individual* improvement steps taken one at a
//! time. If instead every unstable miner best-responds **at once**, the
//! dynamics can cycle forever: two symmetric miners endlessly swap coins
//! chasing each other. This module implements the synchronous update
//! with cycle detection, so experiments can quantify how often the
//! sequential assumption matters.

use std::collections::HashMap;

use goc_game::{Configuration, Game, MassTracker};

/// Result of a synchronous-dynamics run.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncOutcome {
    /// The last configuration (a fixed point iff `converged`).
    pub final_config: Configuration,
    /// Rounds executed (one round = all unstable miners move together).
    pub rounds: usize,
    /// Reached a configuration where no miner wants to move.
    pub converged: bool,
    /// A revisited configuration was detected (a limit cycle; implies
    /// `!converged`). Contains the cycle length.
    pub cycle: Option<usize>,
}

/// Runs synchronous best-response dynamics from `start` for at most
/// `max_rounds` rounds, detecting limit cycles exactly (every visited
/// configuration is remembered).
///
/// # Examples
///
/// ```
/// use goc_game::{CoinId, Configuration, Game};
/// use goc_learning::simultaneous::run_simultaneous;
///
/// // Two identical miners, two identical coins: both flee the shared
/// // coin together, collide, and flee again — a 2-cycle.
/// let game = Game::build(&[1, 1], &[10, 10])?;
/// let start = Configuration::uniform(CoinId(0), game.system())?;
/// let outcome = run_simultaneous(&game, &start, 100);
/// assert!(!outcome.converged);
/// assert_eq!(outcome.cycle, Some(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_simultaneous(game: &Game, start: &Configuration, max_rounds: usize) -> SyncOutcome {
    // The tracker's incremental masses serve each round's simultaneous
    // decisions; per-miner best responses still read the *same* pre-round
    // masses because moves are collected before any is applied.
    let mut tracker =
        MassTracker::new(game, start).expect("start configuration belongs to the game's system");
    // Rounds never rewind; don't retain an O(rounds × miners) history.
    tracker.set_undo_recording(false);
    let mut seen: HashMap<Configuration, usize> = HashMap::new();
    seen.insert(tracker.config().clone(), 0);
    for round in 1..=max_rounds {
        let moves: Vec<_> = game
            .system()
            .miner_ids()
            .filter_map(|p| tracker.best_response(p).map(|c| (p, c)))
            .collect();
        if moves.is_empty() {
            return SyncOutcome {
                final_config: tracker.into_config(),
                rounds: round - 1,
                converged: true,
                cycle: None,
            };
        }
        for (p, c) in moves {
            tracker.apply(p, c);
        }
        if let Some(&first) = seen.get(tracker.config()) {
            return SyncOutcome {
                final_config: tracker.into_config(),
                rounds: round,
                converged: false,
                cycle: Some(round - first),
            };
        }
        seen.insert(tracker.config().clone(), round);
    }
    SyncOutcome {
        final_config: tracker.into_config(),
        rounds: max_rounds,
        converged: false,
        cycle: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_game::CoinId;

    #[test]
    fn symmetric_pair_cycles() {
        let game = Game::build(&[1, 1], &[10, 10]).unwrap();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        let outcome = run_simultaneous(&game, &start, 50);
        assert!(!outcome.converged);
        assert_eq!(outcome.cycle, Some(2));
    }

    #[test]
    fn stable_start_converges_immediately() {
        let game = goc_game::paper::prop1_game();
        let eq = goc_game::equilibrium::greedy_equilibrium(&game);
        let outcome = run_simultaneous(&game, &eq, 50);
        assert!(outcome.converged);
        assert_eq!(outcome.rounds, 0);
        assert_eq!(outcome.final_config, eq);
    }

    #[test]
    fn some_unstable_starts_converge_synchronously() {
        // Synchronous updates are not *always* divergent: when only one
        // miner is unstable, a round coincides with a sequential step.
        // (Amusingly, in many games — e.g. powers (8,4,2,1), rewards
        // (9,5) — EVERY unstable configuration has ≥2 unstable miners
        // and every synchronous run cycles; this 2-miner instance has a
        // genuine single-mover start.)
        let game = Game::build(&[3, 1], &[9, 5]).unwrap();
        let converged = goc_game::ConfigurationIter::bounded(game.system(), 1 << 16)
            .unwrap()
            .filter(|s| !game.is_stable(s))
            .map(|s| run_simultaneous(&game, &s, 200))
            .find(|o| o.converged)
            .expect("some unstable start settles under synchronous updates");
        assert!(converged.rounds >= 1);
        assert!(game.is_stable(&converged.final_config));
    }

    #[test]
    fn round_budget_is_respected() {
        let game = Game::build(&[1, 1], &[10, 10]).unwrap();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        // One round is not enough to revisit a configuration.
        let outcome = run_simultaneous(&game, &start, 1);
        assert_eq!(outcome.rounds, 1);
        assert!(!outcome.converged);
        assert_eq!(outcome.cycle, None);
    }
}
