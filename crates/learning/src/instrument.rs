//! [`Instrument`]: the unified observation API of the learning engine.
//!
//! Before this trait, watching a run meant juggling two bespoke hooks —
//! a raw `&mut dyn FnMut(&Configuration, Move)` observer *and* a
//! separate [`CheckpointHook`] — and telemetry would have been a third.
//! `Instrument` collapses them into one surface with default no-ops:
//!
//! * [`Instrument::on_step`] — after every applied better-response
//!   move, with the new configuration (the old observer callback);
//! * [`Instrument::on_delta`] — after every applied churn delta;
//! * [`Instrument::on_checkpoint`] — every
//!   [`Instrument::checkpoint_every`] steps, with a [`Snapshot`] of the
//!   tracker (the old [`CheckpointHook`] contract).
//!
//! A blanket impl makes every `FnMut(&Configuration, Move)` closure an
//! `Instrument`, so call sites written against the observer API compile
//! unchanged through [`Dynamics::instrument`]; [`CheckpointHook`]
//! implements the trait too. [`DynamicsTelemetry`] is the
//! `goc-telemetry` binding — counters and a convergence-wall histogram
//! registered on a shared [`Registry`] — and is *just another
//! instrument*: the engine has exactly one watching seam.
//!
//! [`CheckpointHook`]: crate::dynamics::CheckpointHook
//! [`Dynamics::instrument`]: crate::dynamics::Dynamics::instrument

use goc_game::{Configuration, Delta, Move, Snapshot};
use goc_telemetry::trace::{TraceEventKind, TraceLane, TraceRecorder};
use goc_telemetry::{Counter, LatencyHistogram, Registry};

use crate::dynamics::LearningOutcome;

/// A watcher threaded through a learning run. All methods default to
/// no-ops, so an instrument implements only what it cares about; the
/// engine pays one virtual call per event either way (the same cost the
/// old `&mut dyn FnMut` observer already paid).
pub trait Instrument {
    /// Called after every applied better-response move, with the
    /// configuration *after* the move.
    fn on_step(&mut self, config: &Configuration, mv: Move) {
        let _ = (config, mv);
    }

    /// Called after every churn delta the engine applies, with the step
    /// count at which it fired.
    fn on_delta(&mut self, step: usize, delta: Delta) {
        let _ = (step, delta);
    }

    /// Checkpoint cadence in steps; `0` (the default) disables
    /// checkpointing, so the engine never pays for a [`Snapshot`] it
    /// would not deliver.
    fn checkpoint_every(&self) -> usize {
        0
    }

    /// Called every [`Instrument::checkpoint_every`] steps with a
    /// snapshot of the tracker.
    fn on_checkpoint(&mut self, step: usize, snapshot: &Snapshot) {
        let _ = (step, snapshot);
    }
}

/// Every step-observer closure is an instrument — the bridge that keeps
/// the classic observer call sites compiling unchanged.
impl<F: FnMut(&Configuration, Move)> Instrument for F {
    fn on_step(&mut self, config: &Configuration, mv: Move) {
        self(config, mv)
    }
}

/// The do-nothing instrument (what an unobserved run uses).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoInstrument;

impl Instrument for NoInstrument {}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Fans one engine seam out to several instruments (the builder's
/// legacy observer + checkpoint hook + a caller instrument can coexist).
/// The engine snapshots at the gcd of the nonzero cadences; each part
/// only hears the checkpoints on its own multiples.
pub(crate) struct Fanout<'p> {
    parts: Vec<&'p mut dyn Instrument>,
}

impl<'p> Fanout<'p> {
    pub(crate) fn new(parts: Vec<&'p mut dyn Instrument>) -> Self {
        Fanout { parts }
    }
}

impl Instrument for Fanout<'_> {
    fn on_step(&mut self, config: &Configuration, mv: Move) {
        for part in &mut self.parts {
            part.on_step(config, mv);
        }
    }

    fn on_delta(&mut self, step: usize, delta: Delta) {
        for part in &mut self.parts {
            part.on_delta(step, delta);
        }
    }

    fn checkpoint_every(&self) -> usize {
        self.parts
            .iter()
            .map(|part| part.checkpoint_every())
            .filter(|&every| every > 0)
            .fold(0, gcd)
    }

    fn on_checkpoint(&mut self, step: usize, snapshot: &Snapshot) {
        for part in &mut self.parts {
            let every = part.checkpoint_every();
            if every > 0 && step.is_multiple_of(every) {
                part.on_checkpoint(step, snapshot);
            }
        }
    }
}

/// The `goc-telemetry` binding of the engine: an [`Instrument`] whose
/// events land in lock-free counters on a shared
/// [`Registry`], plus run-level observations
/// ([`DynamicsTelemetry::observe_run`]) for the numbers only the caller
/// knows — wall time, convergence, and the [`MoveSource`] decision
/// cache's re-probe count carried on the outcome.
///
/// Registration is idempotent per registry (same names share the same
/// atomics), so every replica or request can hold its own handle set
/// and the totals still accumulate process-wide. On a
/// [`Registry::disabled`] registry the handles are detached: the hot
/// path still runs one relaxed atomic increment per event and nothing
/// is retained or reported.
///
/// [`MoveSource`]: goc_game::MoveSource
#[derive(Debug, Clone)]
pub struct DynamicsTelemetry {
    steps: Counter,
    deltas: Counter,
    runs: Counter,
    converged: Counter,
    reprobes: Counter,
    wall: LatencyHistogram,
}

impl DynamicsTelemetry {
    /// Registers the dynamics metric family on `registry`:
    /// `goc_dynamics_steps_total`, `goc_dynamics_churn_deltas_total`,
    /// `goc_dynamics_runs_total`, `goc_dynamics_converged_total`,
    /// `goc_dynamics_cache_reprobes_total`, and the
    /// `goc_dynamics_convergence_secs` histogram.
    pub fn register(registry: &Registry) -> Self {
        DynamicsTelemetry {
            steps: registry.counter("goc_dynamics_steps_total"),
            deltas: registry.counter("goc_dynamics_churn_deltas_total"),
            runs: registry.counter("goc_dynamics_runs_total"),
            converged: registry.counter("goc_dynamics_converged_total"),
            reprobes: registry.counter("goc_dynamics_cache_reprobes_total"),
            wall: registry.histogram("goc_dynamics_convergence_secs"),
        }
    }

    /// Records the run-level numbers of a completed run: the run count,
    /// whether it converged, the decision-cache re-probes its outcome
    /// carries, and its wall time into the convergence histogram.
    pub fn observe_run(&self, outcome: &LearningOutcome, wall_secs: f64) {
        self.runs.inc();
        if outcome.converged {
            self.converged.inc();
        }
        self.reprobes.add(outcome.cache_reprobes);
        self.wall.observe(wall_secs);
    }
}

impl Instrument for DynamicsTelemetry {
    fn on_step(&mut self, _config: &Configuration, _mv: Move) {
        self.steps.inc();
    }

    fn on_delta(&mut self, _step: usize, _delta: Delta) {
        self.deltas.inc();
    }
}

/// The flight-recorder binding of the engine: an [`Instrument`] that
/// writes one [`TraceEventKind::StepPick`] instant per applied move
/// (correlation = the deviating miner) and one
/// [`TraceEventKind::DeltaApply`] per churn delta (correlation = the
/// step it fired at) onto its own single-writer lane, plus a run-level
/// [`TraceEventKind::CacheReprobe`] instant carrying the decision
/// cache's re-probe count ([`DynamicsTracing::observe_run`]).
///
/// Like [`DynamicsTelemetry`] on a disabled registry, tracing on a
/// disabled (or standby) recorder costs one relaxed load per event —
/// cheap enough to leave compiled into the engine.
#[derive(Debug)]
pub struct DynamicsTracing {
    lane: TraceLane,
}

impl DynamicsTracing {
    /// Opens a lane on `recorder` for this instrument (one writer, one
    /// lane — create one `DynamicsTracing` per thread).
    pub fn new(recorder: &TraceRecorder) -> Self {
        DynamicsTracing {
            lane: recorder.lane(),
        }
    }

    /// Records the run-level trace of a completed run: a
    /// [`TraceEventKind::CacheReprobe`] instant whose correlation is
    /// the outcome's re-probe count.
    pub fn observe_run(&self, outcome: &LearningOutcome) {
        self.lane
            .instant(TraceEventKind::CacheReprobe, outcome.cache_reprobes);
    }
}

impl Instrument for DynamicsTracing {
    fn on_step(&mut self, _config: &Configuration, mv: Move) {
        self.lane
            .instant(TraceEventKind::StepPick, mv.miner.0 as u64);
    }

    fn on_delta(&mut self, step: usize, _delta: Delta) {
        self.lane.instant(TraceEventKind::DeltaApply, step as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{CheckpointHook, Dynamics};
    use goc_game::{CoinId, Game};

    fn toy() -> (Game, Configuration) {
        let game = Game::build(&[8, 5, 3, 2, 1, 1], &[7, 4, 2]).unwrap();
        let start = Configuration::uniform(CoinId(0), game.system()).unwrap();
        (game, start)
    }

    #[test]
    fn closures_are_instruments_via_the_blanket_impl() {
        let (game, start) = toy();
        let mut seen = 0usize;
        let mut closure = |_: &Configuration, _: Move| seen += 1;
        let outcome = Dynamics::new(&game)
            .start(&start)
            .instrument(&mut closure)
            .run()
            .unwrap();
        assert!(outcome.converged);
        assert_eq!(seen, outcome.steps);
    }

    #[test]
    fn fanout_routes_checkpoints_by_cadence() {
        let (game, start) = toy();
        let mut steps_a = Vec::new();
        let mut steps_b = Vec::new();
        let mut sink_a = |step: usize, _snap: Snapshot| steps_a.push(step);
        let mut sink_b = |step: usize, _snap: Snapshot| steps_b.push(step);
        let mut hook_a = CheckpointHook {
            every: 2,
            sink: &mut sink_a,
        };
        let mut hook_b = CheckpointHook {
            every: 3,
            sink: &mut sink_b,
        };
        let mut observed = 0usize;
        let mut observer = |_: &Configuration, _: Move| observed += 1;
        let outcome = {
            let mut fan = Fanout::new(vec![
                &mut observer as &mut dyn Instrument,
                &mut hook_a,
                &mut hook_b,
            ]);
            assert_eq!(fan.checkpoint_every(), 1, "gcd(2, 3)");
            Dynamics::new(&game)
                .start(&start)
                .instrument(&mut fan)
                .run()
                .unwrap()
        };
        assert!(outcome.converged);
        assert_eq!(observed, outcome.steps);
        assert!(steps_a.iter().all(|s| s % 2 == 0));
        assert!(steps_b.iter().all(|s| s % 3 == 0));
        assert_eq!(steps_a.len(), outcome.steps / 2);
        assert_eq!(steps_b.len(), outcome.steps / 3);
    }

    #[test]
    fn telemetry_counts_steps_and_run_outcomes() {
        let (game, start) = toy();
        let registry = Registry::new();
        let mut telemetry = DynamicsTelemetry::register(&registry);
        let clock = std::time::Instant::now();
        let outcome = Dynamics::new(&game)
            .start(&start)
            .instrument(&mut telemetry)
            .run()
            .unwrap();
        telemetry.observe_run(&outcome, clock.elapsed().as_secs_f64());
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("goc_dynamics_steps_total"),
            Some(outcome.steps as u64)
        );
        assert_eq!(snap.counter("goc_dynamics_runs_total"), Some(1));
        assert_eq!(snap.counter("goc_dynamics_converged_total"), Some(1));
        assert_eq!(
            snap.histogram("goc_dynamics_convergence_secs")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn disabled_registry_telemetry_still_runs_the_engine_unchanged() {
        let (game, start) = toy();
        let bare = Dynamics::new(&game).start(&start).run().unwrap();
        let registry = Registry::disabled();
        let mut telemetry = DynamicsTelemetry::register(&registry);
        let outcome = Dynamics::new(&game)
            .start(&start)
            .instrument(&mut telemetry)
            .run()
            .unwrap();
        telemetry.observe_run(&outcome, 0.001);
        assert_eq!(outcome.steps, bare.steps);
        assert_eq!(outcome.final_config, bare.final_config);
        assert!(registry.snapshot().counters.is_empty());
    }

    #[test]
    fn tracing_records_a_step_per_move_and_the_run_reprobes() {
        use goc_telemetry::trace::{TraceEventKind, TracePhase, TraceRecorder};
        let (game, start) = toy();
        let recorder = TraceRecorder::new(4096);
        let mut tracing = DynamicsTracing::new(&recorder);
        let outcome = Dynamics::new(&game)
            .start(&start)
            .instrument(&mut tracing)
            .run()
            .unwrap();
        tracing.observe_run(&outcome);
        let snap = recorder.snapshot();
        assert_eq!(snap.dropped, 0);
        let steps = snap
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::StepPick)
            .count();
        assert_eq!(steps, outcome.steps);
        let reprobe = snap
            .events
            .iter()
            .find(|e| e.kind == TraceEventKind::CacheReprobe)
            .expect("observe_run records the re-probe count");
        assert_eq!(reprobe.phase, TracePhase::Instant);
        assert_eq!(reprobe.correlation, outcome.cache_reprobes);
    }

    #[test]
    fn tracing_on_a_standby_recorder_leaves_the_run_unchanged() {
        let (game, start) = toy();
        let bare = Dynamics::new(&game).start(&start).run().unwrap();
        let recorder = goc_telemetry::trace::TraceRecorder::standby(64);
        let mut tracing = DynamicsTracing::new(&recorder);
        let outcome = Dynamics::new(&game)
            .start(&start)
            .instrument(&mut tracing)
            .run()
            .unwrap();
        tracing.observe_run(&outcome);
        assert_eq!(outcome.steps, bare.steps);
        assert_eq!(outcome.final_config, bare.final_config);
        assert!(recorder.snapshot().events.is_empty());
    }

    #[test]
    fn gcd_of_cadences() {
        assert_eq!(gcd(2, 3), 1);
        assert_eq!(gcd(4, 6), 2);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }
}
