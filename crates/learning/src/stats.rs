//! Convergence statistics over repeated learning runs.
//!
//! The Theorem 1 / convergence-speed experiments repeat learning across
//! seeds and report step-count distributions; this module provides the
//! repetition harness and summary.

use goc_game::gen::random_config;
use goc_game::{Configuration, Game};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dynamics::{run, LearningOptions};
use crate::scheduler::SchedulerKind;

/// Summary of step counts over a batch of learning runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceSummary {
    /// Number of runs.
    pub runs: usize,
    /// Runs that reached a stable configuration within the cap.
    pub converged: usize,
    /// Minimum steps among converged runs.
    pub min_steps: usize,
    /// Maximum steps among converged runs.
    pub max_steps: usize,
    /// Mean steps among converged runs.
    pub mean_steps: f64,
    /// Median steps among converged runs.
    pub median_steps: f64,
    /// 95th-percentile steps among converged runs.
    pub p95_steps: usize,
}

impl ConvergenceSummary {
    /// Summarizes a list of `(converged, steps)` observations.
    pub fn from_observations(obs: &[(bool, usize)]) -> Self {
        let mut steps: Vec<usize> = obs.iter().filter(|(ok, _)| *ok).map(|&(_, s)| s).collect();
        steps.sort_unstable();
        let converged = steps.len();
        let (min_steps, max_steps) = match (steps.first(), steps.last()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => (0, 0),
        };
        let mean_steps = if converged == 0 {
            0.0
        } else {
            steps.iter().sum::<usize>() as f64 / converged as f64
        };
        let median_steps = percentile(&steps, 0.5);
        let p95_steps = percentile(&steps, 0.95) as usize;
        ConvergenceSummary {
            runs: obs.len(),
            converged,
            min_steps,
            max_steps,
            mean_steps,
            median_steps,
            p95_steps,
        }
    }

    /// Fraction of runs that converged.
    pub fn convergence_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.converged as f64 / self.runs as f64
        }
    }
}

fn percentile(sorted: &[usize], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64
}

/// Runs `repeats` learning trials of `scheduler_kind` on `game` from
/// uniformly random starting configurations and summarizes convergence.
///
/// Deterministic given `seed`.
pub fn convergence_trials(
    game: &Game,
    scheduler_kind: SchedulerKind,
    repeats: usize,
    seed: u64,
    options: LearningOptions,
) -> ConvergenceSummary {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut obs = Vec::with_capacity(repeats);
    for i in 0..repeats {
        let start: Configuration = random_config(&mut rng, game.system());
        let mut sched = scheduler_kind.build(seed.wrapping_add(i as u64));
        let outcome = run(game, &start, sched.as_mut(), options)
            .expect("bundled schedulers only return legal moves");
        obs.push((outcome.converged, outcome.steps));
    }
    ConvergenceSummary::from_observations(&obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_and_mixed() {
        let empty = ConvergenceSummary::from_observations(&[]);
        assert_eq!(empty.runs, 0);
        assert_eq!(empty.convergence_rate(), 0.0);

        let mixed = ConvergenceSummary::from_observations(&[
            (true, 2),
            (true, 10),
            (false, 999),
            (true, 4),
        ]);
        assert_eq!(mixed.runs, 4);
        assert_eq!(mixed.converged, 3);
        assert_eq!(mixed.min_steps, 2);
        assert_eq!(mixed.max_steps, 10);
        assert!((mixed.mean_steps - 16.0 / 3.0).abs() < 1e-12);
        assert_eq!(mixed.median_steps, 4.0);
        assert_eq!(mixed.convergence_rate(), 0.75);
    }

    #[test]
    fn trials_always_converge_on_small_game() {
        let game = goc_game::paper::btc_bch_toy();
        let summary = convergence_trials(
            &game,
            SchedulerKind::UniformRandom,
            25,
            7,
            LearningOptions::default(),
        );
        assert_eq!(summary.runs, 25);
        assert_eq!(summary.converged, 25);
        assert!(summary.max_steps >= summary.min_steps);
    }

    #[test]
    fn trials_are_deterministic() {
        let game = goc_game::paper::btc_bch_toy();
        let a = convergence_trials(
            &game,
            SchedulerKind::MaxGain,
            10,
            3,
            LearningOptions::default(),
        );
        let b = convergence_trials(
            &game,
            SchedulerKind::MaxGain,
            10,
            3,
            LearningOptions::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_midpoints() {
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 0.5), 3.0);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.95), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
