//! Profit-switching miner agents.
//!
//! Each agent periodically estimates revenue-per-hash on every coin and
//! moves to the most profitable one if the gain clears an inertia
//! threshold (switching has real frictions: pool setup, payout latency,
//! reconfiguration). This is precisely the behaviour the paper's §1
//! motivates with whattomine.com, and its *better-response* structure is
//! what the static game abstracts.

use serde::{Deserialize, Serialize};

/// How agents estimate per-coin profitability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleKind {
    /// The whattomine formula: `reward × price / difficulty`. Reacts to
    /// congestion only through difficulty-adjustment lag — the realistic
    /// model, and the one used for Figure 1.
    Difficulty,
    /// The static-game better response: `reward × price / (hashrate ×
    /// spacing)`, i.e. congestion priced instantaneously. Used by the
    /// cross-validation experiment to tie the simulator to `goc-game`.
    Hashrate,
}

/// What an agent does after a profitability evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep mining the current coin (or stay offline).
    Stay,
    /// Move hashrate to another coin.
    Switch(usize),
    /// Power the rig off: every coin mines at a loss net of electricity.
    PowerOff,
    /// Power the rig back on onto the given coin.
    PowerOn(usize),
}

/// A profit-switching miner.
///
/// `cost_per_hash` models electricity (fiat per hash): the whattomine
/// profitability the paper's §1 cites is *net* of power cost, and a
/// miner whose best net margin is negative powers off entirely —
/// capitulation, the mechanism behind bear-market hashrate declines and
/// minority-chain death spirals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinerAgent {
    /// Hash power (hashes per second).
    pub hashrate: f64,
    /// The coin currently mined (last mined, when offline).
    pub coin: usize,
    /// Seconds between profitability evaluations.
    pub eval_interval: f64,
    /// Relative gain required to switch (0.05 = move only for +5%).
    pub inertia: f64,
    /// Electricity cost per hash (fiat); 0.0 disables capitulation.
    pub cost_per_hash: f64,
    /// Whether the rig is currently hashing.
    pub active: bool,
}

impl Default for MinerAgent {
    fn default() -> Self {
        MinerAgent {
            hashrate: 1.0,
            coin: 0,
            eval_interval: 3_600.0,
            inertia: 0.0,
            cost_per_hash: 0.0,
            active: true,
        }
    }
}

impl MinerAgent {
    /// Picks an action given per-coin *revenue*-per-hash estimates
    /// (electricity is netted internally).
    ///
    /// Rules, in order: an offline rig powers on iff some coin clears a
    /// positive net margin (by more than the inertia factor relative to
    /// zero is vacuous, so any positive margin suffices); an online rig
    /// powers off iff every coin's net margin is negative; otherwise it
    /// switches to the best coin if that beats the current net margin by
    /// more than the inertia factor. Ties prefer the lowest coin index.
    pub fn decide(&self, revenue_per_hash: &[f64]) -> Decision {
        debug_assert!(self.coin < revenue_per_hash.len());
        let net = |c: usize| revenue_per_hash[c] - self.cost_per_hash;
        let (mut best, mut best_value) = (0usize, net(0));
        for c in 1..revenue_per_hash.len() {
            if net(c) > best_value {
                best = c;
                best_value = net(c);
            }
        }
        if !self.active {
            return if best_value > 0.0 {
                Decision::PowerOn(best)
            } else {
                Decision::Stay
            };
        }
        if best_value < 0.0 {
            // best_value bounds net(self.coin) from above, so every coin
            // is a strict loss. Exactly-zero margins stay online (no
            // churn at the break-even point).
            return Decision::PowerOff;
        }
        let current = net(self.coin);
        if best != self.coin
            && best_value > current.max(0.0) * (1.0 + self.inertia) + f64::MIN_POSITIVE
        {
            Decision::Switch(best)
        } else {
            Decision::Stay
        }
    }

    /// Backwards-compatible view of [`MinerAgent::decide`] for free-power
    /// agents: `Some(coin)` iff the decision is a switch.
    pub fn decide_switch(&self, revenue_per_hash: &[f64]) -> Option<usize> {
        match self.decide(revenue_per_hash) {
            Decision::Switch(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent(coin: usize, inertia: f64) -> MinerAgent {
        MinerAgent {
            hashrate: 10.0,
            coin,
            inertia,
            ..MinerAgent::default()
        }
    }

    #[test]
    fn moves_to_clearly_better_coin() {
        assert_eq!(agent(0, 0.05).decide(&[1.0, 2.0]), Decision::Switch(1));
        assert_eq!(agent(0, 0.05).decide_switch(&[1.0, 2.0]), Some(1));
    }

    #[test]
    fn inertia_blocks_marginal_gains() {
        assert_eq!(agent(0, 0.10).decide(&[1.0, 1.05]), Decision::Stay);
        assert_eq!(agent(0, 0.01).decide(&[1.0, 1.05]), Decision::Switch(1));
    }

    #[test]
    fn never_moves_to_equal_or_worse() {
        assert_eq!(agent(1, 0.0).decide(&[1.0, 1.0]), Decision::Stay);
        assert_eq!(agent(1, 0.0).decide(&[0.5, 1.0]), Decision::Stay);
    }

    #[test]
    fn ties_prefer_lowest_index_among_strictly_better() {
        // Both alternatives equal and strictly better: pick coin 0.
        assert_eq!(agent(2, 0.0).decide(&[2.0, 2.0, 1.0]), Decision::Switch(0));
    }

    #[test]
    fn zero_current_profitability_switches_on_any_gain() {
        assert_eq!(agent(0, 0.5).decide(&[0.0, 0.1]), Decision::Switch(1));
    }

    #[test]
    fn powers_off_when_everything_is_unprofitable() {
        let costly = MinerAgent {
            cost_per_hash: 2.0,
            ..agent(0, 0.05)
        };
        assert_eq!(costly.decide(&[1.0, 1.5]), Decision::PowerOff);
        // A single profitable coin keeps (or switches) it online.
        assert_eq!(costly.decide(&[1.0, 2.5]), Decision::Switch(1));
        assert_eq!(costly.decide(&[2.5, 1.0]), Decision::Stay);
    }

    #[test]
    fn powers_on_when_margins_return() {
        let offline = MinerAgent {
            cost_per_hash: 2.0,
            active: false,
            ..agent(0, 0.05)
        };
        assert_eq!(offline.decide(&[1.0, 1.5]), Decision::Stay);
        assert_eq!(offline.decide(&[1.0, 2.5]), Decision::PowerOn(1));
        // Comes back onto the best net-margin coin, not the old one.
        assert_eq!(offline.decide(&[3.0, 2.5]), Decision::PowerOn(0));
    }

    #[test]
    fn switches_away_from_a_loss_making_coin() {
        // Current coin is below cost but another clears it: move, even
        // though the relative-gain rule would be degenerate at a
        // negative base.
        let costly = MinerAgent {
            cost_per_hash: 2.0,
            ..agent(0, 0.50)
        };
        assert_eq!(costly.decide(&[1.0, 2.1]), Decision::Switch(1));
    }

    #[test]
    fn free_power_agents_never_power_off() {
        assert_eq!(agent(0, 0.0).decide(&[0.0, 0.0]), Decision::Stay);
    }
}
