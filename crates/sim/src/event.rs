//! Discrete-event queue primitives.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A block candidate for `coin`, valid only if `generation` still
    /// matches the coin's current generation (memoryless resampling: any
    /// hashrate or difficulty change bumps the generation and schedules a
    /// fresh candidate).
    BlockCandidate {
        /// Coin index.
        coin: usize,
        /// Generation stamp at scheduling time.
        generation: u64,
    },
    /// Miner `miner` re-evaluates coin profitability.
    Evaluate {
        /// Miner index.
        miner: usize,
    },
    /// Record a metrics snapshot.
    Snapshot,
    /// Execute any due whale-fee injections.
    Whale,
    /// Execute the `index`-th entry of the simulation's churn timeline
    /// (a rig arrival/departure or a coin launch/retirement).
    Churn {
        /// Index into the timeline attached via `Simulation::with_churn`.
        index: usize,
    },
}

/// A scheduled event; ordered by `(time, seq)` so ties resolve in
/// scheduling order and runs are deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Absolute simulation time (seconds).
    pub time: f64,
    /// Monotone sequence number breaking time ties.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An earliest-first event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN. Events at `f64::INFINITY` are accepted
    /// and simply never fire within a finite horizon.
    pub fn schedule(&mut self, time: f64, kind: EventKind) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Peeks at the earliest event time.
    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, EventKind::Snapshot);
        q.schedule(1.0, EventKind::Evaluate { miner: 0 });
        q.schedule(3.0, EventKind::Whale);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_resolve_in_scheduling_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, EventKind::Evaluate { miner: 7 });
        q.schedule(2.0, EventKind::Evaluate { miner: 9 });
        assert_eq!(q.pop().unwrap().kind, EventKind::Evaluate { miner: 7 });
        assert_eq!(q.pop().unwrap().kind, EventKind::Evaluate { miner: 9 });
    }

    #[test]
    fn infinite_times_sort_last() {
        let mut q = EventQueue::new();
        q.schedule(f64::INFINITY, EventKind::Snapshot);
        q.schedule(10.0, EventKind::Whale);
        assert_eq!(q.pop().unwrap().time, 10.0);
        assert_eq!(q.next_time(), Some(f64::INFINITY));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_times_rejected() {
        EventQueue::new().schedule(f64::NAN, EventKind::Snapshot);
    }
}
