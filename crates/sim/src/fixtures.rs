//! The shared large-population fixture.
//!
//! The `scale` experiment, the `goc-bench` large-population benches, and
//! the `baseline` recorder (the bin behind `BENCH_2.json`) must all
//! measure the **same** workload, or the recorded baseline silently
//! stops describing what the experiment runs. This module is that single
//! source of truth: eight hashrate classes ([`SCALE_CLASSES`]) and the
//! two populations built from them — a static game
//! ([`scale_class_game`]) and a cohort scenario
//! ([`scale_cohort_scenario`]).

use goc_game::Game;

use crate::agent::OracleKind;
use crate::spec::{
    Assignment, ChainFlavor, ChainSpec, ChurnSpec, CohortChurnSpec, CohortSpec, CoinEventSpec,
    CoinLifecycle, MinerSpec, ScenarioSpec,
};

/// One hashrate class of the scale fixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HashrateClass {
    /// Display name.
    pub name: &'static str,
    /// Integer power units (static-game side).
    pub power: u64,
    /// Per-rig hashrate (simulation side).
    pub hashrate: f64,
    /// Hours between profitability evaluations.
    pub eval_hours: f64,
    /// Relative gain required to switch.
    pub inertia: f64,
}

const fn class(
    name: &'static str,
    power: u64,
    hashrate: f64,
    eval_hours: f64,
    inertia: f64,
) -> HashrateClass {
    HashrateClass {
        name,
        power,
        hashrate,
        eval_hours,
        inertia,
    }
}

/// The eight hashrate classes shared by the dynamics games and the sim
/// cohorts, largest first.
pub const SCALE_CLASSES: [HashrateClass; 8] = [
    class("asic-farm", 34, 3_400.0, 2.0, 0.010),
    class("warehouse", 21, 2_100.0, 2.5, 0.015),
    class("pool-node", 13, 1_300.0, 3.0, 0.020),
    class("pro-rig", 8, 800.0, 4.0, 0.030),
    class("garage", 5, 500.0, 5.0, 0.040),
    class("hobbyist", 3, 300.0, 6.0, 0.050),
    class("laptop", 2, 200.0, 7.0, 0.060),
    class("dorm", 1, 100.0, 8.0, 0.080),
];

/// An `n`-miner static game drawn from [`SCALE_CLASSES`] over three
/// coins with rewards 55/30/15.
pub fn scale_class_game(n: usize) -> Game {
    let powers: Vec<u64> = (0..n)
        .map(|i| SCALE_CLASSES[i % SCALE_CLASSES.len()].power)
        .collect();
    Game::build(&powers, &[55, 30, 15]).expect("class powers and rewards are in range")
}

/// The cohort scenario: `n` rigs in one cohort per class over a
/// two-chain market (`major` at price 4, `minor` at price 1; the two
/// smallest classes start on `minor`). Shockless — callers add shocks
/// or whales on top when the workload calls for them.
pub fn scale_cohort_scenario(n: usize, horizon_days: f64, seed: u64) -> ScenarioSpec {
    let per = n / SCALE_CLASSES.len();
    ScenarioSpec {
        name: format!("scale_{n}"),
        horizon_days,
        snapshot_hours: 6.0,
        seed,
        oracle: OracleKind::Hashrate,
        chains: vec![
            ChainSpec::simple(
                "major",
                ChainFlavor::BchLike,
                5_000_000,
                crate::spec::PriceSpec::Constant { value: 4.0 },
            ),
            ChainSpec::simple(
                "minor",
                ChainFlavor::BchLike,
                5_000_000,
                crate::spec::PriceSpec::Constant { value: 1.0 },
            ),
        ],
        miners: MinerSpec::Cohorts(
            SCALE_CLASSES
                .iter()
                .enumerate()
                .map(|(i, c)| CohortSpec {
                    name: c.name.into(),
                    count: per.max(1),
                    hashrate: c.hashrate,
                    coin: usize::from(i >= 6), // the two smallest classes start on `minor`
                    eval_hours: c.eval_hours,
                    inertia: c.inertia,
                    cost_per_hash: 0.0,
                })
                .collect(),
        ),
        assignment: Assignment::Explicit,
        shocks: Vec::new(),
        whale: None,
        churn: None,
    }
}

/// The churny population **base**: the scale cohort scenario plus a
/// third chain (`upstart`, price 2) that churn plans may launch — its
/// first scheduled event being a launch is what makes it start dormant.
/// Callers attach a [`ChurnSpec`] on top ([`scale_churn_scenario`] does,
/// with the standard turnover processes; the ensemble engine does, with
/// whatever plan its spec carries).
pub fn scale_churn_base(n: usize, horizon_days: f64, seed: u64) -> ScenarioSpec {
    let mut spec = scale_cohort_scenario(n, horizon_days, seed);
    spec.name = format!("churn_{n}");
    spec.chains.push(ChainSpec::simple(
        "upstart",
        ChainFlavor::BchLike,
        5_000_000,
        crate::spec::PriceSpec::Constant { value: 2.0 },
    ));
    spec
}

/// The churn workload: [`scale_churn_base`] plus (1) a launch of the
/// dormant `upstart` chain a third of the way in, (2) the retirement of
/// `minor` two thirds of the way in, and (3) per-cohort
/// arrival/departure processes sized so the *expected* total turnover
/// is ≈ `1.5 × turnover_pct%` of the head-count (the margin keeps
/// realized turnover above the target with high probability). This is
/// the single source of truth for the `churn` experiment, the churn
/// benches, and the `BENCH_*.json` recorder.
pub fn scale_churn_scenario(
    n: usize,
    horizon_days: f64,
    seed: u64,
    turnover_pct: u32,
) -> ScenarioSpec {
    let mut spec = scale_churn_base(n, horizon_days, seed);
    let per = (n / SCALE_CLASSES.len()).max(1);
    // Target events over the horizon, split evenly over 8 cohorts × 2
    // processes (arrivals + departures).
    let target_events = 1.5 * (turnover_pct as f64 / 100.0) * (per * SCALE_CLASSES.len()) as f64;
    let rate = target_events / (2.0 * SCALE_CLASSES.len() as f64) / horizon_days;
    spec.churn = Some(ChurnSpec {
        cohorts: (0..SCALE_CLASSES.len())
            .map(|cohort| CohortChurnSpec {
                cohort,
                arrivals_per_day: rate,
                departures_per_day: rate,
                max_extra: per.div_ceil(2),
            })
            .collect(),
        coins: vec![
            CoinEventSpec {
                day: horizon_days / 3.0,
                coin: 2,
                event: CoinLifecycle::Launch,
            },
            CoinEventSpec {
                day: horizon_days * 2.0 / 3.0,
                coin: 1,
                event: CoinLifecycle::Retire,
            },
        ],
    });
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SimChurn;

    #[test]
    fn fixture_populations_validate_and_agree_on_shape() {
        let game = scale_class_game(80);
        assert_eq!(game.system().num_miners(), 80);
        assert_eq!(game.system().num_coins(), 3);
        let spec = scale_cohort_scenario(80, 5.0, 1);
        spec.validate().expect("fixture scenario validates");
        assert_eq!(spec.miners.num_agents(), SCALE_CLASSES.len());
        assert_eq!(spec.miners.count(), 80);
        // Game powers and sim hashrates are the same classes in the same
        // proportions (hashrate = 100 × power throughout).
        for c in &SCALE_CLASSES {
            assert_eq!(c.hashrate, c.power as f64 * 100.0, "{} drifted", c.name);
        }
    }

    #[test]
    fn churn_fixture_validates_and_hits_its_turnover_target() {
        let spec = scale_churn_scenario(160, 30.0, 3, 10);
        spec.validate().expect("churn fixture validates");
        let churn = spec.churn.as_ref().expect("fixture has churn");
        // The upstart chain starts dormant; the two live chains stay.
        assert_eq!(churn.initial_live(3), vec![true, true, false]);
        let timeline = churn.timeline(&spec);
        let migrations = timeline
            .iter()
            .filter(|(_, e)| matches!(e, SimChurn::RigJoin { .. } | SimChurn::RigLeave { .. }))
            .count();
        // Expected ≈ 1.5 × 10% of 160 = 24 rig events; the cap filter
        // and Poisson noise move it around, but a fixture whose realized
        // turnover undershoots the 10% target defeats the experiment.
        assert!(
            migrations >= 16,
            "only {migrations} rig events on a 160-rig population"
        );
        // Exactly one launch and one retirement, in that order.
        let coins: Vec<&SimChurn> = timeline
            .iter()
            .filter(|(_, e)| matches!(e, SimChurn::Coin { .. }))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(
            coins,
            vec![
                &SimChurn::Coin {
                    coin: 2,
                    live: true
                },
                &SimChurn::Coin {
                    coin: 1,
                    live: false
                }
            ]
        );
        // Timeline is deterministic per seed.
        assert_eq!(timeline, churn.timeline(&spec));
        // The simulation runs the same stream mechanistically.
        let mut sim = spec.build().expect("builds");
        assert!(!sim.is_coin_live(2));
        let metrics = sim.run().clone();
        assert_eq!(metrics.total_churn_events, timeline.len() as u64);
    }
}
