//! Prebuilt scenarios, headlined by the Figure 1 reproduction.
//!
//! Since the scenario-API redesign these builders are thin veneers over
//! the declarative [`crate::spec::ScenarioSpec`] layer —
//! [`BtcBchParams::to_spec`] is the single source of truth for the
//! Figure 1 construction, and [`btc_bch`] simply builds it.

use crate::agent::OracleKind;
use crate::engine::Simulation;
use crate::spec::{
    Assignment, ChainFlavor, ChainSpec, MinerSpec, PriceSpec, ScenarioSpec, ShockSpec,
};

/// Parameters of the BTC/BCH migration scenario (paper Figure 1).
///
/// Defaults are calibrated to the November 2017 event the paper cites:
/// BCH trading near 0.1 BTC, pumping to ≈ 0.32 BTC on Nov 12, then
/// retracing about half the move. Both chains share total block value
/// proportionally to price (equal subsidies), so the static game predicts
/// hashrate shares `F_c / Σ F`.
#[derive(Debug, Clone, Copy)]
pub struct BtcBchParams {
    /// Number of miner agents.
    pub num_miners: usize,
    /// Zipf skew of agent hashrates (1.0 = classic).
    pub zipf_exponent: f64,
    /// Total horizon in days.
    pub horizon_days: f64,
    /// Day of the pump.
    pub shock_day: f64,
    /// Multiplicative BCH price factor at the pump.
    pub shock_factor: f64,
    /// Day of the partial retrace.
    pub revert_day: f64,
    /// Multiplicative BCH price factor at the retrace.
    pub revert_factor: f64,
    /// Per-agent evaluation interval in hours.
    pub eval_hours: f64,
    /// Switching inertia (relative gain needed to move).
    pub inertia: f64,
    /// Daily price volatility of each coin.
    pub volatility: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BtcBchParams {
    fn default() -> Self {
        BtcBchParams {
            num_miners: 200,
            zipf_exponent: 0.8,
            horizon_days: 100.0,
            shock_day: 40.0,
            shock_factor: 3.2,
            revert_day: 55.0,
            revert_factor: 0.55,
            eval_hours: 6.0,
            inertia: 0.03,
            volatility: 0.02,
            seed: 2017,
        }
    }
}

/// Day length in seconds.
pub const DAY: f64 = 86_400.0;

/// Builds the BTC/BCH Figure 1 scenario.
///
/// BTC uses Bitcoin's slow 2016-block epoch retarget; BCH uses the fast
/// 144-block moving-average rule — the difficulty-response asymmetry that
/// shaped the real 2017 oscillations. Initial difficulties and the agent
/// split are placed at the pre-shock stationary point (≈ 10:1 by value).
///
/// # Examples
///
/// ```
/// use goc_sim::scenario::{btc_bch, BtcBchParams};
///
/// let mut sim = btc_bch(BtcBchParams { num_miners: 30, horizon_days: 2.0,
///     shock_day: 1.0, revert_day: 1.5, ..BtcBchParams::default() });
/// let metrics = sim.run();
/// assert_eq!(metrics.num_coins(), 2);
/// ```
pub fn btc_bch(params: BtcBchParams) -> Simulation {
    params
        .to_spec()
        .build()
        .expect("the Figure 1 preset always validates")
}

impl BtcBchParams {
    /// The declarative form of this scenario: equal 12.5-coin subsidies,
    /// BTC at $6000 with the slow epoch retarget, BCH at $600 with the
    /// fast moving-average rule, the pump/retrace shocks on BCH, a
    /// value-share initial split, and Zipf miners with heterogeneous
    /// frictions (identical agents would herd — the EDA-oscillation
    /// pathology the `fig1` experiment demonstrates separately).
    ///
    /// Agents play the static game's better response
    /// ([`OracleKind::Hashrate`]: destination congestion priced with
    /// their own mass included), giving the stable marginal-miner
    /// migration of Figure 1; swap the spec's oracle to
    /// [`OracleKind::Difficulty`] for the naive whattomine signal and
    /// its oscillations.
    pub fn to_spec(&self) -> ScenarioSpec {
        let subsidy = 12_500_000u64; // 12.5 coins of 1e6 base units
        ScenarioSpec {
            name: "btc_bch".into(),
            horizon_days: self.horizon_days,
            snapshot_hours: 12.0,
            seed: self.seed,
            oracle: OracleKind::Hashrate,
            chains: vec![
                ChainSpec::simple(
                    "BTC",
                    ChainFlavor::BitcoinLike,
                    subsidy,
                    PriceSpec::Gbm {
                        initial: 6000.0,
                        drift: 0.0,
                        volatility: self.volatility,
                    },
                ),
                ChainSpec::simple(
                    "BCH",
                    ChainFlavor::BchLike,
                    subsidy,
                    PriceSpec::Gbm {
                        initial: 600.0,
                        drift: 0.0,
                        volatility: self.volatility,
                    },
                ),
            ],
            miners: MinerSpec::Zipf {
                count: self.num_miners,
                exponent: self.zipf_exponent,
                scale: 1000.0,
                eval_hours: self.eval_hours,
                inertia: self.inertia,
                cost_per_hash: 0.0,
            },
            assignment: Assignment::ValueShare,
            shocks: vec![
                ShockSpec {
                    day: self.shock_day,
                    coin: 1,
                    factor: self.shock_factor,
                },
                ShockSpec {
                    day: self.revert_day,
                    coin: 1,
                    factor: self.revert_factor,
                },
            ],
            whale: None,
            churn: None,
        }
    }
}

/// The same scenario but with the naive whattomine oracle
/// (`OracleKind::Difficulty`): agents chase the *lagging* difficulty
/// signal, which herds them and produces the violent hashrate
/// oscillations the real post-fork BCH chart (and its EDA post-mortems)
/// exhibit.
pub fn btc_bch_oscillating(params: BtcBchParams) -> Simulation {
    let mut sim = btc_bch(params);
    sim.set_oracle(OracleKind::Difficulty);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_starts_near_the_value_split() {
        let sim = btc_bch(BtcBchParams {
            num_miners: 100,
            ..BtcBchParams::default()
        });
        let share = sim.hashrate_of(1) / (sim.hashrate_of(0) + sim.hashrate_of(1));
        assert!(
            (share - 1.0 / 11.0).abs() < 0.04,
            "initial BCH share {share} far from 1/11"
        );
    }

    #[test]
    fn migration_shape_matches_figure_1() {
        let mut sim = btc_bch(BtcBchParams {
            num_miners: 80,
            seed: 42,
            ..BtcBchParams::default()
        });
        let m = sim.run().clone();
        let idx_at = |day: f64| {
            m.times
                .iter()
                .position(|&t| t >= day * DAY)
                .unwrap_or(m.len() - 1)
        };
        let before = m.hashrate_share(1, idx_at(39.0));
        let peak = (idx_at(41.0)..=idx_at(54.0))
            .map(|t| m.hashrate_share(1, t))
            .fold(0.0, f64::max);
        let after = m.hashrate_share(1, m.len() - 1);
        // Pump pulls hashrate in; retrace pushes part of it back.
        assert!(peak > before + 0.08, "no inflow: {before} -> peak {peak}");
        assert!(
            after < peak,
            "no outflow after retrace: peak {peak} -> {after}"
        );
        assert!(after > before, "net effect should remain positive");
    }
}
