//! Prebuilt scenarios, headlined by the Figure 1 reproduction.

use goc_chain::{Blockchain, ChainParams, FeeParams, SubsidySchedule};
use goc_market::{Gbm, Market, Price, ScheduledShock};

use crate::agent::{MinerAgent, OracleKind};
use crate::engine::{SimConfig, Simulation};

/// Parameters of the BTC/BCH migration scenario (paper Figure 1).
///
/// Defaults are calibrated to the November 2017 event the paper cites:
/// BCH trading near 0.1 BTC, pumping to ≈ 0.32 BTC on Nov 12, then
/// retracing about half the move. Both chains share total block value
/// proportionally to price (equal subsidies), so the static game predicts
/// hashrate shares `F_c / Σ F`.
#[derive(Debug, Clone, Copy)]
pub struct BtcBchParams {
    /// Number of miner agents.
    pub num_miners: usize,
    /// Zipf skew of agent hashrates (1.0 = classic).
    pub zipf_exponent: f64,
    /// Total horizon in days.
    pub horizon_days: f64,
    /// Day of the pump.
    pub shock_day: f64,
    /// Multiplicative BCH price factor at the pump.
    pub shock_factor: f64,
    /// Day of the partial retrace.
    pub revert_day: f64,
    /// Multiplicative BCH price factor at the retrace.
    pub revert_factor: f64,
    /// Per-agent evaluation interval in hours.
    pub eval_hours: f64,
    /// Switching inertia (relative gain needed to move).
    pub inertia: f64,
    /// Daily price volatility of each coin.
    pub volatility: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BtcBchParams {
    fn default() -> Self {
        BtcBchParams {
            num_miners: 200,
            zipf_exponent: 0.8,
            horizon_days: 100.0,
            shock_day: 40.0,
            shock_factor: 3.2,
            revert_day: 55.0,
            revert_factor: 0.55,
            eval_hours: 6.0,
            inertia: 0.03,
            volatility: 0.02,
            seed: 2017,
        }
    }
}

/// Day length in seconds.
pub const DAY: f64 = 86_400.0;

/// Builds the BTC/BCH Figure 1 scenario.
///
/// BTC uses Bitcoin's slow 2016-block epoch retarget; BCH uses the fast
/// 144-block moving-average rule — the difficulty-response asymmetry that
/// shaped the real 2017 oscillations. Initial difficulties and the agent
/// split are placed at the pre-shock stationary point (≈ 10:1 by value).
///
/// # Examples
///
/// ```
/// use goc_sim::scenario::{btc_bch, BtcBchParams};
///
/// let mut sim = btc_bch(BtcBchParams { num_miners: 30, horizon_days: 2.0,
///     shock_day: 1.0, revert_day: 1.5, ..BtcBchParams::default() });
/// let metrics = sim.run();
/// assert_eq!(metrics.num_coins(), 2);
/// ```
pub fn btc_bch(params: BtcBchParams) -> Simulation {
    let subsidy = 12_500_000u64; // 12.5 coins of 1e6 base units
    let btc_price = 6000.0;
    let bch_price = 600.0;

    // Agent hashrates: Zipf-skewed, echoing real pool concentration.
    let hashrates: Vec<f64> = (0..params.num_miners)
        .map(|i| 1000.0 / ((i + 1) as f64).powf(params.zipf_exponent))
        .collect();
    let total: f64 = hashrates.iter().sum();

    // Pre-shock stationary split by value: BTC carries 10/11 of reward.
    let bch_share = bch_price / (btc_price + bch_price);
    // Assign agents to BCH until its share is met (small agents first, so
    // the composition is diverse).
    let mut on_bch = vec![false; params.num_miners];
    let mut acc = 0.0;
    for i in (0..params.num_miners).rev() {
        if acc + hashrates[i] <= bch_share * total * 1.05 {
            acc += hashrates[i];
            on_bch[i] = true;
        }
    }
    let h_bch: f64 = acc;
    let h_btc = total - h_bch;

    let fee = FeeParams {
        fee_rate: 0.0,
        max_fees_per_block: u64::MAX,
    };
    let btc = ChainParams {
        fees: fee,
        subsidy: SubsidySchedule::constant(subsidy),
        ..ChainParams::bitcoin_like("BTC", h_btc.max(1.0) * 600.0)
    };
    let bch = ChainParams {
        fees: fee,
        subsidy: SubsidySchedule::constant(subsidy),
        ..ChainParams::bch_like("BCH", h_bch.max(1.0) * 600.0)
    };

    let mut market = Market::new(vec![
        Price::Gbm(Gbm::new(btc_price, 0.0, params.volatility)),
        Price::Gbm(Gbm::new(bch_price, 0.0, params.volatility)),
    ]);
    market.schedule_shock(ScheduledShock {
        at: params.shock_day * DAY,
        coin: 1,
        factor: params.shock_factor,
    });
    market.schedule_shock(ScheduledShock {
        at: params.revert_day * DAY,
        coin: 1,
        factor: params.revert_factor,
    });

    // Heterogeneous frictions: inertia spread over [0.5x, 2x] of the base
    // and evaluation cadence over [0.5x, 1.5x], both deterministic in the
    // agent index. Identical agents herd (they all see the same signal
    // and move together — the EDA-oscillation pathology demonstrated by
    // the `fig1_oscillation` experiment); heterogeneity produces the
    // marginal-miner response of the real market.
    let n = params.num_miners as f64;
    let agents: Vec<MinerAgent> = hashrates
        .iter()
        .zip(&on_bch)
        .enumerate()
        .map(|(i, (&hashrate, &bch))| {
            let spread = i as f64 / n.max(1.0);
            MinerAgent {
                hashrate,
                coin: usize::from(bch),
                eval_interval: params.eval_hours * 3600.0 * (0.5 + spread),
                inertia: params.inertia * (0.5 + 1.5 * spread),
                ..MinerAgent::default()
            }
        })
        .collect();

    Simulation::new(
        vec![Blockchain::new(btc), Blockchain::new(bch)],
        market,
        agents,
        SimConfig {
            horizon: params.horizon_days * DAY,
            snapshot_interval: 0.5 * DAY,
            seed: params.seed,
            // Agents play the static game's better response (destination
            // congestion priced with their own mass included): stable
            // marginal-miner migration, the shape of Figure 1. Swap to
            // `Difficulty` to reproduce the EDA-style oscillations the
            // real 2017 chart also shows.
            oracle: OracleKind::Hashrate,
        },
    )
}

/// The same scenario but with the naive whattomine oracle
/// (`OracleKind::Difficulty`): agents chase the *lagging* difficulty
/// signal, which herds them and produces the violent hashrate
/// oscillations the real post-fork BCH chart (and its EDA post-mortems)
/// exhibit.
pub fn btc_bch_oscillating(params: BtcBchParams) -> Simulation {
    let mut sim = btc_bch(params);
    sim.set_oracle(OracleKind::Difficulty);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_starts_near_the_value_split() {
        let sim = btc_bch(BtcBchParams {
            num_miners: 100,
            ..BtcBchParams::default()
        });
        let share = sim.hashrate_of(1) / (sim.hashrate_of(0) + sim.hashrate_of(1));
        assert!(
            (share - 1.0 / 11.0).abs() < 0.04,
            "initial BCH share {share} far from 1/11"
        );
    }

    #[test]
    fn migration_shape_matches_figure_1() {
        let mut sim = btc_bch(BtcBchParams {
            num_miners: 80,
            seed: 42,
            ..BtcBchParams::default()
        });
        let m = sim.run().clone();
        let idx_at = |day: f64| {
            m.times
                .iter()
                .position(|&t| t >= day * DAY)
                .unwrap_or(m.len() - 1)
        };
        let before = m.hashrate_share(1, idx_at(39.0));
        let peak = (idx_at(41.0)..=idx_at(54.0))
            .map(|t| m.hashrate_share(1, t))
            .fold(0.0, f64::max);
        let after = m.hashrate_share(1, m.len() - 1);
        // Pump pulls hashrate in; retrace pushes part of it back.
        assert!(peak > before + 0.08, "no inflow: {before} -> peak {peak}");
        assert!(after < peak, "no outflow after retrace: peak {peak} -> {after}");
        assert!(after > before, "net effect should remain positive");
    }
}
