//! # goc-sim — discrete-event market/mining simulator
//!
//! Couples `goc-chain` proof-of-work chains, `goc-market` price processes,
//! and a population of profit-switching miner agents into a deterministic
//! discrete-event simulation. This is the mechanistic counterpart of the
//! paper's static game: agents follow the whattomine-style profitability
//! signal the paper's §1 describes, and the headline scenario regenerates
//! **Figure 1** (the Nov 2017 BTC→BCH hashrate migration).
//!
//! ```
//! use goc_sim::scenario::{btc_bch, BtcBchParams};
//!
//! let mut sim = btc_bch(BtcBchParams {
//!     num_miners: 40,
//!     horizon_days: 3.0,
//!     shock_day: 1.0,
//!     revert_day: 2.0,
//!     ..BtcBchParams::default()
//! });
//! let metrics = sim.run();
//! println!("{}", metrics.to_csv(&["BTC", "BCH"]));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agent;
pub mod bridge;
pub mod engine;
pub mod event;
pub mod fixtures;
pub mod metrics;
pub mod scenario;
pub mod spec;

pub use agent::{MinerAgent, OracleKind};
pub use bridge::{
    churn_timeline, churn_universe, coin_weights, snapshot_game, stride_deltas, ChurnUniverse,
};
pub use engine::{SimConfig, Simulation};
pub use event::{Event, EventKind, EventQueue};
pub use metrics::SimMetrics;
pub use spec::{
    Assignment, ChainFlavor, ChainSpec, ChurnSpec, CohortChurnSpec, CohortSpec, CoinEventSpec,
    CoinLifecycle, DifficultyInit, MinerPopulation, MinerSpec, PriceSpec, ScenarioSpec, ShockSpec,
    SimChurn, SpecError, WhaleSpec,
};
