//! Bridge between the mechanistic simulator and the static game.
//!
//! The paper's reward function `F(c)` abstracts "transaction rate,
//! transaction fees, and fiat exchange rate" (§1). For a simulated chain
//! those quantities are concrete: at difficulty-adjusted steady state a
//! chain pays `reward_per_block × price / target_spacing` fiat per
//! second, *independent of hashrate* — exactly a coin weight. This module
//! snapshots a running simulation into a `goc_game::Game`, letting the
//! cross-validation experiment compare mechanistic steady states with
//! game-theoretic equilibria.

use std::collections::BTreeSet;
use std::ops::Range;

use goc_game::{CoinId, Configuration, Delta, Game, GameError, MinerId, Rewards, System};

use crate::engine::Simulation;
use crate::spec::{MinerSpec, ScenarioSpec, SimChurn, SpecError};

/// Fiat value per second each chain pays at steady state, given current
/// prices and next-block rewards.
pub fn coin_weights(sim: &Simulation, at: f64) -> Vec<f64> {
    sim.chains()
        .iter()
        .enumerate()
        .map(|(c, chain)| {
            let price = sim.market().price_of(c);
            chain.next_block_reward(at) as f64 * price / chain.params().target_spacing
        })
        .collect()
}

/// Snapshots the simulation into a static game plus the current
/// configuration of agents.
///
/// Hashrates and fiat weights are quantized to integers with `resolution`
/// relative precision (e.g. `1e-4` keeps four significant digits), as the
/// exact game requires integer units.
///
/// # Errors
///
/// Propagates validation errors if quantization degenerates (e.g. a zero
/// hashrate agent).
pub fn snapshot_game(
    sim: &Simulation,
    at: f64,
    resolution: f64,
) -> Result<(Game, Configuration), GameError> {
    let weights = coin_weights(sim, at);
    let max_weight = weights.iter().cloned().fold(f64::MIN, f64::max);
    let reward_scale = 1.0 / (max_weight * resolution);
    let rewards: Vec<u64> = weights
        .iter()
        .map(|w| ((w * reward_scale).round() as u64).max(1))
        .collect();

    let max_hash = sim
        .agents()
        .iter()
        .map(|a| a.hashrate)
        .fold(f64::MIN, f64::max);
    let power_scale = 1.0 / (max_hash * resolution);
    let powers: Vec<u64> = sim
        .agents()
        .iter()
        .map(|a| ((a.hashrate * power_scale).round() as u64).max(1))
        .collect();

    let system = System::new(&powers, rewards.len())?;
    let game = Game::new(system, Rewards::from_integers(&rewards)?)?;
    let assignment = sim.agents().iter().map(|a| CoinId(a.coin)).collect();
    let config = Configuration::new(assignment, game.system())?;
    Ok((game, config))
}

/// The game-side view of a churning scenario: the pre-declared
/// miner/coin **universe** (initial rigs plus each cohort's dormant
/// reserve), the time-zero activity masks, and the scenario's churn
/// timeline lowered to `goc_game` tracker [`Delta`]s.
///
/// This is the bridge the ISSUE's delta pipeline rides: the engine
/// executes the same timeline mechanistically
/// ([`Simulation::with_churn`](crate::Simulation)), while the learning
/// layer replays `deltas` through `MassTracker::apply_delta` /
/// `run_with_churn` with **no rebuild per population change**.
#[derive(Debug, Clone)]
pub struct ChurnUniverse {
    /// The static game over the full universe (dormant rigs and
    /// pre-launch coins included).
    pub game: Game,
    /// Time-zero configuration over the universe (dormant rigs point at
    /// their cohort's coin; their mass is not counted).
    pub start: Configuration,
    /// `miner_active[p]` at time zero.
    pub miner_active: Vec<bool>,
    /// `coin_active[c]` at time zero.
    pub coin_active: Vec<bool>,
    /// The churn timeline as `(seconds, delta)` pairs, time-ordered.
    /// Arrivals use best-response placement (`coin: None`); departures
    /// remove the youngest active rig of the cohort.
    pub deltas: Vec<(f64, Delta)>,
    /// Head-count of the initially active population.
    pub initial_miners: usize,
}

impl ChurnUniverse {
    /// Spreads the time-keyed deltas across the expected number of
    /// better-response steps: delta `i` fires after `(i + 1) × stride`
    /// steps with `stride = max(1, expected_steps / (deltas + 1))`,
    /// preserving timeline order. This is the **single** stride policy
    /// the `churn` experiment, the churn benches, and the
    /// `BENCH_4.json` recorder all share — change it here, not at a
    /// call site.
    pub fn step_deltas(&self, expected_steps: usize) -> Vec<(usize, Delta)> {
        stride_deltas(&self.deltas, expected_steps)
    }
}

/// The stride policy of [`ChurnUniverse::step_deltas`], usable on a
/// timeline lowered separately (see [`churn_timeline`]): delta `i`
/// fires after `(i + 1) × stride` steps with
/// `stride = max(1, expected_steps / (deltas + 1))`.
pub fn stride_deltas(deltas: &[(f64, Delta)], expected_steps: usize) -> Vec<(usize, Delta)> {
    let stride = (expected_steps / (deltas.len() + 1)).max(1);
    deltas
        .iter()
        .enumerate()
        .map(|(i, (_, delta))| ((i + 1) * stride, *delta))
        .collect()
}

/// Per-cohort universe id ranges: initial rigs first (in cohort order,
/// matching [`ScenarioSpec::expanded`]), then each churn entry's
/// dormant reserve appended after **all** initial rigs. Both
/// [`churn_universe`] and [`churn_timeline`] derive ids from this one
/// layout, so a timeline lowered standalone addresses exactly the
/// universe's miners.
fn universe_ranges(spec: &ScenarioSpec) -> (Vec<Range<usize>>, Vec<Range<usize>>) {
    let cohorts = match &spec.miners {
        MinerSpec::Cohorts(c) => c.as_slice(),
        _ => &[],
    };
    let mut initial_range = Vec::with_capacity(cohorts.len());
    let mut next = 0usize;
    for c in cohorts {
        initial_range.push(next..next + c.count);
        next += c.count;
    }
    let churn_cohorts = spec
        .churn
        .as_ref()
        .map(|c| c.cohorts.as_slice())
        .unwrap_or(&[]);
    let mut reserve_range = vec![0..0; cohorts.len()];
    for entry in churn_cohorts {
        reserve_range[entry.cohort] = next..next + entry.max_extra;
        next += entry.max_extra;
    }
    (initial_range, reserve_range)
}

/// Lowers **only** the scenario's churn timeline to tracker [`Delta`]s
/// over the universe id layout of [`churn_universe`] — the seed-varying
/// slice of a scenario. The universe itself (game, start, masks) does
/// not depend on the scenario seed, so a replica ensemble can share one
/// [`ChurnUniverse`] and re-lower just the timeline per seed.
///
/// # Errors
///
/// Propagates [`ScenarioSpec::validate`] failures.
pub fn churn_timeline(spec: &ScenarioSpec) -> Result<Vec<(f64, Delta)>, SpecError> {
    spec.validate()?;
    let (initial_range, reserve_range) = universe_ranges(spec);
    Ok(lower_timeline(spec, &initial_range, &reserve_range))
}

/// The timeline-lowering core shared by [`churn_universe`] and
/// [`churn_timeline`]: walks the effectiveness-filtered event stream,
/// mapping arrivals to the smallest dormant id of the cohort (departed
/// initial rigs are reused before the reserve) and departures to the
/// youngest active rig.
fn lower_timeline(
    spec: &ScenarioSpec,
    initial_range: &[Range<usize>],
    reserve_range: &[Range<usize>],
) -> Vec<(f64, Delta)> {
    let mut active_ids: Vec<BTreeSet<usize>> =
        initial_range.iter().map(|r| r.clone().collect()).collect();
    let mut dormant_ids: Vec<BTreeSet<usize>> =
        reserve_range.iter().map(|r| r.clone().collect()).collect();
    let timeline = spec
        .churn
        .as_ref()
        .map(|c| c.timeline(spec))
        .unwrap_or_default();
    let mut deltas = Vec::with_capacity(timeline.len());
    for (t, event) in timeline {
        match event {
            SimChurn::RigJoin { agent, .. } => {
                let Some(&id) = dormant_ids[agent].iter().next() else {
                    continue; // cannot happen: the timeline is effective
                };
                dormant_ids[agent].remove(&id);
                active_ids[agent].insert(id);
                deltas.push((
                    t,
                    Delta::InsertMiner {
                        miner: MinerId(id),
                        coin: None,
                    },
                ));
            }
            SimChurn::RigLeave { agent, .. } => {
                let Some(&id) = active_ids[agent].iter().next_back() else {
                    continue;
                };
                active_ids[agent].remove(&id);
                dormant_ids[agent].insert(id);
                deltas.push((t, Delta::RemoveMiner { miner: MinerId(id) }));
            }
            SimChurn::Coin { coin, live } => {
                let coin = CoinId(coin);
                deltas.push((
                    t,
                    if live {
                        Delta::LaunchCoin { coin }
                    } else {
                        Delta::RetireCoin { coin }
                    },
                ));
            }
        }
    }
    deltas
}

/// Lowers a scenario (churn and all) to the game-side universe view.
///
/// Hashrates and fiat weights are quantized to integers with
/// `resolution` relative precision, exactly like [`snapshot_game`]; the
/// reserve rigs share their cohort's hashrate class, so the universe
/// stays cohort-structured and the tracker's group index stays small.
///
/// # Errors
///
/// Propagates [`ScenarioSpec::validate`] failures and quantization
/// degeneracies.
pub fn churn_universe(spec: &ScenarioSpec, resolution: f64) -> Result<ChurnUniverse, SpecError> {
    spec.validate()?;
    // Initial rigs: the expanded per-rig population with its assignment.
    let expanded = spec.expanded();
    let mut rigs = expanded.miners.agents();
    expanded.assign(&mut rigs);
    let initial_miners = rigs.len();
    let k = spec.chains.len();

    // Per-cohort universe id ranges (see `universe_ranges` — the layout
    // `churn_timeline` also addresses).
    let cohorts = match &spec.miners {
        MinerSpec::Cohorts(c) => c.as_slice(),
        _ => &[],
    };
    let (initial_range, reserve_range) = universe_ranges(spec);
    let churn_cohorts = spec
        .churn
        .as_ref()
        .map(|c| c.cohorts.as_slice())
        .unwrap_or(&[]);
    let mut universe = rigs.clone();
    for entry in churn_cohorts {
        let cohort = &cohorts[entry.cohort];
        debug_assert_eq!(reserve_range[entry.cohort].start, universe.len());
        // Reserve rigs share the cohort's class and point at its coin;
        // they are dormant until an arrival activates them.
        let template = crate::agent::MinerAgent {
            hashrate: cohort.hashrate,
            coin: cohort.coin,
            eval_interval: cohort.eval_hours * 3600.0,
            inertia: cohort.inertia,
            cost_per_hash: cohort.cost_per_hash,
            active: false,
        };
        universe.extend(std::iter::repeat_n(template, entry.max_extra));
    }

    // Quantize the whole universe with one scale, as snapshot_game does.
    let weights: Vec<f64> = spec
        .chains
        .iter()
        .map(crate::spec::ChainSpec::weight)
        .collect();
    let max_weight = weights.iter().cloned().fold(f64::MIN, f64::max);
    let reward_scale = 1.0 / (max_weight * resolution);
    let rewards: Vec<u64> = weights
        .iter()
        .map(|w| ((w * reward_scale).round() as u64).max(1))
        .collect();
    let max_hash = universe.iter().map(|a| a.hashrate).fold(f64::MIN, f64::max);
    let power_scale = 1.0 / (max_hash * resolution);
    let powers: Vec<u64> = universe
        .iter()
        .map(|a| ((a.hashrate * power_scale).round() as u64).max(1))
        .collect();
    let system = System::new(&powers, k).map_err(|e| SpecError::Game(e.to_string()))?;
    let game = Game::new(
        system,
        Rewards::from_integers(&rewards).map_err(|e| SpecError::Game(e.to_string()))?,
    )
    .map_err(|e| SpecError::Game(e.to_string()))?;
    let start = Configuration::new(
        universe.iter().map(|a| CoinId(a.coin)).collect(),
        game.system(),
    )
    .map_err(|e| SpecError::Game(e.to_string()))?;

    let mut miner_active = vec![true; initial_miners];
    miner_active.resize(universe.len(), false);
    let coin_active = match &spec.churn {
        Some(churn) => churn.initial_live(k),
        None => vec![true; k],
    };

    // Lower the (effectiveness-filtered) timeline to tracker deltas —
    // the only seed-dependent piece of the universe.
    let deltas = lower_timeline(spec, &initial_range, &reserve_range);

    Ok(ChurnUniverse {
        game,
        start,
        miner_active,
        coin_active,
        deltas,
        initial_miners,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{btc_bch, BtcBchParams};

    #[test]
    fn weights_reflect_price_ratio() {
        let sim = btc_bch(BtcBchParams {
            num_miners: 20,
            ..BtcBchParams::default()
        });
        let w = coin_weights(&sim, 0.0);
        // Equal subsidies, prices 6000 vs 600: weight ratio 10:1.
        let ratio = w[0] / w[1];
        assert!((ratio - 10.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn churn_universe_replays_through_the_tracker() {
        use goc_game::MassTracker;
        let spec = crate::fixtures::scale_churn_scenario(80, 30.0, 11, 20);
        let universe = churn_universe(&spec, 1e-4).expect("universe builds");
        assert_eq!(universe.initial_miners, 80);
        assert_eq!(universe.game.system().num_coins(), 3);
        // Reserve rigs exist and start dormant.
        assert!(universe.game.system().num_miners() > 80);
        assert_eq!(
            universe.miner_active.iter().filter(|&&a| a).count(),
            universe.initial_miners
        );
        assert_eq!(universe.coin_active, vec![true, true, false]);
        // The whole delta stream applies cleanly — churn needs no
        // rebuild — and stays in lockstep with an undo rewind.
        let mut tracker = MassTracker::with_activity(
            &universe.game,
            &universe.start,
            &universe.miner_active,
            &universe.coin_active,
        )
        .expect("universe state is coherent");
        let mut times = Vec::new();
        for (t, delta) in &universe.deltas {
            tracker
                .apply_delta(*delta)
                .unwrap_or_else(|e| panic!("delta {delta} at {t}: {e}"));
            times.push(*t);
        }
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "time-ordered");
        // After the full timeline: upstart live, minor retired & empty.
        assert!(tracker.is_coin_active(goc_game::CoinId(2)));
        assert!(!tracker.is_coin_active(goc_game::CoinId(1)));
        assert_eq!(tracker.mass_of(goc_game::CoinId(1)), 0);
        while tracker.undo_delta().is_some() {}
        assert_eq!(tracker.config(), &universe.start);
        assert_eq!(tracker.active_miner_count(), universe.initial_miners);
    }

    #[test]
    fn standalone_timeline_matches_the_universe_lowering() {
        let spec = crate::fixtures::scale_churn_scenario(80, 30.0, 11, 20);
        let universe = churn_universe(&spec, 1e-4).expect("universe builds");
        let timeline = churn_timeline(&spec).expect("timeline lowers");
        assert_eq!(timeline, universe.deltas);
        assert_eq!(
            stride_deltas(&timeline, 400),
            universe.step_deltas(400),
            "stride policy agrees"
        );
        // Re-lowering under a different seed changes the timeline but
        // not the universe (the shared-snapshot contract of the replica
        // ensemble).
        let other = crate::fixtures::scale_churn_scenario(80, 30.0, 12, 20);
        let reuniverse = churn_universe(&other, 1e-4).expect("universe builds");
        assert_eq!(universe.start, reuniverse.start);
        assert_eq!(universe.miner_active, reuniverse.miner_active);
        assert_eq!(universe.coin_active, reuniverse.coin_active);
        assert_eq!(churn_timeline(&other).expect("lowers"), reuniverse.deltas);
    }

    #[test]
    fn churn_universe_without_churn_is_the_plain_population() {
        let spec = crate::fixtures::scale_cohort_scenario(40, 5.0, 1);
        let universe = churn_universe(&spec, 1e-4).expect("builds");
        assert_eq!(universe.game.system().num_miners(), 40);
        assert!(universe.deltas.is_empty());
        assert!(universe.miner_active.iter().all(|&a| a));
        assert!(universe.coin_active.iter().all(|&a| a));
    }

    #[test]
    fn snapshot_matches_agent_configuration() {
        let sim = btc_bch(BtcBchParams {
            num_miners: 25,
            ..BtcBchParams::default()
        });
        let (game, config) = snapshot_game(&sim, 0.0, 1e-4).unwrap();
        assert_eq!(game.system().num_miners(), 25);
        assert_eq!(game.system().num_coins(), 2);
        for (i, a) in sim.agents().iter().enumerate() {
            assert_eq!(config.coin_of(goc_game::MinerId(i)).index(), a.coin);
        }
        // Quantization preserves the 10:1 weight ratio.
        let f0 = game.reward_of(CoinId(0)).to_f64();
        let f1 = game.reward_of(CoinId(1)).to_f64();
        assert!((f0 / f1 - 10.0).abs() < 0.1);
    }
}
