//! Bridge between the mechanistic simulator and the static game.
//!
//! The paper's reward function `F(c)` abstracts "transaction rate,
//! transaction fees, and fiat exchange rate" (§1). For a simulated chain
//! those quantities are concrete: at difficulty-adjusted steady state a
//! chain pays `reward_per_block × price / target_spacing` fiat per
//! second, *independent of hashrate* — exactly a coin weight. This module
//! snapshots a running simulation into a `goc_game::Game`, letting the
//! cross-validation experiment compare mechanistic steady states with
//! game-theoretic equilibria.

use goc_game::{CoinId, Configuration, Game, GameError, Rewards, System};

use crate::engine::Simulation;

/// Fiat value per second each chain pays at steady state, given current
/// prices and next-block rewards.
pub fn coin_weights(sim: &Simulation, at: f64) -> Vec<f64> {
    sim.chains()
        .iter()
        .enumerate()
        .map(|(c, chain)| {
            let price = sim.market().price_of(c);
            chain.next_block_reward(at) as f64 * price / chain.params().target_spacing
        })
        .collect()
}

/// Snapshots the simulation into a static game plus the current
/// configuration of agents.
///
/// Hashrates and fiat weights are quantized to integers with `resolution`
/// relative precision (e.g. `1e-4` keeps four significant digits), as the
/// exact game requires integer units.
///
/// # Errors
///
/// Propagates validation errors if quantization degenerates (e.g. a zero
/// hashrate agent).
pub fn snapshot_game(
    sim: &Simulation,
    at: f64,
    resolution: f64,
) -> Result<(Game, Configuration), GameError> {
    let weights = coin_weights(sim, at);
    let max_weight = weights.iter().cloned().fold(f64::MIN, f64::max);
    let reward_scale = 1.0 / (max_weight * resolution);
    let rewards: Vec<u64> = weights
        .iter()
        .map(|w| ((w * reward_scale).round() as u64).max(1))
        .collect();

    let max_hash = sim
        .agents()
        .iter()
        .map(|a| a.hashrate)
        .fold(f64::MIN, f64::max);
    let power_scale = 1.0 / (max_hash * resolution);
    let powers: Vec<u64> = sim
        .agents()
        .iter()
        .map(|a| ((a.hashrate * power_scale).round() as u64).max(1))
        .collect();

    let system = System::new(&powers, rewards.len())?;
    let game = Game::new(system, Rewards::from_integers(&rewards)?)?;
    let assignment = sim.agents().iter().map(|a| CoinId(a.coin)).collect();
    let config = Configuration::new(assignment, game.system())?;
    Ok((game, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{btc_bch, BtcBchParams};

    #[test]
    fn weights_reflect_price_ratio() {
        let sim = btc_bch(BtcBchParams {
            num_miners: 20,
            ..BtcBchParams::default()
        });
        let w = coin_weights(&sim, 0.0);
        // Equal subsidies, prices 6000 vs 600: weight ratio 10:1.
        let ratio = w[0] / w[1];
        assert!((ratio - 10.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn snapshot_matches_agent_configuration() {
        let sim = btc_bch(BtcBchParams {
            num_miners: 25,
            ..BtcBchParams::default()
        });
        let (game, config) = snapshot_game(&sim, 0.0, 1e-4).unwrap();
        assert_eq!(game.system().num_miners(), 25);
        assert_eq!(game.system().num_coins(), 2);
        for (i, a) in sim.agents().iter().enumerate() {
            assert_eq!(config.coin_of(goc_game::MinerId(i)).index(), a.coin);
        }
        // Quantization preserves the 10:1 weight ratio.
        let f0 = game.reward_of(CoinId(0)).to_f64();
        let f1 = game.reward_of(CoinId(1)).to_f64();
        assert!((f0 / f1 - 10.0).abs() < 0.1);
    }
}
