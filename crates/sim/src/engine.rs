//! The discrete-event simulation engine.
//!
//! Couples `goc-chain` blockchains, a `goc-market` price process, and a
//! population of profit-switching [`MinerAgent`]s. Block arrivals are
//! exponential races; PoW memorylessness lets the engine *resample* a
//! coin's next block whenever its hashrate or difficulty changes (tracked
//! by a per-coin generation counter), which keeps the race exact under
//! migration.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use goc_chain::{mining, Blockchain};
use goc_market::{Market, WhalePlan};

use crate::agent::{MinerAgent, OracleKind};
use crate::event::{EventKind, EventQueue};
use crate::metrics::SimMetrics;
use crate::spec::SimChurn;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Simulation horizon in seconds.
    pub horizon: f64,
    /// Seconds between metric snapshots.
    pub snapshot_interval: f64,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Profitability oracle used by all agents.
    pub oracle: OracleKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: 30.0 * 86_400.0,
            snapshot_interval: 6.0 * 3_600.0,
            seed: 0,
            oracle: OracleKind::Difficulty,
        }
    }
}

/// The simulation state.
///
/// # Examples
///
/// ```
/// use goc_chain::{Blockchain, ChainParams};
/// use goc_market::{ConstantPrice, Market, Price};
/// use goc_sim::{MinerAgent, OracleKind, SimConfig, Simulation};
///
/// let chains = vec![Blockchain::new(ChainParams::bch_like("BCH", 6e5))];
/// let market = Market::new(vec![Price::Constant(ConstantPrice(1.0))]);
/// let agents = vec![MinerAgent { hashrate: 1_000.0, ..MinerAgent::default() }];
/// let mut sim = Simulation::new(chains, market, agents, SimConfig {
///     horizon: 86_400.0,
///     ..SimConfig::default()
/// });
/// let metrics = sim.run();
/// assert!(!metrics.is_empty());
/// ```
#[derive(Debug)]
pub struct Simulation {
    chains: Vec<Blockchain>,
    market: Market,
    agents: Vec<MinerAgent>,
    config: SimConfig,
    queue: EventQueue,
    rng: SmallRng,
    time: f64,
    /// Cached total hashrate per coin.
    coin_hashrate: Vec<f64>,
    /// Block-candidate generation per coin (stale candidates are ignored).
    generation: Vec<u64>,
    whales: Option<WhalePlan>,
    /// Which coins are currently live (dormant/retired coins pay
    /// `-inf` profitability and never attract hashrate).
    coin_live: Vec<bool>,
    /// The materialized churn timeline (`EventKind::Churn` indexes it).
    churn: Vec<SimChurn>,
    metrics: SimMetrics,
    finished: bool,
}

impl Simulation {
    /// Builds a simulation; agents' `coin` fields define the initial
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if the market does not price exactly the given chains, or
    /// if any agent mines a nonexistent coin.
    pub fn new(
        chains: Vec<Blockchain>,
        market: Market,
        agents: Vec<MinerAgent>,
        config: SimConfig,
    ) -> Self {
        assert_eq!(
            market.num_coins(),
            chains.len(),
            "market must price every chain"
        );
        let k = chains.len();
        let mut coin_hashrate = vec![0.0; k];
        for a in &agents {
            assert!(a.coin < k, "agent mines nonexistent coin {}", a.coin);
            if a.active {
                coin_hashrate[a.coin] += a.hashrate;
            }
        }
        let mut sim = Simulation {
            metrics: SimMetrics::new(k),
            generation: vec![0; k],
            rng: SmallRng::seed_from_u64(config.seed),
            queue: EventQueue::new(),
            time: 0.0,
            whales: None,
            coin_live: vec![true; k],
            churn: Vec::new(),
            finished: false,
            chains,
            market,
            agents,
            config,
            coin_hashrate,
        };
        for coin in 0..k {
            sim.reschedule_block(coin);
        }
        for (i, a) in sim.agents.iter().enumerate() {
            // Stagger first evaluations across one interval so agents do
            // not move in lockstep.
            let phase = a.eval_interval * (i as f64 + 1.0) / (sim.agents.len() as f64 + 1.0);
            sim.queue.schedule(phase, EventKind::Evaluate { miner: i });
        }
        sim.queue.schedule(0.0, EventKind::Snapshot);
        sim
    }

    /// Attaches a whale-fee injection plan executed during the run.
    pub fn with_whale_plan(mut self, plan: WhalePlan) -> Self {
        if let Some(next) = plan.pending().first() {
            self.queue.schedule(next.at_secs as f64, EventKind::Whale);
        }
        self.whales = Some(plan);
        self
    }

    /// Attaches a churn timeline (see `ChurnSpec::timeline`): the
    /// initial coin-liveness mask plus time-ordered rig and coin events,
    /// each scheduled as an engine event.
    ///
    /// # Panics
    ///
    /// Panics if the liveness mask does not cover the chains, or if any
    /// hashrate is currently assigned to a dormant coin (the spec layer
    /// validates both).
    pub fn with_churn(mut self, initial_live: Vec<bool>, timeline: Vec<(f64, SimChurn)>) -> Self {
        assert_eq!(
            initial_live.len(),
            self.chains.len(),
            "liveness mask must cover every chain"
        );
        for (c, &live) in initial_live.iter().enumerate() {
            assert!(
                live || self.coin_hashrate[c] == 0.0,
                "dormant coin {c} carries hashrate at time zero"
            );
        }
        self.coin_live = initial_live;
        for (i, (t, _)) in timeline.iter().enumerate() {
            self.queue.schedule(*t, EventKind::Churn { index: i });
        }
        self.churn = timeline.into_iter().map(|(_, e)| e).collect();
        self
    }

    /// Whether coin `c` is currently live.
    pub fn is_coin_live(&self, c: usize) -> bool {
        self.coin_live[c]
    }

    /// The chains under simulation.
    pub fn chains(&self) -> &[Blockchain] {
        &self.chains
    }

    /// The market.
    pub fn market(&self) -> &Market {
        &self.market
    }

    /// The agents (with their current coin assignments).
    pub fn agents(&self) -> &[MinerAgent] {
        &self.agents
    }

    /// Current total hashrate on `coin`.
    pub fn hashrate_of(&self, coin: usize) -> f64 {
        self.coin_hashrate[coin]
    }

    /// Collected metrics (final after [`Simulation::run`]).
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Overrides the profitability oracle (before calling
    /// [`Simulation::run`]).
    pub fn set_oracle(&mut self, oracle: OracleKind) {
        self.config.oracle = oracle;
    }

    /// Runs to the horizon and returns the metrics.
    pub fn run(&mut self) -> &SimMetrics {
        assert!(!self.finished, "simulation already ran");
        while let Some(event) = self.queue.pop() {
            if event.time > self.config.horizon {
                break;
            }
            self.time = event.time;
            self.metrics.total_events += 1;
            match event.kind {
                EventKind::BlockCandidate { coin, generation } => {
                    if generation == self.generation[coin] {
                        self.on_block(coin);
                    }
                }
                EventKind::Evaluate { miner } => self.on_evaluate(miner),
                EventKind::Snapshot => self.on_snapshot(),
                EventKind::Whale => self.on_whale(),
                EventKind::Churn { index } => self.on_churn(index),
            }
        }
        // Closing snapshot at the horizon.
        self.time = self.config.horizon;
        self.on_snapshot_only_record();
        self.finished = true;
        &self.metrics
    }

    fn reschedule_block(&mut self, coin: usize) {
        self.generation[coin] += 1;
        let interval = mining::sample_block_interval(
            &mut self.rng,
            self.coin_hashrate[coin],
            self.chains[coin].difficulty(),
        );
        self.queue.schedule(
            self.time + interval,
            EventKind::BlockCandidate {
                coin,
                generation: self.generation[coin],
            },
        );
    }

    fn on_block(&mut self, coin: usize) {
        self.market.advance_to(&mut self.rng, self.time);
        let on_coin: Vec<(usize, f64)> = self
            .agents
            .iter()
            .enumerate()
            .filter(|(_, a)| a.active && a.coin == coin)
            .map(|(i, a)| (i, a.hashrate))
            .collect();
        let Some(winner) = mining::sample_winner(&mut self.rng, &on_coin) else {
            return; // hashrate vanished since scheduling
        };
        self.chains[coin].mempool_mut().accrue(self.time);
        self.chains[coin].append_block(self.time, winner);
        // Difficulty may have changed: resample the race.
        self.reschedule_block(coin);
    }

    /// Current revenue-per-hash estimate for every coin (dormant and
    /// retired coins pay `-inf`, so no decision rule ever picks one).
    fn profitability(&self) -> Vec<f64> {
        (0..self.chains.len())
            .map(|c| {
                if !self.coin_live[c] {
                    return f64::NEG_INFINITY;
                }
                let chain = &self.chains[c];
                let price = self.market.price_of(c);
                let reward = chain.next_block_reward(self.time);
                match self.config.oracle {
                    OracleKind::Difficulty => {
                        mining::revenue_per_hash(reward, price, chain.difficulty())
                    }
                    OracleKind::Hashrate => {
                        let h = self.coin_hashrate[c];
                        if h <= 0.0 {
                            // An empty coin is infinitely attractive per
                            // hash; mirror the game's convention with a
                            // large finite value.
                            f64::MAX / 4.0
                        } else {
                            mining::revenue_per_hash(
                                reward,
                                price,
                                h * chain.params().target_spacing,
                            )
                        }
                    }
                }
            })
            .collect()
    }

    fn on_evaluate(&mut self, miner: usize) {
        self.market.advance_to(&mut self.rng, self.time);
        let mut profit = self.profitability();
        if self.config.oracle == OracleKind::Hashrate {
            // The game's better response prices the mover's own mass into
            // the destination: RPU after joining.
            let a = self.agents[miner];
            for (c, p) in profit.iter_mut().enumerate() {
                if c != a.coin && self.coin_live[c] {
                    let chain = &self.chains[c];
                    let h = self.coin_hashrate[c] + a.hashrate;
                    let reward = chain.next_block_reward(self.time);
                    *p = mining::revenue_per_hash(
                        reward,
                        self.market.price_of(c),
                        h * chain.params().target_spacing,
                    );
                }
            }
        }
        let agent = self.agents[miner];
        match agent.decide(&profit) {
            crate::agent::Decision::Switch(to) => {
                let from = agent.coin;
                self.agents[miner].coin = to;
                self.coin_hashrate[from] -= agent.hashrate;
                self.coin_hashrate[to] += agent.hashrate;
                self.metrics.total_switches += 1;
                self.reschedule_block(from);
                self.reschedule_block(to);
            }
            crate::agent::Decision::PowerOff => {
                self.agents[miner].active = false;
                self.coin_hashrate[agent.coin] -= agent.hashrate;
                self.reschedule_block(agent.coin);
            }
            crate::agent::Decision::PowerOn(to) => {
                self.agents[miner].active = true;
                self.agents[miner].coin = to;
                self.coin_hashrate[to] += agent.hashrate;
                self.metrics.total_switches += 1;
                self.reschedule_block(to);
            }
            crate::agent::Decision::Stay => {}
        }
        self.queue.schedule(
            self.time + agent.eval_interval,
            EventKind::Evaluate { miner },
        );
    }

    fn on_whale(&mut self) {
        let Some(plan) = &mut self.whales else {
            return;
        };
        for injection in plan.due(self.time as u64) {
            self.chains[injection.coin]
                .mempool_mut()
                .inject_whale(self.time, injection.fee);
        }
        if let Some(next) = plan.pending().first() {
            self.queue.schedule(next.at_secs as f64, EventKind::Whale);
        }
    }

    fn on_churn(&mut self, index: usize) {
        self.metrics.total_churn_events += 1;
        match self.churn[index] {
            SimChurn::RigJoin { agent, hashrate } => {
                self.agents[agent].hashrate += hashrate;
                if self.agents[agent].active {
                    let coin = self.agents[agent].coin;
                    self.coin_hashrate[coin] += hashrate;
                    self.reschedule_block(coin);
                }
            }
            SimChurn::RigLeave { agent, hashrate } => {
                let a = self.agents[agent];
                // The timeline is pre-filtered to effective events, but
                // stay total: never remove more than the cohort has.
                let removed = hashrate.min(a.hashrate);
                self.agents[agent].hashrate -= removed;
                if a.active {
                    self.coin_hashrate[a.coin] = (self.coin_hashrate[a.coin] - removed).max(0.0);
                    self.reschedule_block(a.coin);
                }
            }
            SimChurn::Coin { coin, live } => {
                self.coin_live[coin] = live;
                if live {
                    // A launched coin starts empty; the next evaluations
                    // discover it. Arm its block race.
                    self.reschedule_block(coin);
                    return;
                }
                // Retirement: forcibly relocate every active resident to
                // its best live coin (the sim-side mirror of the game's
                // forced best-response relocation), re-pricing after
                // each mover so congestion is felt.
                self.market.advance_to(&mut self.rng, self.time);
                let movers: Vec<usize> = self
                    .agents
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.active && a.coin == coin)
                    .map(|(i, _)| i)
                    .collect();
                for i in movers {
                    let mut profit = self.profitability();
                    if self.config.oracle == OracleKind::Hashrate {
                        // Post-join pricing, exactly as on_evaluate and
                        // the game-side forced_placement: the mover's
                        // own hashrate joins the destination's
                        // denominator.
                        let h_self = self.agents[i].hashrate;
                        for (c, p) in profit.iter_mut().enumerate() {
                            if self.coin_live[c] {
                                let chain = &self.chains[c];
                                let reward = chain.next_block_reward(self.time);
                                *p = mining::revenue_per_hash(
                                    reward,
                                    self.market.price_of(c),
                                    (self.coin_hashrate[c] + h_self)
                                        * chain.params().target_spacing,
                                );
                            }
                        }
                    }
                    let to = (0..self.chains.len())
                        .filter(|&c| self.coin_live[c])
                        .max_by(|&a, &b| profit[a].total_cmp(&profit[b]).then(b.cmp(&a)))
                        .expect("spec validation keeps at least one coin live");
                    let h = self.agents[i].hashrate;
                    self.agents[i].coin = to;
                    self.coin_hashrate[coin] = (self.coin_hashrate[coin] - h).max(0.0);
                    self.coin_hashrate[to] += h;
                    self.metrics.total_switches += 1;
                    self.reschedule_block(to);
                }
                self.reschedule_block(coin);
            }
        }
    }

    fn on_snapshot(&mut self) {
        self.market.advance_to(&mut self.rng, self.time);
        self.on_snapshot_only_record();
        self.queue.schedule(
            self.time + self.config.snapshot_interval,
            EventKind::Snapshot,
        );
    }

    fn on_snapshot_only_record(&mut self) {
        let k = self.chains.len();
        let prices = self.market.prices();
        let difficulties: Vec<f64> = self.chains.iter().map(|c| c.difficulty()).collect();
        let blocks: Vec<u64> = self.chains.iter().map(|c| c.height()).collect();
        let mut miners = vec![0usize; k];
        for a in &self.agents {
            if a.active {
                miners[a.coin] += 1;
            }
        }
        let hashrates = self.coin_hashrate.clone();
        self.metrics.record(
            self.time,
            &prices,
            &hashrates,
            &difficulties,
            &blocks,
            &miners,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_chain::ChainParams;
    use goc_market::{ConstantPrice, Price, ScheduledShock, WhaleBudget, WhaleInjection};

    fn two_coin_sim(seed: u64, horizon_days: f64) -> Simulation {
        // Stationary setup: coin A carries 9x the value of coin B, and
        // hashrate, difficulty, and prices all agree with that split.
        let h_total = 1000.0;
        let chains = vec![
            Blockchain::new(ChainParams::bch_like("A", 0.9 * h_total * 600.0)),
            Blockchain::new(ChainParams::bch_like("B", 0.1 * h_total * 600.0)),
        ];
        let market = Market::new(vec![
            Price::Constant(ConstantPrice(90.0)),
            Price::Constant(ConstantPrice(10.0)),
        ]);
        // 20 agents of 50 H/s each; start 18/2 ≈ the 90/10 difficulty split.
        let agents: Vec<MinerAgent> = (0..20)
            .map(|i| MinerAgent {
                hashrate: 50.0,
                coin: if i < 18 { 0 } else { 1 },
                eval_interval: 4.0 * 3600.0,
                inertia: 0.02,
                ..MinerAgent::default()
            })
            .collect();
        Simulation::new(
            chains,
            market,
            agents,
            SimConfig {
                horizon: horizon_days * 86_400.0,
                snapshot_interval: 6.0 * 3600.0,
                seed,
                oracle: OracleKind::Hashrate,
            },
        )
    }

    #[test]
    fn conservation_and_monotonicity() {
        let mut sim = two_coin_sim(1, 5.0);
        sim.run();
        for chain in sim.chains() {
            let minted: u64 = chain.blocks().iter().map(|b| b.reward()).sum();
            assert_eq!(minted, chain.total_revenue());
            for w in chain.blocks().windows(2) {
                assert!(w[0].timestamp <= w[1].timestamp);
            }
        }
        // Hashrate bookkeeping matches agent positions.
        for c in 0..2 {
            let expect: f64 = sim
                .agents()
                .iter()
                .filter(|a| a.active && a.coin == c)
                .map(|a| a.hashrate)
                .sum();
            assert!((sim.hashrate_of(c) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut sim = two_coin_sim(seed, 3.0);
            sim.run();
            (
                sim.chains()[0].height(),
                sim.chains()[1].height(),
                sim.metrics().total_switches,
                sim.metrics().total_events,
            )
        };
        assert_eq!(run(7), run(7));
        // Every block, evaluation, and snapshot is an event.
        let (h0, h1, _, events) = run(7);
        assert!(events >= h0 + h1, "events {events} < blocks {}", h0 + h1);
    }

    #[test]
    fn block_production_tracks_target_spacing() {
        let mut sim = two_coin_sim(2, 20.0);
        sim.run();
        // 20 days at 600 s target: ~2880 blocks per chain (fast DAA keeps
        // spacing near target through migrations).
        for chain in sim.chains() {
            let blocks = chain.height() as f64;
            assert!(
                (blocks - 2880.0).abs() < 300.0,
                "{}: {blocks} blocks vs ~2880 expected",
                chain.params().name
            );
        }
    }

    #[test]
    fn a_price_shock_attracts_hashrate() {
        let h_total = 1000.0;
        let chains = vec![
            Blockchain::new(ChainParams::bch_like("A", 0.5 * h_total * 600.0)),
            Blockchain::new(ChainParams::bch_like("B", 0.5 * h_total * 600.0)),
        ];
        let mut market = Market::new(vec![
            Price::Constant(ConstantPrice(10.0)),
            Price::Constant(ConstantPrice(10.0)),
        ]);
        // Coin B triples in price on day 5.
        market.schedule_shock(ScheduledShock {
            at: 5.0 * 86_400.0,
            coin: 1,
            factor: 3.0,
        });
        let agents: Vec<MinerAgent> = (0..20)
            .map(|i| MinerAgent {
                hashrate: 50.0,
                coin: i % 2,
                eval_interval: 3600.0,
                inertia: 0.02,
                ..MinerAgent::default()
            })
            .collect();
        let mut sim = Simulation::new(
            chains,
            market,
            agents,
            SimConfig {
                horizon: 15.0 * 86_400.0,
                snapshot_interval: 6.0 * 3600.0,
                seed: 3,
                // The lagging-difficulty oracle herds identical agents
                // (all-in/all-out oscillation; see `btc_bch_oscillating`),
                // which makes any share comparison seed-flaky. The
                // congestion-priced oracle gives the stable
                // marginal-miner response this test is about.
                oracle: OracleKind::Hashrate,
            },
        );
        let metrics = sim.run().clone();
        // Compare mean shares over windows (robust to snapshot timing).
        let window_mean = |lo_day: f64, hi_day: f64| {
            let idx: Vec<usize> = metrics
                .times
                .iter()
                .enumerate()
                .filter(|(_, &t)| t >= lo_day * 86_400.0 && t < hi_day * 86_400.0)
                .map(|(i, _)| i)
                .collect();
            idx.iter()
                .map(|&i| metrics.hashrate_share(1, i))
                .sum::<f64>()
                / idx.len() as f64
        };
        let before = window_mean(0.0, 5.0);
        let after = window_mean(10.0, 15.0);
        assert!(
            after > before + 0.1,
            "shock did not attract hashrate: mean share {before} -> {after}"
        );
    }

    #[test]
    fn whale_plan_fees_reach_blocks() {
        let mut plan = WhalePlan::new(WhaleBudget::new(10_000_000));
        assert!(plan.add(WhaleInjection {
            at_secs: 86_400,
            coin: 1,
            fee: 10_000_000,
        }));
        let mut sim = two_coin_sim(4, 3.0).with_whale_plan(plan);
        sim.run();
        let whale_fees: u64 = sim.chains()[1].blocks().iter().map(|b| b.fees).sum();
        assert!(
            whale_fees >= 9_000_000,
            "whale fees {whale_fees} not collected"
        );
    }

    #[test]
    #[should_panic(expected = "already ran")]
    fn run_is_single_shot() {
        let mut sim = two_coin_sim(5, 0.1);
        sim.run();
        sim.run();
    }

    #[test]
    fn price_crash_causes_capitulation_and_recovery() {
        // One chain, constant difficulty pressure via fast DAA; price
        // crashes below electricity cost on day 5 and recovers on day 10.
        // Expensive rigs must power off during the trough and return.
        let chains = vec![Blockchain::new(ChainParams::bch_like("A", 600_000.0))];
        let mut market = Market::new(vec![Price::Constant(ConstantPrice(1.0))]);
        market.schedule_shock(ScheduledShock {
            at: 5.0 * 86_400.0,
            coin: 0,
            factor: 0.05, // -95%
        });
        market.schedule_shock(ScheduledShock {
            at: 10.0 * 86_400.0,
            coin: 0,
            factor: 20.0, // back to 1.0
        });
        // Revenue per hash at steady state: subsidy * price / (H * 600)
        // = 12.5e6 / 6e5 ≈ 20.8 at price 1. Electricity at 5.0 is safe
        // normally, hopeless at price 0.05 (revenue ≈ 1).
        let agents: Vec<MinerAgent> = (0..10)
            .map(|i| MinerAgent {
                hashrate: 100.0,
                coin: 0,
                eval_interval: 3600.0 * (1.0 + i as f64 / 10.0),
                cost_per_hash: 5.0,
                ..MinerAgent::default()
            })
            .collect();
        let mut sim = Simulation::new(
            chains,
            market,
            agents,
            SimConfig {
                horizon: 15.0 * 86_400.0,
                snapshot_interval: 6.0 * 3600.0,
                seed: 8,
                oracle: OracleKind::Hashrate,
            },
        );
        let m = sim.run().clone();
        let idx = |day: f64| {
            m.times
                .iter()
                .position(|&t| t >= day * 86_400.0)
                .unwrap_or(m.len() - 1)
        };
        assert_eq!(m.miners[0][idx(4.0)], 10, "everyone online pre-crash");
        // Capitulation is *partial*: as rigs power off, the survivors'
        // anticipated margins recover (difficulty tracks the smaller
        // hashrate), so the exodus stops at the break-even population —
        // here revenue/hash ≥ cost needs H ≤ 208, i.e. ~2 rigs.
        let trough = m.miners[0][idx(8.0)];
        assert!(
            (1..=3).contains(&trough),
            "expected partial capitulation, got {trough} rigs online"
        );
        assert_eq!(
            m.miners[0][m.len() - 1],
            10,
            "everyone back online after recovery"
        );
        // Hashrate bookkeeping matches the active set throughout.
        assert_eq!(m.hashrates[0][idx(8.0)], trough as f64 * 100.0);
        assert!(m.hashrates[0][m.len() - 1] > 0.0);
    }
}
