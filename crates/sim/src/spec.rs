//! Declarative, serializable scenario specifications.
//!
//! A [`ScenarioSpec`] is plain data — chains, a market process, a miner
//! population, shocks, an optional whale campaign, the oracle, and the
//! horizon — that [`ScenarioSpec::build`]s into a runnable
//! [`Simulation`], and (via [`ScenarioSpec::game`]) snapshots into a
//! static `goc_game::Game` for the equilibrium/design machinery. Every
//! spec round-trips through serde JSON, so **new workloads are spec
//! files, not new binaries**: `goc simulate --spec scenario.json` runs
//! one from disk, and `goc sweep --spec sweep.json` fans a list of
//! registered experiment runs across cores.
//!
//! The paper scenarios ship as presets: [`ScenarioSpec::btc_bch`]
//! (Figure 1), [`ScenarioSpec::asymmetric`] (unequal-value two-coin
//! market), [`ScenarioSpec::whale_fee`] (fee-based manipulation, §1),
//! and [`ScenarioSpec::attack`] (the 51%-steering market of §6).
//!
//! ```
//! use goc_sim::spec::ScenarioSpec;
//!
//! let mut spec = ScenarioSpec::btc_bch();
//! spec.horizon_days = 3.0;
//! spec.shocks[0].day = 1.0;
//! spec.shocks[1].day = 2.0;
//!
//! // Round-trips as data …
//! let json = serde_json::to_string(&spec).unwrap();
//! let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
//! assert_eq!(spec, back);
//!
//! // … and builds into a runnable simulation.
//! let mut sim = back.build().unwrap();
//! assert_eq!(sim.run().num_coins(), 2);
//! ```

use serde::{Deserialize, Serialize};

use goc_chain::{Blockchain, ChainParams, FeeParams, SubsidySchedule};
use goc_game::{Configuration, Game};
use goc_market::{
    Gbm, JumpDiffusion, Market, MeanReverting, Price, ScheduledShock, WhaleBudget, WhaleInjection,
    WhalePlan,
};

use crate::agent::{MinerAgent, OracleKind};
use crate::bridge;
use crate::engine::{SimConfig, Simulation};
use crate::scenario::DAY;

/// Errors from validating or building a [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec names no chains.
    NoChains,
    /// The miner population is empty.
    NoMiners,
    /// A shock, whale, or assignment refers to a coin index out of range.
    BadCoin {
        /// The offending index.
        coin: usize,
        /// Number of chains in the spec.
        chains: usize,
    },
    /// A numeric field is out of its legal range.
    BadValue(&'static str),
    /// Snapshotting into a static game failed.
    Game(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NoChains => write!(f, "scenario has no chains"),
            SpecError::NoMiners => write!(f, "scenario has no miners"),
            SpecError::BadCoin { coin, chains } => {
                write!(
                    f,
                    "coin index {coin} out of range (scenario has {chains} chains)"
                )
            }
            SpecError::BadValue(what) => write!(f, "invalid value for {what}"),
            SpecError::Game(e) => write!(f, "cannot snapshot a static game: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// The difficulty-rule flavour of a chain (a named preset over
/// `goc_chain::DifficultyRule`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChainFlavor {
    /// Bitcoin: 600 s spacing, 2016-block epoch retarget, 4x clamp.
    BitcoinLike,
    /// Bitcoin Cash (post-DAA): 600 s spacing, 144-block moving average.
    BchLike,
    /// Historical BCH Aug–Nov 2017: epoch retarget plus the one-sided
    /// Emergency Difficulty Adjustment.
    EdaLike,
}

/// How a chain's initial difficulty is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DifficultyInit {
    /// Start at the stationary point of the *initially assigned*
    /// hashrate: `max(H_chain, 1) × target_spacing`.
    SteadyState,
    /// An explicit difficulty (expected hashes per block).
    Explicit(f64),
}

/// A price process, declaratively.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PriceSpec {
    /// A constant price.
    Constant {
        /// The price.
        value: f64,
    },
    /// Geometric Brownian motion (drift per day, volatility per √day).
    Gbm {
        /// Initial price.
        initial: f64,
        /// Drift per day.
        drift: f64,
        /// Volatility per √day.
        volatility: f64,
    },
    /// GBM plus compound-Poisson jumps.
    JumpDiffusion {
        /// Initial price.
        initial: f64,
        /// Drift per day.
        drift: f64,
        /// Volatility per √day.
        volatility: f64,
        /// Expected jumps per day.
        jump_rate: f64,
        /// Mean log jump size.
        jump_mean: f64,
        /// Log jump size standard deviation.
        jump_sd: f64,
    },
    /// Mean-reverting log-price.
    MeanReverting {
        /// Initial price.
        initial: f64,
        /// Long-run mean price.
        mean: f64,
        /// Reversion speed per day.
        speed: f64,
        /// Volatility per √day.
        volatility: f64,
    },
}

impl PriceSpec {
    fn build(&self) -> Result<Price, SpecError> {
        let positive = |v: f64| {
            if v > 0.0 && v.is_finite() {
                Ok(v)
            } else {
                Err(SpecError::BadValue("price (must be positive and finite)"))
            }
        };
        // `1e999` in a spec file parses to +inf; a non-finite drift or
        // volatility silently poisons every downstream price with NaN,
        // so reject it here.
        let finite = |v: f64, what: &'static str| {
            if v.is_finite() {
                Ok(v)
            } else {
                Err(SpecError::BadValue(what))
            }
        };
        let non_negative = |v: f64, what: &'static str| {
            if v >= 0.0 && v.is_finite() {
                Ok(v)
            } else {
                Err(SpecError::BadValue(what))
            }
        };
        Ok(match *self {
            PriceSpec::Constant { value } => {
                Price::Constant(goc_market::ConstantPrice(positive(value)?))
            }
            PriceSpec::Gbm {
                initial,
                drift,
                volatility,
            } => Price::Gbm(Gbm::new(
                positive(initial)?,
                finite(drift, "price drift (must be finite)")?,
                non_negative(volatility, "price volatility (must be finite and ≥ 0)")?,
            )),
            PriceSpec::JumpDiffusion {
                initial,
                drift,
                volatility,
                jump_rate,
                jump_mean,
                jump_sd,
            } => Price::JumpDiffusion(JumpDiffusion::new(
                Gbm::new(
                    positive(initial)?,
                    finite(drift, "price drift (must be finite)")?,
                    non_negative(volatility, "price volatility (must be finite and ≥ 0)")?,
                ),
                non_negative(jump_rate, "jump rate (must be finite and ≥ 0)")?,
                finite(jump_mean, "jump mean (must be finite)")?,
                non_negative(jump_sd, "jump sd (must be finite and ≥ 0)")?,
            )),
            PriceSpec::MeanReverting {
                initial,
                mean,
                speed,
                volatility,
            } => Price::MeanReverting(MeanReverting::new(
                positive(initial)?,
                positive(mean)?,
                non_negative(speed, "reversion speed (must be finite and ≥ 0)")?,
                non_negative(volatility, "price volatility (must be finite and ≥ 0)")?,
            )),
        })
    }

    /// The process's price at time zero.
    pub fn initial(&self) -> f64 {
        match *self {
            PriceSpec::Constant { value } => value,
            PriceSpec::Gbm { initial, .. }
            | PriceSpec::JumpDiffusion { initial, .. }
            | PriceSpec::MeanReverting { initial, .. } => initial,
        }
    }
}

/// One chain of the scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainSpec {
    /// Display name ("BTC", "BCH", …).
    pub name: String,
    /// Difficulty-rule preset.
    pub flavor: ChainFlavor,
    /// Block subsidy in base units.
    pub subsidy: u64,
    /// Blocks per halving; `0` keeps the subsidy constant.
    pub halving_interval: u64,
    /// Organic fee accrual per second (base units).
    pub fee_rate: f64,
    /// Per-block fee collection cap.
    pub max_fees_per_block: u64,
    /// Initial difficulty policy.
    pub initial_difficulty: DifficultyInit,
    /// The chain's fiat price process.
    pub price: PriceSpec,
}

impl ChainSpec {
    /// A constant-subsidy chain at the steady-state difficulty with an
    /// uncapped zero-rate fee market — the common experimental setup.
    pub fn simple<S: Into<String>>(
        name: S,
        flavor: ChainFlavor,
        subsidy: u64,
        price: PriceSpec,
    ) -> Self {
        ChainSpec {
            name: name.into(),
            flavor,
            subsidy,
            halving_interval: 0,
            fee_rate: 0.0,
            max_fees_per_block: u64::MAX,
            initial_difficulty: DifficultyInit::SteadyState,
            price,
        }
    }

    fn params(&self, assigned_hashrate: f64) -> ChainParams {
        let difficulty = match self.initial_difficulty {
            DifficultyInit::SteadyState => assigned_hashrate.max(1.0) * 600.0,
            DifficultyInit::Explicit(d) => d,
        };
        let base = match self.flavor {
            ChainFlavor::BitcoinLike => ChainParams::bitcoin_like(&self.name, difficulty),
            ChainFlavor::BchLike => ChainParams::bch_like(&self.name, difficulty),
            ChainFlavor::EdaLike => ChainParams::bch_eda_like(&self.name, difficulty),
        };
        ChainParams {
            subsidy: if self.halving_interval == 0 {
                SubsidySchedule::constant(self.subsidy)
            } else {
                SubsidySchedule::new(self.subsidy, self.halving_interval)
            },
            fees: FeeParams {
                fee_rate: self.fee_rate,
                max_fees_per_block: self.max_fees_per_block,
            },
            ..base
        }
    }

    /// Fiat value this chain pays per second at steady state — the coin
    /// weight `F(c)` of the static game.
    pub fn weight(&self) -> f64 {
        self.subsidy as f64 * self.price.initial() / 600.0
    }
}

/// One miner **cohort**: `count` rigs sharing a hashrate class and a
/// switching strategy (the same evaluation cadence, inertia, and power
/// cost). The simulator aggregates a cohort into a *single* agent whose
/// hashrate is the cohort total, so event volume scales with the number
/// of distinct behaviours rather than head-count — the device that makes
/// 100k-miner scenarios run in seconds. [`ScenarioSpec::expanded`]
/// lazily materializes the individual rigs when a per-miner view is
/// needed (e.g. the static-game snapshot of [`ScenarioSpec::game`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortSpec {
    /// Display name ("asic-farms", "hobbyists", …).
    pub name: String,
    /// Number of rigs in the cohort (head-count).
    pub count: usize,
    /// Hashrate of **one** rig; the aggregated agent mines with
    /// `count × hashrate`.
    pub hashrate: f64,
    /// Initial coin (used by [`Assignment::Explicit`]).
    pub coin: usize,
    /// Hours between profitability evaluations.
    pub eval_hours: f64,
    /// Relative gain required to switch.
    pub inertia: f64,
    /// Electricity cost per hash (0 disables capitulation).
    pub cost_per_hash: f64,
}

impl CohortSpec {
    fn aggregated(&self) -> MinerAgent {
        MinerAgent {
            hashrate: self.count as f64 * self.hashrate,
            coin: self.coin,
            eval_interval: self.eval_hours * 3600.0,
            inertia: self.inertia,
            cost_per_hash: self.cost_per_hash,
            active: true,
        }
    }
}

/// The name the paper-adjacent literature uses for this layer: a miner
/// population description. Cohort populations are the
/// [`MinerSpec::Cohorts`] variant.
pub type MinerPopulation = MinerSpec;

/// The miner population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MinerSpec {
    /// Zipf-skewed hashrates `scale / (i+1)^exponent` with
    /// deterministically heterogeneous frictions: agent `i` (with
    /// `spread = i/count`) evaluates every
    /// `eval_hours × (0.5 + spread)` hours and needs a relative gain of
    /// `inertia × (0.5 + 1.5 × spread)` to move — identical agents herd,
    /// heterogeneous ones produce the marginal-miner response.
    Zipf {
        /// Number of agents.
        count: usize,
        /// Zipf skew (1.0 = classic).
        exponent: f64,
        /// Hashrate of the largest agent.
        scale: f64,
        /// Base evaluation interval in hours.
        eval_hours: f64,
        /// Base switching inertia (relative gain to move).
        inertia: f64,
        /// Electricity cost per hash (0 disables capitulation).
        cost_per_hash: f64,
    },
    /// Equal hashrates with linear staggering of frictions: agent `i`
    /// evaluates every `eval_hours × 3600 + eval_stagger_secs × i`
    /// seconds with inertia `inertia + inertia_step × i`.
    Uniform {
        /// Number of agents.
        count: usize,
        /// Per-agent hashrate.
        hashrate: f64,
        /// Base evaluation interval in hours.
        eval_hours: f64,
        /// Additional per-agent stagger in seconds.
        eval_stagger_secs: f64,
        /// Base switching inertia.
        inertia: f64,
        /// Additional per-agent inertia.
        inertia_step: f64,
        /// Electricity cost per hash.
        cost_per_hash: f64,
    },
    /// A fully explicit population (`coin` fields set the initial
    /// configuration when the assignment is [`Assignment::Explicit`]).
    Explicit(Vec<MinerAgent>),
    /// Aggregated hashrate-class cohorts: each entry simulates as one
    /// agent of the cohort's total hashrate (see [`CohortSpec`]).
    Cohorts(Vec<CohortSpec>),
}

impl MinerSpec {
    pub(crate) fn agents(&self) -> Vec<MinerAgent> {
        match self {
            MinerSpec::Zipf {
                count,
                exponent,
                scale,
                eval_hours,
                inertia,
                cost_per_hash,
            } => {
                let n = *count as f64;
                (0..*count)
                    .map(|i| {
                        let spread = i as f64 / n.max(1.0);
                        MinerAgent {
                            hashrate: scale / ((i + 1) as f64).powf(*exponent),
                            coin: 0,
                            eval_interval: eval_hours * 3600.0 * (0.5 + spread),
                            inertia: inertia * (0.5 + 1.5 * spread),
                            cost_per_hash: *cost_per_hash,
                            active: true,
                        }
                    })
                    .collect()
            }
            MinerSpec::Uniform {
                count,
                hashrate,
                eval_hours,
                eval_stagger_secs,
                inertia,
                inertia_step,
                cost_per_hash,
            } => (0..*count)
                .map(|i| MinerAgent {
                    hashrate: *hashrate,
                    coin: 0,
                    eval_interval: eval_hours * 3600.0 + eval_stagger_secs * i as f64,
                    inertia: inertia + inertia_step * i as f64,
                    cost_per_hash: *cost_per_hash,
                    active: true,
                })
                .collect(),
            MinerSpec::Explicit(agents) => agents.clone(),
            MinerSpec::Cohorts(cohorts) => cohorts.iter().map(CohortSpec::aggregated).collect(),
        }
    }

    /// Number of miners the spec describes (head-count: cohorts count
    /// every rig, not the aggregated agents). Saturates instead of
    /// wrapping, so absurd cohort counts cannot slip under validation's
    /// head-count cap in release builds.
    pub fn count(&self) -> usize {
        match self {
            MinerSpec::Zipf { count, .. } | MinerSpec::Uniform { count, .. } => *count,
            MinerSpec::Explicit(agents) => agents.len(),
            MinerSpec::Cohorts(cohorts) => cohorts
                .iter()
                .fold(0usize, |total, c| total.saturating_add(c.count)),
        }
    }

    /// Number of *simulated* agents: equals [`MinerSpec::count`] except
    /// for cohorts, which aggregate into one agent each.
    pub fn num_agents(&self) -> usize {
        match self {
            MinerSpec::Cohorts(cohorts) => cohorts.len(),
            other => other.count(),
        }
    }
}

/// How agents are initially distributed over the chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Assignment {
    /// Fill every coin `c ≥ 1` up to (≈5% above) its value share
    /// `F_c / ΣF`, taking the smallest agents first; the rest stay on
    /// coin 0. This is the pre-shock stationary point of Figure 1.
    ValueShare,
    /// Agent `i` mines coin `i mod k`.
    Modulo,
    /// Everyone starts on one coin.
    AllOn(usize),
    /// Agents `0..boundary` mine coin 0; the rest mine coin 1.
    Split {
        /// First agent index assigned to coin 1.
        boundary: usize,
    },
    /// Respect the `coin` fields of an [`MinerSpec::Explicit`]
    /// population.
    Explicit,
}

/// A scheduled multiplicative price shock, in days.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShockSpec {
    /// Day the shock fires.
    pub day: f64,
    /// Target coin.
    pub coin: usize,
    /// Multiplicative factor (3.2 = pump, 0.55 = retrace).
    pub factor: f64,
}

/// A whale fee campaign: periodic injections on one coin over a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhaleSpec {
    /// Total fee budget (base units).
    pub budget: u64,
    /// Target coin.
    pub coin: usize,
    /// Fee per injection.
    pub fee: u64,
    /// First injection day.
    pub start_day: u64,
    /// Campaign end day (exclusive).
    pub end_day: u64,
    /// Hours between injections.
    pub every_hours: u64,
}

impl WhaleSpec {
    fn plan(&self) -> WhalePlan {
        let mut plan = WhalePlan::new(WhaleBudget::new(self.budget));
        let mut t = self.start_day * 86_400;
        // Clamp to hourly *before* converting to seconds so the step can
        // never drop below what validate()'s injection-count cap assumed.
        let step = self.every_hours.max(1) * 3600;
        while t < self.end_day * 86_400 {
            if !plan.add(WhaleInjection {
                at_secs: t,
                coin: self.coin,
                fee: self.fee,
            }) {
                break;
            }
            t += step;
        }
        plan
    }
}

/// Per-cohort miner churn: rigs of the cohort's hashrate class arrive
/// and depart as Poisson processes (exponential interarrivals, sampled
/// deterministically from the scenario seed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CohortChurnSpec {
    /// Index into the [`MinerSpec::Cohorts`] population.
    pub cohort: usize,
    /// Expected rig arrivals per day.
    pub arrivals_per_day: f64,
    /// Expected rig departures per day.
    pub departures_per_day: f64,
    /// Size of the cohort's dormant reserve: at most this many rigs
    /// beyond the initial count can be online simultaneously (arrivals
    /// beyond it are dropped). Bounds the game universe.
    pub max_extra: usize,
}

/// What a scheduled coin-lifecycle event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoinLifecycle {
    /// The coin goes live. A coin whose **first** scheduled event is a
    /// launch starts the scenario dormant (pre-launch).
    Launch,
    /// The coin is delisted; its miners are forcibly relocated.
    Retire,
}

/// One scheduled coin-lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoinEventSpec {
    /// Day the event fires.
    pub day: f64,
    /// Target coin.
    pub coin: usize,
    /// Launch or retire.
    pub event: CoinLifecycle,
}

/// Dynamic-population churn: arrival/departure processes per cohort plus
/// scheduled coin launches and retirements. The engine executes these as
/// simulation events ([`crate::Simulation`]); the bridge
/// ([`crate::bridge::churn_universe`]) lowers the same timeline to
/// `goc_game` tracker deltas over a pre-declared miner/coin universe.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Per-cohort arrival/departure processes (requires a
    /// [`MinerSpec::Cohorts`] population when nonempty).
    pub cohorts: Vec<CohortChurnSpec>,
    /// Scheduled coin launches and retirements.
    pub coins: Vec<CoinEventSpec>,
}

/// One materialized churn event of a simulation run, in engine terms
/// (cohort rigs resolved to the aggregated agent and its per-rig
/// hashrate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimChurn {
    /// One rig of `hashrate` joins aggregated agent `agent`.
    RigJoin {
        /// Aggregated-agent index (equals the cohort index).
        agent: usize,
        /// Per-rig hashrate.
        hashrate: f64,
    },
    /// One rig of `hashrate` leaves aggregated agent `agent`.
    RigLeave {
        /// Aggregated-agent index (equals the cohort index).
        agent: usize,
        /// Per-rig hashrate.
        hashrate: f64,
    },
    /// Coin `coin` goes live (`live`) or is delisted (`!live`).
    Coin {
        /// Coin index.
        coin: usize,
        /// New liveness.
        live: bool,
    },
}

impl ChurnSpec {
    /// Whether the spec schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.cohorts.is_empty() && self.coins.is_empty()
    }

    /// The initial coin-liveness mask: a coin starts dormant iff its
    /// first scheduled event is a [`CoinLifecycle::Launch`].
    pub fn initial_live(&self, num_coins: usize) -> Vec<bool> {
        let mut live = vec![true; num_coins];
        let mut seen = vec![false; num_coins];
        let mut events: Vec<&CoinEventSpec> = self.coins.iter().collect();
        events.sort_by(|a, b| a.day.total_cmp(&b.day));
        for e in events {
            if e.coin < num_coins && !seen[e.coin] {
                seen[e.coin] = true;
                if e.event == CoinLifecycle::Launch {
                    live[e.coin] = false;
                }
            }
        }
        live
    }

    /// Materializes the churn timeline: exponential interarrivals per
    /// cohort process (deterministic in `seed`), truncated at the
    /// horizon, merged with the scheduled coin events and sorted by
    /// time. Arrivals beyond a cohort's `max_extra` reserve are dropped
    /// here, so the engine and the game bridge see the same stream.
    pub fn timeline(&self, spec: &ScenarioSpec) -> Vec<(f64, SimChurn)> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let horizon_secs = spec.horizon_days * 86_400.0;
        let cohorts = match &spec.miners {
            MinerSpec::Cohorts(c) => c.as_slice(),
            _ => &[],
        };
        let mut out: Vec<(f64, SimChurn)> = Vec::new();
        for (i, churn) in self.cohorts.iter().enumerate() {
            let Some(cohort) = cohorts.get(churn.cohort) else {
                continue; // validate() rejects this; stay total anyway
            };
            let mut rng = SmallRng::seed_from_u64(
                spec.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
            );
            let mut sample = |rate_per_day: f64, join: bool, out: &mut Vec<(f64, SimChurn)>| {
                if rate_per_day <= 0.0 {
                    return;
                }
                let mut t = 0.0f64;
                loop {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += -u.ln() / rate_per_day * 86_400.0;
                    if t >= horizon_secs {
                        break;
                    }
                    let kind = if join {
                        SimChurn::RigJoin {
                            agent: churn.cohort,
                            hashrate: cohort.hashrate,
                        }
                    } else {
                        SimChurn::RigLeave {
                            agent: churn.cohort,
                            hashrate: cohort.hashrate,
                        }
                    };
                    out.push((t, kind));
                }
            };
            sample(churn.arrivals_per_day, true, &mut out);
            sample(churn.departures_per_day, false, &mut out);
        }
        for e in &self.coins {
            out.push((
                e.day * 86_400.0,
                SimChurn::Coin {
                    coin: e.coin,
                    live: e.event == CoinLifecycle::Launch,
                },
            ));
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Make the stream *effective* on the merged, time-ordered view:
        // arrivals beyond `initial + max_extra` concurrent rigs and
        // departures from an empty cohort are dropped here, so the
        // engine and the game-side bridge can both apply every surviving
        // event verbatim and stay in exact agreement.
        let mut active: Vec<usize> = cohorts.iter().map(|c| c.count).collect();
        let mut cap = active.clone();
        for churn in &self.cohorts {
            if let Some(c) = cap.get_mut(churn.cohort) {
                *c += churn.max_extra;
            }
        }
        out.retain(|(_, event)| match *event {
            SimChurn::RigJoin { agent, .. } => {
                if active[agent] < cap[agent] {
                    active[agent] += 1;
                    true
                } else {
                    false
                }
            }
            SimChurn::RigLeave { agent, .. } => {
                if active[agent] > 0 {
                    active[agent] -= 1;
                    true
                } else {
                    false
                }
            }
            SimChurn::Coin { .. } => true,
        });
        out
    }
}

/// A complete, serializable scenario description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and sweep output).
    pub name: String,
    /// Simulation horizon in days.
    pub horizon_days: f64,
    /// Hours between metric snapshots.
    pub snapshot_hours: f64,
    /// RNG seed (runs are deterministic given the spec).
    pub seed: u64,
    /// The profitability oracle all agents use.
    pub oracle: OracleKind,
    /// The chains under simulation (at least one).
    pub chains: Vec<ChainSpec>,
    /// The miner population.
    pub miners: MinerSpec,
    /// Initial distribution of agents over chains.
    pub assignment: Assignment,
    /// Scheduled price shocks.
    pub shocks: Vec<ShockSpec>,
    /// Optional whale fee campaign.
    pub whale: Option<WhaleSpec>,
    /// Optional dynamic-population churn (miner arrivals/departures and
    /// coin launches/retirements).
    pub churn: Option<ChurnSpec>,
}

impl ScenarioSpec {
    /// Validates index ranges and numeric sanity.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.chains.is_empty() {
            return Err(SpecError::NoChains);
        }
        if self.miners.count() == 0 {
            return Err(SpecError::NoMiners);
        }
        if !(self.horizon_days > 0.0 && self.horizon_days.is_finite()) {
            return Err(SpecError::BadValue("horizon_days (must be positive)"));
        }
        if !(self.snapshot_hours > 0.0 && self.snapshot_hours.is_finite()) {
            return Err(SpecError::BadValue("snapshot_hours (must be positive)"));
        }
        let k = self.chains.len();
        let bad_coin = |coin: usize| SpecError::BadCoin { coin, chains: k };
        for shock in &self.shocks {
            if shock.coin >= k {
                return Err(bad_coin(shock.coin));
            }
            if !(shock.factor > 0.0 && shock.factor.is_finite()) {
                return Err(SpecError::BadValue("shock factor (must be positive)"));
            }
            if !(shock.day >= 0.0 && shock.day.is_finite()) {
                return Err(SpecError::BadValue(
                    "shock day (must be finite and non-negative)",
                ));
            }
        }
        if let Some(whale) = &self.whale {
            if whale.coin >= k {
                return Err(bad_coin(whale.coin));
            }
            if whale.fee == 0 {
                // A zero fee never depletes the budget, so the plan loop
                // would run once per step over the whole campaign window
                // with nothing to stop it.
                return Err(SpecError::BadValue("whale fee (must be positive)"));
            }
            if whale
                .end_day
                .checked_mul(86_400)
                .and_then(|end| whale.start_day.checked_mul(86_400).map(|_| end))
                .is_none()
            {
                return Err(SpecError::BadValue(
                    "whale campaign days (overflow converting to seconds)",
                ));
            }
            let steps = whale
                .end_day
                .saturating_sub(whale.start_day)
                .saturating_mul(24)
                / whale.every_hours.max(1);
            if steps > 10_000_000 {
                return Err(SpecError::BadValue(
                    "whale campaign (more than 10M scheduled injections)",
                ));
            }
        }
        for chain in &self.chains {
            if let DifficultyInit::Explicit(d) = chain.initial_difficulty {
                if !(d > 0.0 && d.is_finite()) {
                    return Err(SpecError::BadValue("initial difficulty (must be positive)"));
                }
            }
            // Surface bad price parameters at validation time, not mid-build.
            chain.price.build()?;
        }
        if let MinerSpec::Cohorts(cohorts) = &self.miners {
            for cohort in cohorts {
                if cohort.count == 0 {
                    return Err(SpecError::BadValue("cohort count (must be ≥ 1)"));
                }
                if cohort.coin >= k {
                    return Err(bad_coin(cohort.coin));
                }
                if !(cohort.hashrate > 0.0 && cohort.hashrate.is_finite()) {
                    return Err(SpecError::BadValue("cohort hashrate (must be positive)"));
                }
                if !(cohort.inertia >= 0.0 && cohort.inertia.is_finite()) {
                    return Err(SpecError::BadValue(
                        "cohort inertia (must be finite and ≥ 0)",
                    ));
                }
                if !(cohort.cost_per_hash >= 0.0 && cohort.cost_per_hash.is_finite()) {
                    return Err(SpecError::BadValue(
                        "cohort cost per hash (must be finite and ≥ 0)",
                    ));
                }
            }
            // `expanded()` materializes one agent per rig; cap the
            // head-count so a typo cannot request a terabyte of agents.
            if self.miners.count() > 10_000_000 {
                return Err(SpecError::BadValue(
                    "cohort head-count (more than 10M miners)",
                ));
            }
        }
        if let Some(churn) = &self.churn {
            let cohorts_len = match &self.miners {
                MinerSpec::Cohorts(c) => c.len(),
                _ if churn.cohorts.is_empty() => 0,
                _ => {
                    return Err(SpecError::BadValue(
                        "cohort churn (needs a Cohorts miner population)",
                    ))
                }
            };
            let mut seen_cohorts = std::collections::BTreeSet::new();
            for c in &churn.cohorts {
                if c.cohort >= cohorts_len {
                    return Err(SpecError::BadValue("churn cohort index (out of range)"));
                }
                if !seen_cohorts.insert(c.cohort) {
                    return Err(SpecError::BadValue(
                        "churn cohort index (appears more than once)",
                    ));
                }
                for rate in [c.arrivals_per_day, c.departures_per_day] {
                    if !(rate >= 0.0 && rate.is_finite()) {
                        return Err(SpecError::BadValue("churn rate (must be finite and ≥ 0)"));
                    }
                }
                // The reserve becomes real universe miners in the game
                // bridge; cap it like the cohort head-count.
                if c.max_extra > 1_000_000 {
                    return Err(SpecError::BadValue(
                        "churn reserve (more than 1M extra rigs)",
                    ));
                }
                let expected = (c.arrivals_per_day + c.departures_per_day) * self.horizon_days;
                if expected > 10_000_000.0 {
                    return Err(SpecError::BadValue(
                        "churn rates (more than 10M expected events)",
                    ));
                }
            }
            // Replay the coin lifecycle chronologically: launches only of
            // dormant coins, retirements only of live ones, and at least
            // one live coin at every instant.
            let mut live = churn.initial_live(k);
            for e in &churn.coins {
                if e.coin >= k {
                    return Err(bad_coin(e.coin));
                }
                if !(e.day >= 0.0 && e.day.is_finite()) {
                    return Err(SpecError::BadValue(
                        "coin event day (must be finite and non-negative)",
                    ));
                }
                // The engine drops events past the horizon while the
                // game-side bridge would still lower them — reject the
                // divergence up front.
                if e.day > self.horizon_days {
                    return Err(SpecError::BadValue("coin event day (beyond the horizon)"));
                }
            }
            let mut events: Vec<&CoinEventSpec> = churn.coins.iter().collect();
            events.sort_by(|a, b| a.day.total_cmp(&b.day));
            if live.iter().all(|&l| !l) {
                return Err(SpecError::BadValue(
                    "coin events (no coin is live at day 0)",
                ));
            }
            for e in events {
                match e.event {
                    CoinLifecycle::Launch => {
                        if live[e.coin] {
                            return Err(SpecError::BadValue("coin launch (coin is already live)"));
                        }
                        live[e.coin] = true;
                    }
                    CoinLifecycle::Retire => {
                        if !live[e.coin] {
                            return Err(SpecError::BadValue("coin retirement (coin is not live)"));
                        }
                        if live.iter().filter(|&&l| l).count() == 1 {
                            return Err(SpecError::BadValue(
                                "coin retirement (would leave no live coin)",
                            ));
                        }
                        live[e.coin] = false;
                    }
                }
            }
            // No agent may start the scenario on a pre-launch coin.
            let initial_live = churn.initial_live(k);
            let mut agents = self.miners.agents();
            self.assign(&mut agents);
            if agents.iter().any(|a| !initial_live[a.coin]) {
                return Err(SpecError::BadValue(
                    "initial assignment (an agent starts on a pre-launch coin)",
                ));
            }
        }
        // Agent timing must move the event clock forward: a non-positive
        // evaluation interval would reschedule the same instant forever
        // and hang the simulation.
        for agent in self.miners.agents() {
            if !(agent.eval_interval > 0.0 && agent.eval_interval.is_finite()) {
                return Err(SpecError::BadValue(
                    "miner eval interval (must be positive)",
                ));
            }
            if !(agent.hashrate > 0.0 && agent.hashrate.is_finite()) {
                return Err(SpecError::BadValue("miner hashrate (must be positive)"));
            }
        }
        if self.assignment == Assignment::ValueShare {
            let total_weight: f64 = self.chains.iter().map(ChainSpec::weight).sum();
            if !(total_weight > 0.0 && total_weight.is_finite()) {
                return Err(SpecError::BadValue(
                    "ValueShare assignment (needs a positive total coin weight)",
                ));
            }
        }
        match self.assignment {
            Assignment::AllOn(coin) if coin >= k => return Err(bad_coin(coin)),
            Assignment::Split { .. } if k < 2 => {
                return Err(SpecError::BadValue("Split assignment (needs ≥ 2 chains)"))
            }
            Assignment::Explicit => match &self.miners {
                MinerSpec::Explicit(agents) => {
                    if let Some(a) = agents.iter().find(|a| a.coin >= k) {
                        return Err(bad_coin(a.coin));
                    }
                }
                // Cohorts carry their own validated `coin` fields.
                MinerSpec::Cohorts(_) => {}
                _ => {
                    return Err(SpecError::BadValue(
                        "Explicit assignment (needs an Explicit or Cohorts miner population)",
                    ));
                }
            },
            _ => {}
        }
        Ok(())
    }

    /// Computes the initial per-agent coin assignment.
    pub(crate) fn assign(&self, agents: &mut [MinerAgent]) {
        let k = self.chains.len();
        match self.assignment {
            Assignment::Explicit => {}
            Assignment::AllOn(coin) => {
                for a in agents.iter_mut() {
                    a.coin = coin;
                }
            }
            Assignment::Modulo => {
                for (i, a) in agents.iter_mut().enumerate() {
                    a.coin = i % k;
                }
            }
            Assignment::Split { boundary } => {
                for (i, a) in agents.iter_mut().enumerate() {
                    a.coin = usize::from(i >= boundary);
                }
            }
            Assignment::ValueShare => {
                let total_weight: f64 = self.chains.iter().map(ChainSpec::weight).sum();
                let total_hash: f64 = agents.iter().map(|a| a.hashrate).sum();
                for a in agents.iter_mut() {
                    a.coin = 0;
                }
                let mut assigned = vec![false; agents.len()];
                for c in 1..k {
                    let share = self.chains[c].weight() / total_weight;
                    let mut acc = 0.0;
                    // Smallest agents first (populations are built in
                    // descending hashrate order), skipping any that
                    // would overshoot the ≈5% tolerance band.
                    for i in (0..agents.len()).rev() {
                        if !assigned[i] && acc + agents[i].hashrate <= share * total_hash * 1.05 {
                            acc += agents[i].hashrate;
                            assigned[i] = true;
                            agents[i].coin = c;
                        }
                    }
                }
            }
        }
    }

    /// Builds the runnable simulation.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioSpec::validate`] failures.
    pub fn build(&self) -> Result<Simulation, SpecError> {
        self.validate()?;
        let mut agents = self.miners.agents();
        self.assign(&mut agents);

        let k = self.chains.len();
        let mut chain_hash = vec![0.0f64; k];
        for a in &agents {
            chain_hash[a.coin] += a.hashrate;
        }
        let chains: Vec<Blockchain> = self
            .chains
            .iter()
            .zip(&chain_hash)
            .map(|(spec, &h)| Blockchain::new(spec.params(h)))
            .collect();

        let mut market = Market::new(
            self.chains
                .iter()
                .map(|c| c.price.build())
                .collect::<Result<Vec<_>, _>>()?,
        );
        for shock in &self.shocks {
            market.schedule_shock(ScheduledShock {
                at: shock.day * DAY,
                coin: shock.coin,
                factor: shock.factor,
            });
        }

        let sim = Simulation::new(
            chains,
            market,
            agents,
            SimConfig {
                horizon: self.horizon_days * DAY,
                snapshot_interval: self.snapshot_hours * 3600.0,
                seed: self.seed,
                oracle: self.oracle,
            },
        );
        let sim = match &self.whale {
            Some(whale) => sim.with_whale_plan(whale.plan()),
            None => sim,
        };
        Ok(match &self.churn {
            Some(churn) if !churn.is_empty() => {
                sim.with_churn(churn.initial_live(k), churn.timeline(self))
            }
            _ => sim,
        })
    }

    /// The same scenario with every cohort **lazily expanded** into its
    /// individual rigs: the miner population becomes
    /// [`MinerSpec::Explicit`] (one agent per rig at the per-rig
    /// hashrate, on the coin the cohort was assigned) and the assignment
    /// becomes [`Assignment::Explicit`]. Non-cohort specs come back
    /// unchanged.
    ///
    /// Aggregation is a simulation device; expansion is the per-miner
    /// ground truth, which is why [`ScenarioSpec::game`] snapshots the
    /// expanded population.
    pub fn expanded(&self) -> ScenarioSpec {
        let MinerSpec::Cohorts(cohorts) = &self.miners else {
            return self.clone();
        };
        let mut aggregated = self.miners.agents();
        self.assign(&mut aggregated);
        let mut individuals = Vec::with_capacity(self.miners.count());
        for (cohort, agent) in cohorts.iter().zip(&aggregated) {
            individuals.extend((0..cohort.count).map(|_| MinerAgent {
                hashrate: cohort.hashrate,
                coin: agent.coin,
                eval_interval: agent.eval_interval,
                inertia: agent.inertia,
                cost_per_hash: agent.cost_per_hash,
                active: true,
            }));
        }
        ScenarioSpec {
            miners: MinerSpec::Explicit(individuals),
            assignment: Assignment::Explicit,
            // Cohort churn processes do not survive expansion (the
            // per-rig population has no cohorts to index); the coin
            // lifecycle does. The game-side churn view is
            // `bridge::churn_universe`, which expands *and* lowers the
            // full timeline.
            churn: self.churn.as_ref().map(|c| ChurnSpec {
                cohorts: Vec::new(),
                coins: c.coins.clone(),
            }),
            ..self.clone()
        }
    }

    /// Snapshots the scenario's time-zero state into a static
    /// `goc_game::Game` plus the initial configuration — the exact-game
    /// view of this market (weights `subsidy × price / spacing`).
    ///
    /// Cohorts are expanded first ([`ScenarioSpec::expanded`]), so the
    /// snapshot always has one game miner per rig regardless of how the
    /// population was described.
    ///
    /// # Errors
    ///
    /// Propagates build failures and game-quantization errors.
    pub fn game(&self) -> Result<(Game, Configuration), SpecError> {
        // Validate *before* expanding: the cohort head-count cap must
        // guard the per-rig allocation expansion performs.
        self.validate()?;
        let sim = self.expanded().build()?;
        bridge::snapshot_game(&sim, 0.0, 1e-4).map_err(|e| SpecError::Game(e.to_string()))
    }

    // -----------------------------------------------------------------
    // Presets
    // -----------------------------------------------------------------

    /// The Figure 1 BTC/BCH migration scenario with the paper-calibrated
    /// defaults (see [`crate::scenario::BtcBchParams`]).
    pub fn btc_bch() -> Self {
        crate::scenario::BtcBchParams::default().to_spec()
    }

    /// An asymmetric two-coin market: equal prices but a 5:1 subsidy
    /// split, so chain B sustains ≈1/6 of the hashrate — the restricted
    /// "minority chain" setting of §6's discussion.
    pub fn asymmetric() -> Self {
        let total_hash = 6_000.0;
        ScenarioSpec {
            name: "asymmetric".into(),
            horizon_days: 30.0,
            snapshot_hours: 6.0,
            seed: 99,
            oracle: OracleKind::Hashrate,
            chains: vec![
                ChainSpec {
                    initial_difficulty: DifficultyInit::Explicit(total_hash * (5.0 / 6.0) * 600.0),
                    ..ChainSpec::simple(
                        "A",
                        ChainFlavor::BchLike,
                        10_000_000,
                        PriceSpec::Constant { value: 1.0 },
                    )
                },
                ChainSpec {
                    initial_difficulty: DifficultyInit::Explicit(total_hash * (1.0 / 6.0) * 600.0),
                    ..ChainSpec::simple(
                        "B",
                        ChainFlavor::BchLike,
                        2_000_000,
                        PriceSpec::Constant { value: 1.0 },
                    )
                },
            ],
            miners: MinerSpec::Uniform {
                count: 60,
                hashrate: 100.0,
                eval_hours: 3.0,
                eval_stagger_secs: 60.0,
                inertia: 0.02,
                inertia_step: 0.001,
                cost_per_hash: 0.0,
            },
            assignment: Assignment::Split { boundary: 50 },
            shocks: Vec::new(),
            whale: None,
            churn: None,
        }
    }

    /// The whale-fee manipulation scenario (§1, citing Liao & Katz): the
    /// asymmetric market plus a fee campaign on the minority chain over
    /// days 10–20.
    pub fn whale_fee() -> Self {
        ScenarioSpec {
            name: "whale_fee".into(),
            whale: Some(WhaleSpec {
                budget: 2_000_000_000,
                coin: 1,
                fee: 4_000_000,
                start_day: 10,
                end_day: 20,
                every_hours: 2,
            }),
            ..ScenarioSpec::asymmetric()
        }
    }

    /// The 51%-steering market of §6: seven miners with strictly
    /// distinct hashrates over two coins with an 8:5 value split — the
    /// market whose snapshot game ([`ScenarioSpec::game`]) drives the
    /// reward-design attack experiments.
    pub fn attack() -> Self {
        let powers = [900.0, 700.0, 500.0, 300.0, 200.0, 150.0, 100.0];
        let agents: Vec<MinerAgent> = powers
            .iter()
            .enumerate()
            .map(|(i, &hashrate)| MinerAgent {
                hashrate,
                coin: 0,
                eval_interval: 3600.0 * (1.0 + i as f64 / 7.0),
                inertia: 0.01,
                cost_per_hash: 0.0,
                active: true,
            })
            .collect();
        ScenarioSpec {
            name: "attack".into(),
            horizon_days: 20.0,
            snapshot_hours: 6.0,
            seed: 5,
            oracle: OracleKind::Hashrate,
            chains: vec![
                ChainSpec::simple(
                    "victim",
                    ChainFlavor::BchLike,
                    1_000_000,
                    PriceSpec::Constant { value: 8_000.0 },
                ),
                ChainSpec::simple(
                    "refuge",
                    ChainFlavor::BchLike,
                    1_000_000,
                    PriceSpec::Constant { value: 5_000.0 },
                ),
            ],
            miners: MinerSpec::Explicit(agents),
            assignment: Assignment::ValueShare,
            shocks: Vec::new(),
            whale: None,
            churn: None,
        }
    }

    /// All built-in presets, by name.
    pub fn presets() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::btc_bch(),
            ScenarioSpec::asymmetric(),
            ScenarioSpec::whale_fee(),
            ScenarioSpec::attack(),
        ]
    }

    /// Looks up a preset by its [`ScenarioSpec::name`].
    pub fn preset(name: &str) -> Option<ScenarioSpec> {
        ScenarioSpec::presets().into_iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_validates_builds_and_round_trips() {
        for spec in ScenarioSpec::presets() {
            spec.validate().expect("preset validates");
            let json = serde_json::to_string_pretty(&spec).expect("serializes");
            let back: ScenarioSpec = serde_json::from_str(&json).expect("parses");
            assert_eq!(spec, back, "{} did not round-trip", spec.name);
            let sim = back.build().expect("builds");
            assert_eq!(sim.chains().len(), spec.chains.len());
            assert_eq!(sim.agents().len(), spec.miners.count());
        }
    }

    #[test]
    fn btc_bch_spec_matches_the_scenario_builder() {
        let params = crate::scenario::BtcBchParams {
            num_miners: 40,
            ..crate::scenario::BtcBchParams::default()
        };
        let via_spec = params.to_spec().build().expect("builds");
        let direct = crate::scenario::btc_bch(params);
        assert_eq!(via_spec.agents(), direct.agents());
        assert_eq!(via_spec.chains()[0].params(), direct.chains()[0].params());
        assert_eq!(via_spec.chains()[1].params(), direct.chains()[1].params());
        assert_eq!(via_spec.market().prices(), direct.market().prices());
    }

    #[test]
    fn validation_catches_bad_indices() {
        let mut spec = ScenarioSpec::btc_bch();
        spec.shocks[0].coin = 9;
        assert_eq!(
            spec.validate(),
            Err(SpecError::BadCoin { coin: 9, chains: 2 })
        );

        let mut spec = ScenarioSpec::asymmetric();
        spec.whale = Some(WhaleSpec {
            budget: 1,
            coin: 5,
            fee: 1,
            start_day: 0,
            end_day: 1,
            every_hours: 1,
        });
        assert!(matches!(spec.validate(), Err(SpecError::BadCoin { .. })));

        let mut spec = ScenarioSpec::attack();
        spec.chains.clear();
        assert_eq!(spec.validate(), Err(SpecError::NoChains));
    }

    #[test]
    fn validation_catches_hang_inducing_timing() {
        // A zero evaluation interval would reschedule the same instant
        // forever; the spec layer must reject it instead of hanging.
        let mut spec = ScenarioSpec::asymmetric();
        spec.miners = MinerSpec::Uniform {
            count: 5,
            hashrate: 100.0,
            eval_hours: 0.0,
            eval_stagger_secs: 0.0,
            inertia: 0.0,
            inertia_step: 0.0,
            cost_per_hash: 0.0,
        };
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));

        let mut spec = ScenarioSpec::attack();
        if let MinerSpec::Explicit(agents) = &mut spec.miners {
            agents[0].eval_interval = 0.0;
        }
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));

        let mut spec = ScenarioSpec::asymmetric();
        spec.chains[0].initial_difficulty = DifficultyInit::Explicit(0.0);
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));

        let mut spec = ScenarioSpec::attack();
        if let MinerSpec::Explicit(agents) = &mut spec.miners {
            agents[0].hashrate = 0.0;
        }
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));
    }

    #[test]
    fn validation_catches_degenerate_whales_and_prices() {
        // Zero-fee whales never deplete their budget (unbounded plan).
        let mut spec = ScenarioSpec::whale_fee();
        spec.whale.as_mut().expect("preset has a whale").fee = 0;
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));

        // Campaign windows that overflow seconds, or schedule an absurd
        // number of injections, are rejected up front.
        let mut spec = ScenarioSpec::whale_fee();
        spec.whale.as_mut().expect("whale").end_day = u64::MAX;
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));
        let mut spec = ScenarioSpec::whale_fee();
        spec.whale.as_mut().expect("whale").end_day = 300_000_000_000;
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));

        // `1e999` in a spec file parses to +inf; validation must reject
        // it instead of letting NaN prices poison the metrics.
        let mut spec = ScenarioSpec::btc_bch();
        spec.chains[0].price = PriceSpec::Gbm {
            initial: 6000.0,
            drift: 0.0,
            volatility: f64::INFINITY,
        };
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));
        let mut spec = ScenarioSpec::btc_bch();
        spec.chains[0].price = PriceSpec::Gbm {
            initial: 6000.0,
            drift: f64::NAN,
            volatility: 0.01,
        };
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));
    }

    #[test]
    fn attack_spec_snapshots_into_a_designable_game() {
        let (game, config) = ScenarioSpec::attack().game().expect("snapshots");
        assert_eq!(game.system().num_miners(), 7);
        assert_eq!(game.system().num_coins(), 2);
        assert!(game.system().powers_distinct());
        // The 8:5 value split survives quantization.
        let ratio = game.reward_of(goc_game::CoinId(0)).to_f64()
            / game.reward_of(goc_game::CoinId(1)).to_f64();
        assert!((ratio - 1.6).abs() < 0.05, "ratio {ratio}");
        assert_eq!(config.len(), 7);
    }

    fn cohort_fixture(total: usize) -> ScenarioSpec {
        let classes = [
            ("farms", 4_000.0, 2.0, 0.01),
            ("pools", 800.0, 3.0, 0.02),
            ("hobby", 120.0, 5.0, 0.05),
            ("dorm", 40.0, 8.0, 0.08),
        ];
        let per = total / classes.len();
        ScenarioSpec {
            name: "cohort_fixture".into(),
            horizon_days: 5.0,
            snapshot_hours: 6.0,
            seed: 11,
            oracle: OracleKind::Hashrate,
            chains: vec![
                ChainSpec::simple(
                    "A",
                    ChainFlavor::BchLike,
                    5_000_000,
                    PriceSpec::Constant { value: 2.0 },
                ),
                ChainSpec::simple(
                    "B",
                    ChainFlavor::BchLike,
                    5_000_000,
                    PriceSpec::Constant { value: 1.0 },
                ),
            ],
            miners: MinerSpec::Cohorts(
                classes
                    .iter()
                    .enumerate()
                    .map(|(i, &(name, hashrate, eval_hours, inertia))| CohortSpec {
                        name: name.into(),
                        count: per,
                        hashrate,
                        coin: i % 2,
                        eval_hours,
                        inertia,
                        cost_per_hash: 0.0,
                    })
                    .collect(),
            ),
            assignment: Assignment::Explicit,
            shocks: Vec::new(),
            whale: None,
            churn: None,
        }
    }

    #[test]
    fn cohorts_aggregate_into_one_agent_each() {
        let spec = cohort_fixture(4_000);
        spec.validate().expect("cohort spec validates");
        assert_eq!(spec.miners.count(), 4_000);
        assert_eq!(spec.miners.num_agents(), 4);
        let sim = spec.build().expect("builds");
        assert_eq!(sim.agents().len(), 4);
        // Aggregated hashrate equals the cohort totals, per coin.
        assert_eq!(sim.hashrate_of(0), 1_000.0 * (4_000.0 + 120.0));
        assert_eq!(sim.hashrate_of(1), 1_000.0 * (800.0 + 40.0));
        // The spec round-trips as data like every other population.
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn cohort_expansion_matches_hand_built_individuals() {
        let spec = cohort_fixture(400);
        let expanded = spec.expanded();
        assert_eq!(expanded.miners.count(), 400);
        assert_eq!(expanded.miners.num_agents(), 400);
        assert_eq!(expanded.assignment, Assignment::Explicit);
        // Expansion is the identity on non-cohort specs.
        assert_eq!(expanded.expanded(), expanded);
        assert_eq!(ScenarioSpec::attack().expanded(), ScenarioSpec::attack());
        // Hand-build the same individuals and compare the populations.
        let MinerSpec::Cohorts(cohorts) = &spec.miners else {
            unreachable!()
        };
        let mut by_hand = Vec::new();
        for c in cohorts {
            for _ in 0..c.count {
                by_hand.push(MinerAgent {
                    hashrate: c.hashrate,
                    coin: c.coin,
                    eval_interval: c.eval_hours * 3600.0,
                    inertia: c.inertia,
                    cost_per_hash: c.cost_per_hash,
                    active: true,
                });
            }
        }
        assert_eq!(expanded.miners, MinerSpec::Explicit(by_hand));
    }

    #[test]
    fn cohort_game_snapshot_equals_expanded_individuals() {
        let spec = cohort_fixture(400);
        let (game, config) = spec.game().expect("cohort spec snapshots");
        let (game2, config2) = spec.expanded().game().expect("expanded spec snapshots");
        assert_eq!(game.system(), game2.system());
        assert_eq!(game.rewards(), game2.rewards());
        assert_eq!(config, config2);
        // One game miner per rig, not per cohort.
        assert_eq!(game.system().num_miners(), 400);
        // Deterministic per seed: a second snapshot is identical.
        let (game3, config3) = spec.game().expect("snapshots again");
        assert_eq!(game.system(), game3.system());
        assert_eq!(config, config3);
    }

    #[test]
    fn cohort_validation_catches_bad_fields() {
        let base = cohort_fixture(400);
        let cohorts = |spec: &ScenarioSpec| match &spec.miners {
            MinerSpec::Cohorts(c) => c.clone(),
            _ => unreachable!(),
        };

        let mut spec = base.clone();
        let mut c = cohorts(&base);
        c[0].count = 0;
        spec.miners = MinerSpec::Cohorts(c);
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));

        let mut spec = base.clone();
        let mut c = cohorts(&base);
        c[1].coin = 7;
        spec.miners = MinerSpec::Cohorts(c);
        assert_eq!(
            spec.validate(),
            Err(SpecError::BadCoin { coin: 7, chains: 2 })
        );

        let mut spec = base.clone();
        let mut c = cohorts(&base);
        c[2].hashrate = 0.0;
        spec.miners = MinerSpec::Cohorts(c);
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));

        let mut spec = base.clone();
        let mut c = cohorts(&base);
        c[3].inertia = f64::NAN;
        spec.miners = MinerSpec::Cohorts(c);
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));

        let mut spec = base.clone();
        let mut c = cohorts(&base);
        c[0].count = 100_000_000;
        spec.miners = MinerSpec::Cohorts(c);
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));

        let mut spec = base.clone();
        spec.miners = MinerSpec::Cohorts(Vec::new());
        assert_eq!(spec.validate(), Err(SpecError::NoMiners));
    }

    #[test]
    fn churn_validation_catches_bad_specs() {
        let base = crate::fixtures::scale_churn_scenario(80, 30.0, 1, 10);
        base.validate().expect("fixture validates");

        // Churn cohorts demand a Cohorts population.
        let mut spec = base.clone();
        spec.miners = MinerSpec::Uniform {
            count: 10,
            hashrate: 100.0,
            eval_hours: 2.0,
            eval_stagger_secs: 0.0,
            inertia: 0.01,
            inertia_step: 0.0,
            cost_per_hash: 0.0,
        };
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));

        // Out-of-range and duplicate cohort indices.
        let mut spec = base.clone();
        spec.churn.as_mut().unwrap().cohorts[0].cohort = 99;
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));
        let mut spec = base.clone();
        spec.churn.as_mut().unwrap().cohorts[1].cohort = 0;
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));

        // Degenerate rates and oversized reserves.
        let mut spec = base.clone();
        spec.churn.as_mut().unwrap().cohorts[0].arrivals_per_day = f64::NAN;
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));
        let mut spec = base.clone();
        spec.churn.as_mut().unwrap().cohorts[0].max_extra = 10_000_000;
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));

        // Coin-lifecycle coherence: launching a live coin, retiring a
        // dormant one, retiring the last live coin.
        let mut spec = base.clone();
        spec.churn.as_mut().unwrap().coins.push(CoinEventSpec {
            day: 5.0,
            coin: 0,
            event: CoinLifecycle::Launch,
        });
        // Coin 0's first event is now a launch, so it starts dormant —
        // and the initial assignment places agents on it.
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));
        let mut spec = base.clone();
        spec.churn.as_mut().unwrap().coins.push(CoinEventSpec {
            day: 29.0,
            coin: 2,
            event: CoinLifecycle::Retire,
        });
        spec.churn.as_mut().unwrap().coins.push(CoinEventSpec {
            day: 29.5,
            coin: 0,
            event: CoinLifecycle::Retire,
        });
        assert!(matches!(spec.validate(), Err(SpecError::BadValue(_))));
        let mut spec = base.clone();
        spec.churn.as_mut().unwrap().coins[1].coin = 9;
        assert!(matches!(spec.validate(), Err(SpecError::BadCoin { .. })));

        // A churny spec still round-trips as data.
        let json = serde_json::to_string(&base).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(base, back);
    }

    #[test]
    fn whale_plan_is_generated_within_budget() {
        let spec = ScenarioSpec::whale_fee();
        let whale = spec.whale.expect("preset has a whale");
        let plan = whale.plan();
        assert!(!plan.pending().is_empty());
        let planned: u64 = plan.pending().iter().map(|i| i.fee).sum();
        assert!(planned <= whale.budget);
        // Whale fees actually reach the chain during a run.
        let mut sim = spec.build().expect("builds");
        sim.run();
        let fees: u64 = sim.chains()[1].blocks().iter().map(|b| b.fees).sum();
        assert!(fees > 0, "whale fees never landed");
    }

    #[test]
    fn value_share_assignment_tracks_weights() {
        let spec = ScenarioSpec::btc_bch();
        let sim = spec.build().expect("builds");
        let share = sim.hashrate_of(1) / (sim.hashrate_of(0) + sim.hashrate_of(1));
        assert!((share - 1.0 / 11.0).abs() < 0.04, "BCH share {share}");
    }
}
