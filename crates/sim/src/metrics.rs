//! Time-series metrics collected during a simulation.

use serde::{Deserialize, Serialize};

/// Per-snapshot, per-coin time series of the quantities Figure 1 plots
/// (prices and hashrates) plus difficulty and block counts for diagnosis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Snapshot times (seconds).
    pub times: Vec<f64>,
    /// `prices[c][t]`: price of coin `c` at snapshot `t`.
    pub prices: Vec<Vec<f64>>,
    /// `hashrates[c][t]`: total hashrate mining coin `c`.
    pub hashrates: Vec<Vec<f64>>,
    /// `difficulties[c][t]`: difficulty of chain `c`.
    pub difficulties: Vec<Vec<f64>>,
    /// `blocks[c][t]`: cumulative block count of chain `c`.
    pub blocks: Vec<Vec<u64>>,
    /// `miners[c][t]`: number of agents mining coin `c`.
    pub miners: Vec<Vec<usize>>,
    /// Total better-response switches agents have performed.
    pub total_switches: usize,
    /// Total events processed by the engine (block candidates,
    /// evaluations, snapshots, whale injections, churn) — the
    /// denominator of the events-per-second throughput baseline.
    pub total_events: u64,
    /// Churn events executed (rig arrivals/departures, coin
    /// launches/retirements).
    pub total_churn_events: u64,
}

impl SimMetrics {
    /// Creates an empty metrics store for `num_coins` coins.
    pub fn new(num_coins: usize) -> Self {
        SimMetrics {
            times: Vec::new(),
            prices: vec![Vec::new(); num_coins],
            hashrates: vec![Vec::new(); num_coins],
            difficulties: vec![Vec::new(); num_coins],
            blocks: vec![Vec::new(); num_coins],
            miners: vec![Vec::new(); num_coins],
            total_switches: 0,
            total_events: 0,
            total_churn_events: 0,
        }
    }

    /// Number of coins tracked.
    pub fn num_coins(&self) -> usize {
        self.prices.len()
    }

    /// Number of snapshots recorded.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether any snapshot has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Appends one snapshot row; slices must have one entry per coin.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from the coin count.
    pub fn record(
        &mut self,
        time: f64,
        prices: &[f64],
        hashrates: &[f64],
        difficulties: &[f64],
        blocks: &[u64],
        miners: &[usize],
    ) {
        let k = self.num_coins();
        assert!(
            prices.len() == k
                && hashrates.len() == k
                && difficulties.len() == k
                && blocks.len() == k
                && miners.len() == k,
            "snapshot row width mismatch"
        );
        self.times.push(time);
        for c in 0..k {
            self.prices[c].push(prices[c]);
            self.hashrates[c].push(hashrates[c]);
            self.difficulties[c].push(difficulties[c]);
            self.blocks[c].push(blocks[c]);
            self.miners[c].push(miners[c]);
        }
    }

    /// Hashrate share of `coin` at snapshot index `t` (0 if no hashrate).
    pub fn hashrate_share(&self, coin: usize, t: usize) -> f64 {
        let total: f64 = (0..self.num_coins()).map(|c| self.hashrates[c][t]).sum();
        if total <= 0.0 {
            0.0
        } else {
            self.hashrates[coin][t] / total
        }
    }

    /// Renders the metrics as CSV with a header row
    /// (`time, price_0.., hashrate_0.., difficulty_0.., blocks_0.., miners_0..`).
    pub fn to_csv(&self, coin_names: &[&str]) -> String {
        let k = self.num_coins();
        assert_eq!(coin_names.len(), k, "one name per coin required");
        let mut out = String::from("time");
        for kind in ["price", "hashrate", "difficulty", "blocks", "miners"] {
            for name in coin_names {
                out.push_str(&format!(",{kind}_{name}"));
            }
        }
        out.push('\n');
        for t in 0..self.len() {
            out.push_str(&format!("{}", self.times[t]));
            for c in 0..k {
                out.push_str(&format!(",{}", self.prices[c][t]));
            }
            for c in 0..k {
                out.push_str(&format!(",{}", self.hashrates[c][t]));
            }
            for c in 0..k {
                out.push_str(&format!(",{}", self.difficulties[c][t]));
            }
            for c in 0..k {
                out.push_str(&format!(",{}", self.blocks[c][t]));
            }
            for c in 0..k {
                out.push_str(&format!(",{}", self.miners[c][t]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_shares() {
        let mut m = SimMetrics::new(2);
        m.record(
            0.0,
            &[100.0, 10.0],
            &[75.0, 25.0],
            &[1e6, 1e5],
            &[0, 0],
            &[3, 1],
        );
        m.record(
            60.0,
            &[100.0, 20.0],
            &[50.0, 50.0],
            &[1e6, 2e5],
            &[1, 2],
            &[2, 2],
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m.hashrate_share(0, 0), 0.75);
        assert_eq!(m.hashrate_share(1, 1), 0.5);
    }

    #[test]
    fn empty_total_hashrate_is_zero_share() {
        let mut m = SimMetrics::new(1);
        m.record(0.0, &[1.0], &[0.0], &[1.0], &[0], &[0]);
        assert_eq!(m.hashrate_share(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut m = SimMetrics::new(2);
        m.record(0.0, &[1.0], &[1.0, 2.0], &[1.0, 2.0], &[0, 0], &[1, 1]);
    }

    #[test]
    fn csv_round_shape() {
        let mut m = SimMetrics::new(2);
        m.record(
            0.0,
            &[1.0, 2.0],
            &[3.0, 4.0],
            &[5.0, 6.0],
            &[7, 8],
            &[9, 10],
        );
        let csv = m.to_csv(&["BTC", "BCH"]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("time,price_BTC,price_BCH"));
        let row = lines.next().unwrap();
        assert_eq!(row, "0,1,2,3,4,5,6,7,8,9,10");
        assert_eq!(lines.next(), None);
    }
}
