//! Mid-stream disconnect tests: a client that vanishes — before its
//! first frame, mid-frame, or after `Accepted` with a compute request
//! already running — must cost the server nothing but its own session.
//! The session slot and the in-flight slot are both released, the
//! executor is not wedged, and the next client is served normally.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use goc_analysis::ensemble::EnsembleSpec;
use goc_proto::{
    Client, Connection, RejectReason, ReportPayload, Request, RequestEnvelope, Response,
};
use goc_server::{EnsembleOnlyBackend, Server, ServerConfig, ServerSummary};

/// How long a test waits for the server to recover from a hangup
/// before declaring the executor wedged.
const PATIENCE: Duration = Duration::from_secs(30);

fn boot(config: ServerConfig) -> (SocketAddr, JoinHandle<ServerSummary>) {
    let server = Server::bind(config, Box::new(EnsembleOnlyBackend)).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

/// Shuts the server down, retrying while a just-dropped client's
/// session slot is still being released.
fn shutdown(addr: SocketAddr) {
    let deadline = Instant::now() + PATIENCE;
    while Instant::now() < deadline {
        let mut client = Client::connect(addr).unwrap();
        let reply = client.request(Request::Shutdown).unwrap();
        match reply.terminal() {
            Response::Report(ReportPayload::ShutdownAck) => return,
            Response::Rejected {
                reason: RejectReason::SessionLimit,
                ..
            } => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("unexpected shutdown outcome: {other:?}"),
        }
    }
    panic!("no session slot freed for the shutdown request");
}

/// Keeps requesting `spec` until the server has a session and an
/// in-flight slot for it; panics if it never recovers within
/// [`PATIENCE`] (the wedged-executor failure this file exists for).
fn request_until_served(addr: SocketAddr, spec: EnsembleSpec) {
    let deadline = Instant::now() + PATIENCE;
    while Instant::now() < deadline {
        let mut client = match Client::connect(addr) {
            Ok(client) => client,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        let reply = client
            .request(Request::RunEnsemble { spec: spec.clone() })
            .unwrap();
        match reply.terminal() {
            Response::Report(ReportPayload::Ensemble(report)) => {
                assert_eq!(report.spec.replicas, spec.replicas);
                return;
            }
            Response::Rejected {
                reason: RejectReason::SessionLimit | RejectReason::InFlightLimit,
                ..
            } => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    panic!("the server never recovered a slot for the follow-up client");
}

#[test]
fn disconnect_after_accepted_frees_the_only_inflight_slot() {
    // One in-flight slot and two sessions: the abandoned request must
    // release both its slots or the follow-up client can never run.
    let config = ServerConfig {
        max_sessions: 2,
        max_inflight: 1,
        ..ServerConfig::default()
    };
    let (addr, handle) = boot(config);

    // Client A: submit real work, read `Accepted`, vanish.
    {
        let stream = TcpStream::connect(addr).unwrap();
        let mut conn = Connection::new(stream);
        let spec = EnsembleSpec::new(500, 4, 3);
        conn.send_request(&RequestEnvelope::new(1, Request::RunEnsemble { spec }))
            .unwrap();
        let accepted = conn.recv_response().unwrap();
        assert_eq!(accepted.response, Response::Accepted);
        // Dropping the connection here leaves the ensemble running
        // server-side with nobody to stream the report to.
    }

    // Client B is served once A's slots come back.
    request_until_served(addr, EnsembleSpec::new(64, 2, 9));

    shutdown(addr);
    let summary = handle.join().unwrap();
    // A's abandoned ensemble still ran to completion (admitted work is
    // never dropped), so both requests count as served.
    assert_eq!(summary.served, 2, "{summary:?}");
}

#[test]
fn disconnect_before_any_frame_cleans_the_session() {
    let config = ServerConfig {
        max_sessions: 2,
        ..ServerConfig::default()
    };
    let (addr, handle) = boot(config);

    // A connects and hangs up without ever speaking.
    drop(TcpStream::connect(addr).unwrap());
    // B connects and hangs up mid-frame (no terminating newline).
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"version\":1,\"id\":9").unwrap();
    }

    // Both half-sessions are reaped: a real client is served even
    // though the cap only admits two sessions at once.
    request_until_served(addr, EnsembleSpec::new(32, 2, 5));

    shutdown(addr);
    let summary = handle.join().unwrap();
    assert_eq!(summary.served, 1, "{summary:?}");
}

#[test]
fn disconnect_without_reading_any_response_is_survivable() {
    let config = ServerConfig {
        max_sessions: 2,
        max_inflight: 1,
        ..ServerConfig::default()
    };
    let (addr, handle) = boot(config);

    // A fires a request and vanishes before reading even `Accepted`:
    // the session discovers the hangup on the first failed write.
    {
        let stream = TcpStream::connect(addr).unwrap();
        let mut conn = Connection::new(stream);
        let spec = EnsembleSpec::new(128, 2, 7);
        conn.send_request(&RequestEnvelope::new(2, Request::RunEnsemble { spec }))
            .unwrap();
    }

    request_until_served(addr, EnsembleSpec::new(64, 2, 11));

    shutdown(addr);
    let summary = handle.join().unwrap();
    // Whether A's request was admitted before the hangup was noticed
    // is a race; what is not negotiable is that B's request completed.
    assert!(
        (1..=2).contains(&summary.served),
        "expected 1 or 2 served, got {summary:?}"
    );
}
