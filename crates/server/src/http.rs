//! [`HttpExporter`]: the minimal HTTP/1.1 GET scrape endpoint.
//!
//! The wire protocol (`goc-proto`) is the service's front door, but
//! scrapers and humans speak HTTP — ROADMAP item 6 names "a scrape
//! endpoint (HTTP GET)" as the missing piece. This is that piece, on
//! `std::net` only, serving exactly three read-only paths off the
//! server's observability state:
//!
//! * `GET /metrics` — the Prometheus text exposition
//!   ([`goc_telemetry::MetricsSnapshot::render_text`]) of the server's
//!   registry;
//! * `GET /healthz` — `200 ok` while the exporter is up (liveness);
//! * `GET /trace` — the flight recorder's current window as Chrome
//!   Trace Event Format JSON
//!   ([`goc_telemetry::TraceSnapshot::to_chrome_json`]).
//!
//! One request per connection (`Connection: close`), bounded header
//! reads, unknown paths 404, non-GET methods 405. Deliberately not a
//! web framework: three routes, a handful of lines each, no
//! keep-alive, no TLS — scrape traffic on a trusted network.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use goc_telemetry::trace::TraceRecorder;
use goc_telemetry::Registry;

use crate::server::ServerError;

/// Cap on the request head (request line + headers) we are willing to
/// read before answering; anything longer is cut off (the three served
/// requests fit in well under a hundred bytes).
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// How long a single scrape connection may dribble its request before
/// the exporter gives up on it.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// The scrape endpoint: binds its own listener (separate from the wire
/// protocol's) and serves `/metrics`, `/healthz`, and `/trace` off
/// shared handles onto the server's registry and flight recorder.
pub struct HttpExporter {
    listener: TcpListener,
    registry: Registry,
    tracer: TraceRecorder,
}

impl HttpExporter {
    /// Binds the endpoint on `addr` (port 0 picks an ephemeral port —
    /// read it back with [`HttpExporter::local_addr`]). `registry` and
    /// `tracer` are the live server handles ([`crate::Server::registry`]
    /// / [`crate::Server::tracer`]), so scrapes always see current
    /// state.
    ///
    /// # Errors
    ///
    /// [`ServerError::Bind`] when the OS refuses the address.
    pub fn bind(
        addr: &str,
        registry: Registry,
        tracer: TraceRecorder,
    ) -> Result<HttpExporter, ServerError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServerError::Bind {
            addr: addr.to_string(),
            detail: e.to_string(),
        })?;
        Ok(HttpExporter {
            listener,
            registry,
            tracer,
        })
    }

    /// The bound address (the real port when `addr` asked for 0).
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] when the OS cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, ServerError> {
        self.listener
            .local_addr()
            .map_err(|e| ServerError::Io(e.to_string()))
    }

    /// Moves the exporter onto its own accept-loop thread, serving one
    /// request per connection until the process exits. Scrapes are
    /// answered sequentially — a metrics endpoint has no business
    /// needing a thread pool.
    pub fn spawn(self) -> JoinHandle<()> {
        thread::spawn(move || {
            for incoming in self.listener.incoming() {
                let Ok(stream) = incoming else { continue };
                // A stalled scraper must not wedge the endpoint.
                stream.set_read_timeout(Some(SCRAPE_TIMEOUT)).ok();
                serve_one(stream, &self.registry, &self.tracer);
            }
        })
    }
}

/// Reads the request head (up to the blank line, bounded) and returns
/// `(method, path)` from its request line.
fn read_request_line(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < MAX_HEAD_BYTES {
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => break,
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }
    let text = String::from_utf8_lossy(&head);
    let request_line = text.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_string();
    // Ignore any query string: `/metrics?x=1` scrapes `/metrics`.
    let path = parts.next()?.split('?').next()?.to_string();
    Some((method, path))
}

/// Writes one `HTTP/1.1` response and closes (errors ignored: the
/// scraper may already be gone).
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Answers a single scrape connection.
fn serve_one(mut stream: TcpStream, registry: &Registry, tracer: &TraceRecorder) {
    let Some((method, path)) = read_request_line(&mut stream) else {
        respond(
            &mut stream,
            "400 Bad Request",
            "text/plain",
            "bad request\n",
        );
        return;
    };
    if method != "GET" {
        respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is served\n",
        );
        return;
    }
    match path.as_str() {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4",
            &registry.render_text(),
        ),
        "/healthz" => respond(&mut stream, "200 OK", "text/plain", "ok\n"),
        "/trace" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &tracer.snapshot().to_chrome_json(),
        ),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "known paths: /metrics /healthz /trace\n",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_telemetry::trace::TraceEventKind;

    fn get(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn boot() -> (SocketAddr, Registry, TraceRecorder) {
        let registry = Registry::new();
        let tracer = TraceRecorder::new(64);
        let exporter = HttpExporter::bind("127.0.0.1:0", registry.clone(), tracer.clone()).unwrap();
        let addr = exporter.local_addr().unwrap();
        exporter.spawn();
        (addr, registry, tracer)
    }

    #[test]
    fn scrapes_serve_metrics_health_and_trace() {
        let (addr, registry, tracer) = boot();
        registry.counter("goc_http_test_total").add(3);
        tracer.lane().instant(TraceEventKind::RequestAdmit, 9);

        let health = get(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.contains("Connection: close"));
        assert!(health.ends_with("ok\n"));

        let metrics = get(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(metrics.contains("Content-Type: text/plain"));
        assert!(metrics.contains("goc_http_test_total 3\n"));

        // Scrapes see *live* state: the counter moves between GETs.
        registry.counter("goc_http_test_total").inc();
        let again = get(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(again.contains("goc_http_test_total 4\n"));

        let trace = get(addr, "GET /trace?since=0 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(trace.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(trace.contains("Content-Type: application/json"));
        assert!(trace.contains("\"request_admit\""));
        assert!(trace.contains("\"correlation\":9"));
    }

    #[test]
    fn unknown_paths_and_methods_are_refused_by_status() {
        let (addr, _registry, _tracer) = boot();
        let missing = get(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404 Not Found\r\n"));
        let posted = get(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(posted.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        // Each response carries an exact Content-Length and closes.
        for response in [missing, posted] {
            let length: usize = response
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .parse()
                .unwrap();
            let body = response.split("\r\n\r\n").nth(1).unwrap();
            assert_eq!(body.len(), length);
        }
    }
}
