//! [`Backend`]: the compute substrate behind the session loop.
//!
//! The server crate deliberately does not depend on the experiment
//! registry (`goc-experiments` hosts the `serve` experiment, which
//! would make the dependency circular). Instead, experiment execution
//! is injected through this trait; `goc-experiments` provides the
//! production `RegistryBackend` lowering runs onto
//! `sweep::try_parallel_map`, and [`EnsembleOnlyBackend`] serves
//! deployments (and tests) that only need ensemble/status traffic.
//! `RunEnsemble` requests never reach the backend — the server lowers
//! them onto [`goc_analysis::ensemble::run`] directly, which already
//! rides the shared work-stealing executor.

use goc_analysis::RunReport;
use goc_proto::ExperimentRequest;

/// Executes experiment requests on behalf of the server.
///
/// Implementations must be cheap to call concurrently from many
/// session threads; the server's in-flight gate bounds how many calls
/// run at once.
pub trait Backend: Send + Sync + 'static {
    /// Whether `name` is a runnable experiment (admission check — a
    /// miss rejects with `RejectReason::UnknownExperiment` before any
    /// work is queued).
    fn has_experiment(&self, name: &str) -> bool;

    /// Runs one experiment to completion on up to `threads` workers.
    ///
    /// # Errors
    ///
    /// A display string for the failed run (surfaced to the client as
    /// `Response::Error`).
    fn run_experiment(
        &self,
        request: &ExperimentRequest,
        threads: usize,
    ) -> Result<RunReport, String>;

    /// Runs a validated sweep, reporting `(done, total)` after each
    /// completed chunk so the session can stream `Progress` frames.
    ///
    /// # Errors
    ///
    /// As [`Backend::run_experiment`], for the first failing run.
    fn sweep(
        &self,
        runs: &[ExperimentRequest],
        threads: usize,
        progress: &mut dyn FnMut(usize, usize),
    ) -> Result<Vec<RunReport>, String>;
}

/// A [`Backend`] with no experiment registry: every experiment lookup
/// misses, so sessions can only submit `RunEnsemble`, `Status`, and
/// `Shutdown`. Useful for ensemble-serving deployments and for tests
/// that exercise admission control without the registry crate.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnsembleOnlyBackend;

impl Backend for EnsembleOnlyBackend {
    fn has_experiment(&self, _name: &str) -> bool {
        false
    }

    fn run_experiment(
        &self,
        request: &ExperimentRequest,
        _threads: usize,
    ) -> Result<RunReport, String> {
        Err(format!(
            "no experiment registry in this server (requested `{}`)",
            request.experiment
        ))
    }

    fn sweep(
        &self,
        _runs: &[ExperimentRequest],
        _threads: usize,
        _progress: &mut dyn FnMut(usize, usize),
    ) -> Result<Vec<RunReport>, String> {
        Err("no experiment registry in this server".to_string())
    }
}
