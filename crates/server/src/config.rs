//! [`ServerConfig`]: the server's limits, validated up front with
//! named errors (a config that cannot admit any work is refused at
//! construction, not discovered in production).

use std::fmt;

/// Hard population ceiling for a single request, mirroring the
/// `MAX_GATE_MINERS` perf-gate constant in `crates/bench`: populations
/// beyond this are refused with `RejectReason::PopulationCap` before
/// any allocation happens.
pub const MAX_GATE_MINERS: usize = 2_000_000;

/// The server's address and admission-control limits.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Concurrent client sessions (≥ 1); more are refused at accept.
    pub max_sessions: usize,
    /// Concurrent compute requests in flight (≥ 1); more are refused
    /// per-request. `Status`/`Shutdown` bypass this gate.
    pub max_inflight: usize,
    /// Compute requests one session may submit over its lifetime
    /// (≥ 1).
    pub session_budget: u64,
    /// Largest replica count a single request may ask for.
    pub max_replicas: usize,
    /// Largest population a single request may ask for (defaults to
    /// [`MAX_GATE_MINERS`]).
    pub max_miners: usize,
    /// Most runs one sweep request may carry.
    pub max_sweep_runs: usize,
    /// Per-frame byte cap on every session connection.
    pub max_frame_bytes: usize,
    /// Worker threads each compute request runs on.
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 16,
            max_inflight: 4,
            session_budget: 256,
            max_replicas: 4096,
            max_miners: MAX_GATE_MINERS,
            max_sweep_runs: 64,
            max_frame_bytes: goc_proto::DEFAULT_MAX_FRAME_BYTES,
            threads: goc_analysis::default_threads(),
        }
    }
}

impl ServerConfig {
    /// Validates the limits.
    ///
    /// # Errors
    ///
    /// A [`ConfigError`] naming the first degenerate field — a server
    /// that could never admit a session, a request, or a worker is a
    /// misconfiguration, not a quiet no-op.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_sessions == 0 {
            return Err(ConfigError::Degenerate("max_sessions must be ≥ 1"));
        }
        if self.max_inflight == 0 {
            return Err(ConfigError::Degenerate("max_inflight must be ≥ 1"));
        }
        if self.session_budget == 0 {
            return Err(ConfigError::Degenerate("session_budget must be ≥ 1"));
        }
        if self.max_replicas == 0 {
            return Err(ConfigError::Degenerate("max_replicas must be ≥ 1"));
        }
        if self.max_miners == 0 {
            return Err(ConfigError::Degenerate("max_miners must be ≥ 1"));
        }
        if self.max_sweep_runs == 0 {
            return Err(ConfigError::Degenerate("max_sweep_runs must be ≥ 1"));
        }
        if self.max_frame_bytes == 0 {
            return Err(ConfigError::Degenerate("max_frame_bytes must be ≥ 1"));
        }
        if self.threads == 0 {
            return Err(ConfigError::Degenerate("threads must be ≥ 1"));
        }
        Ok(())
    }
}

/// Named configuration errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A limit is zero where the server needs at least one.
    Degenerate(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Degenerate(what) => write!(f, "invalid server config: {what}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ServerConfig::default().validate().is_ok());
        assert_eq!(ServerConfig::default().max_miners, MAX_GATE_MINERS);
    }

    #[test]
    fn zero_limits_are_named() {
        for (field, mutate) in [
            (
                "max_sessions",
                Box::new(|c: &mut ServerConfig| c.max_sessions = 0)
                    as Box<dyn Fn(&mut ServerConfig)>,
            ),
            (
                "max_inflight",
                Box::new(|c: &mut ServerConfig| c.max_inflight = 0),
            ),
            (
                "session_budget",
                Box::new(|c: &mut ServerConfig| c.session_budget = 0),
            ),
            (
                "max_replicas",
                Box::new(|c: &mut ServerConfig| c.max_replicas = 0),
            ),
            (
                "max_miners",
                Box::new(|c: &mut ServerConfig| c.max_miners = 0),
            ),
            (
                "max_sweep_runs",
                Box::new(|c: &mut ServerConfig| c.max_sweep_runs = 0),
            ),
            (
                "max_frame_bytes",
                Box::new(|c: &mut ServerConfig| c.max_frame_bytes = 0),
            ),
            ("threads", Box::new(|c: &mut ServerConfig| c.threads = 0)),
        ] {
            let mut config = ServerConfig::default();
            mutate(&mut config);
            let err = config.validate().unwrap_err();
            assert!(err.to_string().contains(field), "{err} names {field}");
        }
    }
}
