//! [`Server`]: the accept loop, one session thread per client, and the
//! admission-control pipeline every compute request passes through.

use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use goc_analysis::ensemble;
use goc_proto::{
    Connection, ProtoError, RejectReason, ReportPayload, Request, Response, ResponseEnvelope,
    ServerStatus, PROTOCOL_VERSION,
};
use goc_telemetry::trace::{TraceEventKind, TraceLane, TraceRecorder};
use goc_telemetry::{with_label, Registry};

use crate::backend::Backend;
use crate::config::{ConfigError, ServerConfig};

/// How often a parked session re-checks the draining flag.
const SESSION_POLL: Duration = Duration::from_millis(100);

/// Errors of server construction and operation.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The listener could not bind.
    Bind {
        /// The requested address.
        addr: String,
        /// The OS error.
        detail: String,
    },
    /// A listener-level I/O failure.
    Io(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Config(e) => write!(f, "{e}"),
            ServerError::Bind { addr, detail } => write!(f, "cannot bind {addr}: {detail}"),
            ServerError::Io(detail) => write!(f, "server I/O error: {detail}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<ConfigError> for ServerError {
    fn from(e: ConfigError) -> Self {
        ServerError::Config(e)
    }
}

/// What the server did over its lifetime, returned by [`Server::run`]
/// after a graceful drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerSummary {
    /// Compute requests completed with a `Report`.
    pub served: u64,
    /// Requests and sessions refused by name.
    pub rejected: u64,
}

/// Shared server state: the limits, the backend, and the counters the
/// admission pipeline and `Status` requests read.
struct State {
    config: ServerConfig,
    backend: Box<dyn Backend>,
    local_addr: SocketAddr,
    draining: AtomicBool,
    /// Set just before the drain wake-up ping self-connects so the
    /// accept loop can tell it apart from a late client: the ping is
    /// service plumbing, not a rejected session.
    wake_ping_pending: AtomicBool,
    sessions: AtomicUsize,
    inflight: AtomicUsize,
    served: AtomicU64,
    rejected: AtomicU64,
    registry: Registry,
    tracer: TraceRecorder,
}

impl State {
    /// The status payload; `wants_metrics` (the request envelope spoke
    /// protocol v2 or later) decides whether the registry snapshot
    /// rides along, so v1 clients get exactly the payload they expect.
    fn status(&self, wants_metrics: bool) -> ServerStatus {
        ServerStatus {
            version: PROTOCOL_VERSION,
            sessions: self.sessions.load(Ordering::SeqCst),
            inflight: self.inflight.load(Ordering::SeqCst),
            served: self.served.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            draining: self.draining.load(Ordering::SeqCst),
            max_sessions: self.config.max_sessions,
            max_inflight: self.config.max_inflight,
            metrics: wants_metrics.then(|| self.registry.snapshot()),
        }
    }

    /// Counts a refusal in both ledgers: the lifetime counter the
    /// summary and `Status` read, and the per-reason labeled telemetry
    /// counter. Keeping them behind one seam is what lets the drain
    /// accounting assertion (`served + rejected == registry totals`)
    /// hold by construction.
    fn count_rejection(&self, reason: RejectReason) {
        self.rejected.fetch_add(1, Ordering::SeqCst);
        self.registry
            .counter(&with_label(
                "goc_server_rejected_total",
                "reason",
                reason.name(),
            ))
            .inc();
    }

    /// Claims an in-flight slot if one is free (the bounded queue).
    fn try_acquire_inflight(&self) -> bool {
        self.inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.config.max_inflight).then_some(n + 1)
            })
            .is_ok()
    }

    /// Claims a session slot if one is free.
    fn try_acquire_session(&self) -> bool {
        self.sessions
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.config.max_sessions).then_some(n + 1)
            })
            .is_ok()
    }
}

/// Releases an in-flight slot on every exit path.
struct InflightGuard<'a>(&'a State);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
        self.0.registry.gauge("goc_server_inflight").dec();
    }
}

/// Releases a session slot on every exit path (including panics in a
/// session thread, so a crashed session can never leak its slot).
struct SessionGuard(Arc<State>);

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.0.sessions.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The Game-of-Coins service: bind, then [`Server::run`] until a
/// `Shutdown` request drains it.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Validates the config and binds the listener (`addr` port 0
    /// picks an ephemeral port — read it back with
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// [`ServerError::Config`] for a degenerate config,
    /// [`ServerError::Bind`] when the OS refuses the address.
    pub fn bind(config: ServerConfig, backend: Box<dyn Backend>) -> Result<Server, ServerError> {
        Server::bind_traced(config, backend, TraceRecorder::disabled())
    }

    /// [`Server::bind`] with a flight recorder: every session thread
    /// writes request-correlated spans onto its own lane of `tracer` —
    /// a `request_admit` instant when a compute request clears the
    /// admission pipeline, a `request_serve` span around backend
    /// compute + terminal reply, and a `request_reject` instant for
    /// every named refusal, each carrying the wire envelope's
    /// correlation id — so a drained recorder reconstructs per-request
    /// timelines exactly. Backend ensembles trace onto the same
    /// recorder (replica + snapshot spans). Pass
    /// [`TraceRecorder::disabled`] (what [`Server::bind`] does) to keep
    /// the whole layer a one-relaxed-load no-op.
    ///
    /// # Errors
    ///
    /// As [`Server::bind`].
    pub fn bind_traced(
        config: ServerConfig,
        backend: Box<dyn Backend>,
        tracer: TraceRecorder,
    ) -> Result<Server, ServerError> {
        config.validate()?;
        let listener = TcpListener::bind(&config.addr).map_err(|e| ServerError::Bind {
            addr: config.addr.clone(),
            detail: e.to_string(),
        })?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ServerError::Io(e.to_string()))?;
        // Instruments register on first touch; touching the headline
        // ones here makes every exposition show them from zero rather
        // than having them pop into existence with the first event.
        let registry = Registry::new();
        registry.counter("goc_server_sessions_total");
        registry.counter("goc_server_served_total");
        registry.gauge("goc_server_inflight");
        Ok(Server {
            listener,
            state: Arc::new(State {
                config,
                backend,
                local_addr,
                draining: AtomicBool::new(false),
                wake_ping_pending: AtomicBool::new(false),
                sessions: AtomicUsize::new(0),
                inflight: AtomicUsize::new(0),
                served: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                registry,
                tracer,
            }),
        })
    }

    /// The bound address (the real port when the config asked for 0).
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] when the OS cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, ServerError> {
        self.listener
            .local_addr()
            .map_err(|e| ServerError::Io(e.to_string()))
    }

    /// A handle onto the server's metrics registry. The handle shares
    /// the server's instruments (the registry is a cheap `Arc` clone),
    /// so it keeps reporting the final counters after [`Server::run`]
    /// returns — the `serve` experiment and `goc serve --metrics` read
    /// their post-drain expositions through it.
    pub fn registry(&self) -> Registry {
        self.state.registry.clone()
    }

    /// A handle onto the server's flight recorder (a cheap `Arc`
    /// clone, like [`Server::registry`]) — drain it with
    /// [`TraceRecorder::snapshot`] during or after [`Server::run`].
    pub fn tracer(&self) -> TraceRecorder {
        self.state.tracer.clone()
    }

    /// Accepts sessions until a `Shutdown` request flips the server
    /// into draining, then joins every session thread (in-flight work
    /// runs to completion) and returns the lifetime counters.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] only for listener-level failures; per-
    /// session faults never tear the server down.
    pub fn run(self) -> Result<ServerSummary, ServerError> {
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        for incoming in self.listener.incoming() {
            let stream = match incoming {
                Ok(stream) => stream,
                // Transient accept faults (e.g. the peer vanished
                // between SYN and accept) are not fatal.
                Err(_) => continue,
            };
            if self.state.draining.load(Ordering::SeqCst) {
                // The drain wake-up ping is our own plumbing: consume
                // its pending flag and stop accepting without counting
                // a rejection. Anything else here is a late client and
                // is refused by name.
                if !self.state.wake_ping_pending.swap(false, Ordering::SeqCst) {
                    self.state.count_rejection(RejectReason::Draining);
                    refuse(stream, RejectReason::Draining, "server is draining");
                }
                break;
            }
            if !self.state.try_acquire_session() {
                self.state.count_rejection(RejectReason::SessionLimit);
                refuse(
                    stream,
                    RejectReason::SessionLimit,
                    &format!("at the {}-session cap", self.state.config.max_sessions),
                );
                continue;
            }
            self.state
                .registry
                .counter("goc_server_sessions_total")
                .inc();
            handles.retain(|h| !h.is_finished());
            let state = Arc::clone(&self.state);
            handles.push(std::thread::spawn(move || session(state, stream)));
        }
        for handle in handles {
            // A panicked session already released its slot via the
            // guards; nothing to propagate.
            let _ = handle.join();
        }
        Ok(ServerSummary {
            served: self.state.served.load(Ordering::SeqCst),
            rejected: self.state.rejected.load(Ordering::SeqCst),
        })
    }
}

/// Best-effort single-frame refusal of a connection that never got a
/// session (errors ignored: the peer may already be gone).
fn refuse(stream: TcpStream, reason: RejectReason, detail: &str) {
    let mut conn = Connection::new(stream);
    let _ = conn.send_response(&ResponseEnvelope::new(
        0,
        Response::Rejected {
            reason,
            detail: detail.to_string(),
        },
    ));
}

/// Sends one response frame; `Err(())` means the client is gone and
/// the session should end.
fn reply(conn: &mut Connection<TcpStream>, id: u64, response: Response) -> Result<(), ()> {
    conn.send_response(&ResponseEnvelope::new(id, response))
        .map_err(|_| ())
}

/// Counts, traces, and sends a named rejection.
fn reject(
    state: &State,
    conn: &mut Connection<TcpStream>,
    lane: &TraceLane,
    id: u64,
    reason: RejectReason,
    detail: String,
) -> Result<(), ()> {
    state.count_rejection(reason);
    lane.instant(TraceEventKind::RequestReject, id);
    reply(conn, id, Response::Rejected { reason, detail })
}

/// One client session: frame requests off the connection until the
/// peer hangs up (or the server drains), answering each one. Framing
/// faults are per-frame: a malformed or oversized frame is rejected by
/// name and the session keeps going.
fn session(state: Arc<State>, stream: TcpStream) {
    let _slot = SessionGuard(Arc::clone(&state));
    // The poll timeout is what lets an idle session notice a drain;
    // without it the join in `run` would wait on clients that never
    // speak again.
    stream.set_read_timeout(Some(SESSION_POLL)).ok();
    stream.set_nodelay(true).ok();
    let mut conn = Connection::with_max_frame(stream, state.config.max_frame_bytes);
    // One trace lane per session thread (the recorder's single-writer
    // unit); every record on it carries a wire correlation id.
    let lane = state.tracer.lane();
    let mut budget_used: u64 = 0;
    loop {
        let envelope = match conn.recv_request() {
            Ok(envelope) => envelope,
            Err(ProtoError::TimedOut) => {
                if state.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e @ ProtoError::FrameTooLarge { .. }) => {
                if reject(
                    &state,
                    &mut conn,
                    &lane,
                    0,
                    RejectReason::FrameTooLarge,
                    e.to_string(),
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
            Err(e @ ProtoError::Malformed { .. }) => {
                if reject(
                    &state,
                    &mut conn,
                    &lane,
                    0,
                    RejectReason::MalformedFrame,
                    e.to_string(),
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
            // Closed / I/O fault: the client went away; clean exit.
            Err(_) => break,
        };
        let id = envelope.id;
        if let Err(e) = envelope.check_version() {
            if reject(
                &state,
                &mut conn,
                &lane,
                id,
                RejectReason::VersionMismatch,
                e.to_string(),
            )
            .is_err()
            {
                break;
            }
            continue;
        }
        // The metrics snapshot joined the status payload at protocol
        // v2; older envelopes get the exact v1 payload shape.
        let wants_metrics = envelope.version >= 2;
        let kind = envelope.request.kind();
        let start = Instant::now();
        let done = match envelope.request {
            // Status is free and always answered, draining included.
            Request::Status => reply(
                &mut conn,
                id,
                Response::Report(ReportPayload::Status(state.status(wants_metrics))),
            ),
            // Metrics is free like Status: the text exposition plus
            // the structured snapshot it was rendered from.
            Request::Metrics => {
                let snapshot = state.registry.snapshot();
                reply(
                    &mut conn,
                    id,
                    Response::Report(ReportPayload::Metrics {
                        text: snapshot.render_text(),
                        snapshot,
                    }),
                )
            }
            Request::Shutdown => {
                state.draining.store(true, Ordering::SeqCst);
                let sent = reply(&mut conn, id, Response::Report(ReportPayload::ShutdownAck));
                // Unblock the accept loop so it can observe the drain.
                // The pending flag tells it this connection is the
                // wake-up ping, not a late client to count.
                state.wake_ping_pending.store(true, Ordering::SeqCst);
                TcpStream::connect(state.local_addr).ok();
                sent
            }
            request => handle_compute(&state, &mut conn, &lane, id, request, &mut budget_used),
        };
        state
            .registry
            .histogram(&with_label("goc_server_request_secs", "kind", kind))
            .observe_duration(start.elapsed());
        if done.is_err() {
            break;
        }
    }
}

/// The admission pipeline for compute requests: drain check, session
/// budget, request caps, then the bounded in-flight gate; admitted
/// requests stream `Accepted` (+ `Progress` for sweeps) and end with
/// `Report` or `Error`.
fn handle_compute(
    state: &State,
    conn: &mut Connection<TcpStream>,
    lane: &TraceLane,
    id: u64,
    request: Request,
    budget_used: &mut u64,
) -> Result<(), ()> {
    if state.draining.load(Ordering::SeqCst) {
        return reject(
            state,
            conn,
            lane,
            id,
            RejectReason::Draining,
            "server is draining; no new work".to_string(),
        );
    }
    if *budget_used >= state.config.session_budget {
        return reject(
            state,
            conn,
            lane,
            id,
            RejectReason::SessionBudgetExhausted,
            format!(
                "session budget of {} compute requests spent",
                state.config.session_budget
            ),
        );
    }
    if let Some((reason, detail)) = admission_fault(state, &request) {
        return reject(state, conn, lane, id, reason, detail);
    }
    if !state.try_acquire_inflight() {
        return reject(
            state,
            conn,
            lane,
            id,
            RejectReason::InFlightLimit,
            format!(
                "bounded in-flight queue is full ({} requests)",
                state.config.max_inflight
            ),
        );
    }
    // Admitted: past every gate, in-flight slot held.
    lane.instant(TraceEventKind::RequestAdmit, id);
    state.registry.gauge("goc_server_inflight").inc();
    let _slot = InflightGuard(state);
    *budget_used += 1;
    reply(conn, id, Response::Accepted)?;
    // The serve span covers backend compute plus the terminal reply
    // write, so the drained timeline shows where the request's time
    // went after admission.
    let _serve = lane.span(TraceEventKind::RequestServe, id);
    match execute(state, conn, id, &request) {
        Ok(payload) => {
            state.served.fetch_add(1, Ordering::SeqCst);
            state.registry.counter("goc_server_served_total").inc();
            reply(conn, id, Response::Report(payload))
        }
        Err(detail) => reply(conn, id, Response::Error { detail }),
    }
}

/// The pre-gate caps: every fault is a named [`RejectReason`] produced
/// before any work is queued.
fn admission_fault(state: &State, request: &Request) -> Option<(RejectReason, String)> {
    let cfg = &state.config;
    match request {
        Request::RunExperiment(run) => {
            if !state.backend.has_experiment(&run.experiment) {
                return Some((
                    RejectReason::UnknownExperiment,
                    format!("unknown experiment `{}`", run.experiment),
                ));
            }
            if let Some(replicas) = run.replicas {
                if replicas > cfg.max_replicas {
                    return Some((
                        RejectReason::ReplicaCap,
                        format!("{replicas} replicas exceed the cap of {}", cfg.max_replicas),
                    ));
                }
            }
        }
        Request::RunEnsemble { spec } => {
            if let Err(e) = spec.validate() {
                return Some((RejectReason::InvalidRequest, e.to_string()));
            }
            if spec.replicas > cfg.max_replicas {
                return Some((
                    RejectReason::ReplicaCap,
                    format!(
                        "{} replicas exceed the cap of {}",
                        spec.replicas, cfg.max_replicas
                    ),
                ));
            }
            if spec.miners > cfg.max_miners {
                return Some((
                    RejectReason::PopulationCap,
                    format!(
                        "{} miners exceed the cap of {}",
                        spec.miners, cfg.max_miners
                    ),
                ));
            }
        }
        Request::Sweep { runs } => {
            if runs.is_empty() {
                return Some((
                    RejectReason::InvalidRequest,
                    "a sweep needs at least one run".to_string(),
                ));
            }
            if runs.len() > cfg.max_sweep_runs {
                return Some((
                    RejectReason::SweepCap,
                    format!(
                        "{} runs exceed the sweep cap of {}",
                        runs.len(),
                        cfg.max_sweep_runs
                    ),
                ));
            }
            for run in runs {
                if !state.backend.has_experiment(&run.experiment) {
                    return Some((
                        RejectReason::UnknownExperiment,
                        format!("unknown experiment `{}`", run.experiment),
                    ));
                }
                if let Some(replicas) = run.replicas {
                    if replicas > cfg.max_replicas {
                        return Some((
                            RejectReason::ReplicaCap,
                            format!("{replicas} replicas exceed the cap of {}", cfg.max_replicas),
                        ));
                    }
                }
            }
        }
        // Handled before the pipeline.
        Request::Status | Request::Metrics | Request::Shutdown => {}
    }
    None
}

/// Lowers an admitted request onto the compute substrate: ensembles go
/// straight to [`goc_analysis::ensemble::run`] (the work-stealing
/// executor), experiments and sweeps through the injected [`Backend`].
fn execute(
    state: &State,
    conn: &mut Connection<TcpStream>,
    id: u64,
    request: &Request,
) -> Result<ReportPayload, String> {
    let threads = state.config.threads;
    match request {
        Request::RunExperiment(run) => state
            .backend
            .run_experiment(run, threads)
            .map(ReportPayload::Experiment),
        Request::RunEnsemble { spec } => {
            // Replica/snapshot spans land on the server's own recorder
            // (registry stays out of it, exactly like `ensemble::run`).
            ensemble::run_traced(spec, threads, &Registry::disabled(), &state.tracer)
                .map(ReportPayload::Ensemble)
                .map_err(|e| e.to_string())
        }
        Request::Sweep { runs } => {
            let mut progress = |done: usize, total: usize| {
                // A client gone mid-sweep surfaces at the terminal
                // send; the compute itself always runs to completion
                // so the executor is never left wedged.
                let _ = reply(conn, id, Response::Progress { done, total });
            };
            state
                .backend
                .sweep(runs, threads, &mut progress)
                .map(ReportPayload::Sweep)
        }
        Request::Status | Request::Metrics | Request::Shutdown => {
            unreachable!("handled by the session loop")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::EnsembleOnlyBackend;
    use goc_analysis::ensemble::EnsembleSpec;
    use goc_proto::{Client, ExperimentRequest};

    fn boot(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<ServerSummary>) {
        let server = Server::bind(config, Box::new(EnsembleOnlyBackend)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    fn shutdown(addr: SocketAddr) {
        // Retried: a just-dropped client's session slot frees as soon
        // as its session thread observes the hangup.
        for _ in 0..100 {
            let mut client = Client::connect(addr).unwrap();
            let reply = client.request(Request::Shutdown).unwrap();
            match reply.terminal() {
                Response::Report(ReportPayload::ShutdownAck) => return,
                Response::Rejected {
                    reason: RejectReason::SessionLimit,
                    ..
                } => std::thread::sleep(Duration::from_millis(20)),
                other => panic!("unexpected shutdown outcome: {other:?}"),
            }
        }
        panic!("no session slot freed for the shutdown request");
    }

    #[test]
    fn status_round_trips_and_shutdown_drains() {
        let (addr, handle) = boot(ServerConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let reply = client.request(Request::Status).unwrap();
        let Some(ReportPayload::Status(status)) = reply.report() else {
            panic!("expected a status report, got {:?}", reply.terminal());
        };
        assert_eq!(status.version, PROTOCOL_VERSION);
        assert!(!status.draining);
        assert_eq!(status.sessions, 1);
        shutdown(addr);
        let summary = handle.join().unwrap();
        assert_eq!(summary.served, 0, "status responses are not compute");
    }

    #[test]
    fn ensembles_run_over_the_wire_and_match_local_runs() {
        let (addr, handle) = boot(ServerConfig::default());
        let spec = EnsembleSpec::new(16, 4, 7);
        let mut client = Client::connect(addr).unwrap();
        let reply = client
            .request(Request::RunEnsemble { spec: spec.clone() })
            .unwrap();
        assert!(reply.accepted());
        let Some(ReportPayload::Ensemble(wire)) = reply.report() else {
            panic!("expected an ensemble report, got {:?}", reply.terminal());
        };
        let local = ensemble::run(&spec, 2).unwrap();
        assert_eq!(
            wire.deterministic_json(),
            local.deterministic_json(),
            "the wire changes nothing: same spec, same deterministic aggregate"
        );
        shutdown(addr);
        assert_eq!(handle.join().unwrap().served, 1);
    }

    #[test]
    fn caps_reject_by_name_before_any_work() {
        let config = ServerConfig {
            max_replicas: 8,
            max_miners: 100,
            max_sweep_runs: 2,
            ..ServerConfig::default()
        };
        let (addr, handle) = boot(config);
        let mut client = Client::connect(addr).unwrap();

        let over_replicas = client
            .request(Request::RunEnsemble {
                spec: EnsembleSpec::new(16, 9, 0),
            })
            .unwrap();
        assert_eq!(
            over_replicas.rejection().unwrap().0,
            RejectReason::ReplicaCap
        );

        let over_miners = client
            .request(Request::RunEnsemble {
                spec: EnsembleSpec::new(101, 2, 0),
            })
            .unwrap();
        assert_eq!(
            over_miners.rejection().unwrap().0,
            RejectReason::PopulationCap
        );

        let invalid = client
            .request(Request::RunEnsemble {
                spec: EnsembleSpec::new(16, 0, 0),
            })
            .unwrap();
        assert_eq!(invalid.rejection().unwrap().0, RejectReason::InvalidRequest);

        let unknown = client
            .request(Request::RunExperiment(ExperimentRequest::quick("fig1")))
            .unwrap();
        assert_eq!(
            unknown.rejection().unwrap().0,
            RejectReason::UnknownExperiment,
            "the ensemble-only backend has no registry"
        );

        let too_wide = client
            .request(Request::Sweep {
                runs: vec![
                    ExperimentRequest::quick("a"),
                    ExperimentRequest::quick("b"),
                    ExperimentRequest::quick("c"),
                ],
            })
            .unwrap();
        assert_eq!(too_wide.rejection().unwrap().0, RejectReason::SweepCap);

        let empty = client.request(Request::Sweep { runs: vec![] }).unwrap();
        assert_eq!(empty.rejection().unwrap().0, RejectReason::InvalidRequest);

        shutdown(addr);
        let summary = handle.join().unwrap();
        assert_eq!(summary.served, 0);
        assert!(summary.rejected >= 6);
    }

    #[test]
    fn session_budget_is_enforced() {
        let config = ServerConfig {
            session_budget: 2,
            ..ServerConfig::default()
        };
        let (addr, handle) = boot(config);
        let mut client = Client::connect(addr).unwrap();
        let spec = EnsembleSpec::new(8, 2, 0);
        for _ in 0..2 {
            let reply = client
                .request(Request::RunEnsemble { spec: spec.clone() })
                .unwrap();
            assert!(reply.report().is_some());
        }
        let broke = client
            .request(Request::RunEnsemble { spec: spec.clone() })
            .unwrap();
        assert_eq!(
            broke.rejection().unwrap().0,
            RejectReason::SessionBudgetExhausted
        );
        // Status stays free after the budget is spent.
        assert!(client.request(Request::Status).unwrap().report().is_some());
        shutdown(addr);
        handle.join().unwrap();
    }

    #[test]
    fn session_cap_refuses_extra_clients_by_name() {
        let config = ServerConfig {
            max_sessions: 1,
            ..ServerConfig::default()
        };
        let (addr, handle) = boot(config);
        let mut first = Client::connect(addr).unwrap();
        assert!(first.request(Request::Status).unwrap().report().is_some());
        let mut second = Client::connect(addr).unwrap();
        let refused = second.request(Request::Status).unwrap();
        assert_eq!(refused.rejection().unwrap().0, RejectReason::SessionLimit);
        drop(second);
        drop(first);
        shutdown(addr);
        handle.join().unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected_by_name() {
        let (addr, handle) = boot(ServerConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut conn = Connection::new(stream);
        let mut envelope = goc_proto::RequestEnvelope::new(5, Request::Status);
        envelope.version = 9;
        conn.send_request(&envelope).unwrap();
        let response = conn.recv_response().unwrap();
        assert_eq!(response.id, 5);
        assert!(matches!(
            response.response,
            Response::Rejected {
                reason: RejectReason::VersionMismatch,
                ..
            }
        ));
        drop(conn);
        shutdown(addr);
        handle.join().unwrap();
    }

    #[test]
    fn metrics_round_trip_with_live_counters() {
        let (addr, handle) = boot(ServerConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let reply = client.request(Request::Metrics).unwrap();
        let Some(ReportPayload::Metrics { text, snapshot }) = reply.report() else {
            panic!("expected a metrics report, got {:?}", reply.terminal());
        };
        assert!(snapshot.enabled);
        assert_eq!(
            snapshot.counter("goc_server_sessions_total"),
            Some(1),
            "this very session is the first counted one"
        );
        assert!(
            text.contains("goc_server_sessions_total 1"),
            "the text exposition carries the live counter: {text}"
        );
        assert_eq!(snapshot.gauge("goc_server_inflight"), Some(0));
        shutdown(addr);
        handle.join().unwrap();
    }

    #[test]
    fn status_metrics_ride_only_on_v2_envelopes() {
        let (addr, handle) = boot(ServerConfig::default());
        // The stock client stamps Status with its v1 minimum, so the
        // payload keeps the exact v1 shape: no metrics.
        let mut client = Client::connect(addr).unwrap();
        let reply = client.request(Request::Status).unwrap();
        let Some(ReportPayload::Status(v1_status)) = reply.report() else {
            panic!("expected a status report");
        };
        assert!(v1_status.metrics.is_none());
        // A hand-stamped v2 envelope opts in to the snapshot.
        let stream = TcpStream::connect(addr).unwrap();
        let mut conn = Connection::new(stream);
        let mut envelope = goc_proto::RequestEnvelope::new(3, Request::Status);
        envelope.version = PROTOCOL_VERSION;
        conn.send_request(&envelope).unwrap();
        let response = conn.recv_response().unwrap();
        let Response::Report(ReportPayload::Status(v2_status)) = &response.response else {
            panic!("expected a status report, got {:?}", response.response);
        };
        let snapshot = v2_status
            .metrics
            .as_ref()
            .expect("v2 status carries metrics");
        assert_eq!(snapshot.counter("goc_server_sessions_total"), Some(2));
        drop(conn);
        shutdown(addr);
        handle.join().unwrap();
    }

    #[test]
    fn drain_wake_ping_is_not_counted_and_ledgers_agree() {
        let server = Server::bind(ServerConfig::default(), Box::new(EnsembleOnlyBackend)).unwrap();
        let addr = server.local_addr().unwrap();
        let registry = server.registry();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let mut client = Client::connect(addr).unwrap();
        let served = client
            .request(Request::RunEnsemble {
                spec: EnsembleSpec::new(8, 2, 0),
            })
            .unwrap();
        assert!(served.report().is_some());
        drop(client);
        shutdown(addr);
        let summary = handle.join().unwrap();
        assert_eq!(
            summary.rejected, 0,
            "the drain wake-up ping is plumbing, not a refused session"
        );
        assert_eq!(summary.served, 1);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("goc_server_served_total"),
            Some(summary.served)
        );
        assert_eq!(
            snap.counter_family_total("goc_server_rejected_total"),
            summary.rejected,
            "both rejection ledgers move through one seam"
        );
        assert_eq!(snap.gauge("goc_server_inflight"), Some(0));
    }

    #[test]
    fn draining_refuses_new_work_but_answers_status() {
        let (addr, handle) = boot(ServerConfig::default());
        let mut client = Client::connect(addr).unwrap();
        shutdown(addr);
        // The pre-drain session still gets Status answers and named
        // refusals for new compute until it hangs up.
        let status = client.request(Request::Status).unwrap();
        let Some(ReportPayload::Status(s)) = status.report() else {
            panic!("status must be answered while draining");
        };
        assert!(s.draining);
        let refused = client
            .request(Request::RunEnsemble {
                spec: EnsembleSpec::new(8, 2, 0),
            })
            .unwrap();
        assert_eq!(refused.rejection().unwrap().0, RejectReason::Draining);
        drop(client);
        handle.join().unwrap();
    }

    #[test]
    fn traced_requests_reconstruct_complete_timelines_by_correlation_id() {
        let tracer = TraceRecorder::new(4096);
        let server = Server::bind_traced(
            ServerConfig::default(),
            Box::new(EnsembleOnlyBackend),
            tracer.clone(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());

        // Hand-stamped envelopes so the *wire* correlation ids are
        // known: 777 is served, 778 is refused by validation.
        let stream = TcpStream::connect(addr).unwrap();
        let mut conn = Connection::new(stream);
        let spec = EnsembleSpec::new(16, 4, 7);
        conn.send_request(&goc_proto::RequestEnvelope::new(
            777,
            Request::RunEnsemble { spec },
        ))
        .unwrap();
        loop {
            let response = conn.recv_response().unwrap();
            assert_eq!(response.id, 777);
            match response.response {
                Response::Accepted | Response::Progress { .. } => continue,
                Response::Report(ReportPayload::Ensemble(_)) => break,
                other => panic!("expected an ensemble report, got {other:?}"),
            }
        }
        conn.send_request(&goc_proto::RequestEnvelope::new(
            778,
            Request::RunEnsemble {
                spec: EnsembleSpec::new(16, 0, 0),
            },
        ))
        .unwrap();
        let refused = conn.recv_response().unwrap();
        assert_eq!(refused.id, 778);
        assert!(matches!(refused.response, Response::Rejected { .. }));
        drop(conn);
        shutdown(addr);
        handle.join().unwrap();

        let snap = tracer.snapshot();
        assert_eq!(snap.dropped, 0, "nothing overwritten at this capacity");

        // The served request's timeline is complete — admitted, then
        // the serve span opens, computes, and closes after the reply —
        // and lives on one session lane.
        let timeline = snap.timeline(777);
        use goc_telemetry::trace::TracePhase;
        let shape: Vec<(TraceEventKind, TracePhase)> =
            timeline.iter().map(|e| (e.kind, e.phase)).collect();
        assert_eq!(
            shape,
            vec![
                (TraceEventKind::RequestAdmit, TracePhase::Instant),
                (TraceEventKind::RequestServe, TracePhase::Begin),
                (TraceEventKind::RequestServe, TracePhase::End),
            ]
        );
        assert!(
            timeline.iter().all(|e| e.lane == timeline[0].lane),
            "one session, one lane"
        );

        // The refused request leaves exactly its rejection instant.
        let refusal = snap.timeline(778);
        assert_eq!(refusal.len(), 1);
        assert_eq!(refusal[0].kind, TraceEventKind::RequestReject);

        // Backend compute flows onto the same recorder: the ensemble's
        // replica events land between the serve span's endpoints.
        let replicas = snap
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::ReplicaStart)
            .count();
        assert_eq!(replicas, 4, "one start per requested replica");
        let (begin, end) = (timeline[1].nanos, timeline[2].nanos);
        assert!(snap
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::ReplicaStart)
            .all(|e| begin <= e.nanos && e.nanos <= end));

        // And the Chrome dump carries the request timeline out intact.
        let json = snap.to_chrome_json();
        assert!(json.contains("\"request_admit\""));
        assert!(json.contains("\"correlation\":777"));
    }
}
