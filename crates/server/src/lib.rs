//! # goc-server — Game-of-Coins as a service
//!
//! ROADMAP open item 1: a long-lived server that multiplexes many
//! concurrent scenario/ensemble requests onto the existing
//! work-stealing executor, so the paper's equilibrium analyses become
//! a queryable service instead of a batch job. Built on `std::net`
//! only — the accept loop hands each client to one lightweight session
//! thread; the *compute* parallelism stays where it already lives
//! ([`goc_analysis::ensemble::executor`] via
//! [`goc_analysis::ensemble::run`] and the [`Backend`]'s sweep
//! lowering), so the server adds sessions, not a second thread pool.
//!
//! Production framing, in the spirit of the workspace's
//! `ConfigurationIter::bounded` / `MAX_GATE_MINERS` idioms — *named*
//! refusals, never unbounded growth:
//!
//! * **Admission control** — a bounded in-flight gate
//!   ([`ServerConfig::max_inflight`]) refuses compute requests beyond
//!   the cap with [`RejectReason::InFlightLimit`]; sessions beyond
//!   [`ServerConfig::max_sessions`] are refused at accept with
//!   [`RejectReason::SessionLimit`].
//! * **Per-session budgets** — each session may submit at most
//!   [`ServerConfig::session_budget`] compute requests
//!   ([`RejectReason::SessionBudgetExhausted`]); `Status` is free.
//! * **Request caps** — replica counts above
//!   [`ServerConfig::max_replicas`], populations above
//!   [`ServerConfig::max_miners`] (the `MAX_GATE_MINERS` constant),
//!   and sweeps longer than [`ServerConfig::max_sweep_runs`] are
//!   refused by name before any work is scheduled.
//! * **Graceful shutdown** — `Shutdown` flips the server into
//!   draining: new sessions and new compute requests are refused with
//!   [`RejectReason::Draining`], in-flight work runs to completion,
//!   and [`Server::run`] returns a [`ServerSummary`].
//! * **Observability** — every session lane of the flight recorder
//!   carries the wire correlation id ([`Server::bind_traced`]), so a
//!   drained trace reconstructs per-request timelines admit → compute
//!   → reply; [`HttpExporter`] scrapes `/metrics`, `/healthz`, and
//!   `/trace` over plain HTTP GET.
//!
//! ```no_run
//! use goc_server::{Server, ServerConfig};
//!
//! let config = ServerConfig::default();
//! let server = Server::bind(config, Box::new(goc_server::EnsembleOnlyBackend))?;
//! println!("listening on {}", server.local_addr()?);
//! let summary = server.run()?;
//! println!("served {} requests", summary.served);
//! # Ok::<(), goc_server::ServerError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod backend;
mod config;
mod http;
mod server;

pub use backend::{Backend, EnsembleOnlyBackend};
pub use config::{ConfigError, ServerConfig, MAX_GATE_MINERS};
pub use http::HttpExporter;
pub use server::{Server, ServerError, ServerSummary};

// Re-exported so server users and tests name rejection reasons without
// a separate goc-proto import.
pub use goc_proto::RejectReason;
