//! **sync** — why the paper's model uses *individual* improvement
//! steps: synchronous best-response dynamics can cycle forever.
//!
//! Theorem 1 holds for any sequential better-response learning. If all
//! unstable miners instead move simultaneously (a natural model of
//! miners reacting to the same profitability dashboard), the dynamics
//! can enter limit cycles — two symmetric miners endlessly swapping
//! coins. This experiment measures cycling rates across game shapes.

use goc_analysis::{fmt_f64, RunReport, Table};
use goc_game::gen::{GameSpec, PowerDist, RewardDist};
use goc_learning::run_simultaneous;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{Experiment, RunContext};

/// The synchronous-cycling experiment.
pub struct Sync;

impl Experiment for Sync {
    fn name(&self) -> &'static str {
        "sync"
    }

    fn describe(&self) -> &'static str {
        "Synchronous best response cycles (why the model is sequential)"
    }

    fn run(&self, ctx: &RunContext) -> RunReport {
        let mut report = RunReport::new(
            self.name(),
            "synchronous best response cycles; sequential never does (paper §2–3)",
        );
        let trials = ctx.scale(100, 20);
        report.param("trials", trials.to_string());

        let shapes: [(&str, PowerDist, RewardDist); 4] = [
            (
                "symmetric (equal powers, equal rewards)",
                PowerDist::Equal(100),
                RewardDist::Equal(1000),
            ),
            (
                "equal powers, generic rewards",
                PowerDist::Equal(100),
                RewardDist::Uniform { lo: 500, hi: 2000 },
            ),
            (
                "generic powers, equal rewards",
                PowerDist::Uniform { lo: 1, hi: 1000 },
                RewardDist::Equal(1000),
            ),
            (
                "fully generic",
                PowerDist::Uniform { lo: 1, hi: 1000 },
                RewardDist::Uniform { lo: 500, hi: 2000 },
            ),
        ];

        let mut table = Table::new(vec![
            "game shape",
            "n",
            "coins",
            "cycles",
            "cycle rate",
            "median cycle len",
        ]);
        let mut symmetric_cycled = false;
        for &(name, powers, rewards) in &shapes {
            for &(n, k) in &[(6usize, 2usize), (10, 3)] {
                let spec = GameSpec {
                    miners: n,
                    coins: k,
                    powers,
                    rewards,
                };
                let mut cycles = 0usize;
                let mut lens = Vec::new();
                let mut rng = SmallRng::seed_from_u64((n * k) as u64 + ctx.seed);
                for _ in 0..trials {
                    let game = spec.sample(&mut rng).expect("valid spec");
                    let start = goc_game::gen::random_config(&mut rng, game.system());
                    let outcome = run_simultaneous(&game, &start, 500);
                    if let Some(len) = outcome.cycle {
                        cycles += 1;
                        lens.push(len as f64);
                    }
                }
                if name.starts_with("symmetric") {
                    symmetric_cycled |= cycles > 0;
                }
                lens.sort_by(f64::total_cmp);
                let median = lens.get(lens.len() / 2).copied().unwrap_or(0.0);
                table.row(vec![
                    name.to_string(),
                    n.to_string(),
                    k.to_string(),
                    format!("{cycles}/{trials}"),
                    fmt_f64(cycles as f64 / trials as f64),
                    fmt_f64(median),
                ]);
            }
        }
        report.table("cycling rates of synchronous best response", &table);
        report.note(
            "sequential better-response learning converges in every audited run (see thm1); \
             synchronous updates cycle at the rates above. The paper's one-miner-at-a-time \
             improvement model is essential, not cosmetic.",
        );
        report.check(
            "symmetric_games_cycle",
            symmetric_cycled,
            "the symmetric worst case exhibits limit cycles under synchronous updates",
        );
        report.artifact("sync.csv", table.to_csv());
        report
    }
}
